//! The `.tcs` (Teapot Campaign Snapshot) on-disk format.
//!
//! A snapshot captures a whole [`Campaign`](crate::Campaign) between two
//! epochs: the campaign configuration, a fingerprint of the target
//! binary, the number of completed epochs, and every shard's
//! [`StateSnapshot`] (corpus, per-branch heuristic counts, both coverage
//! maps, gadget reports and counters). Shard RNGs are *not* serialized:
//! they are re-seeded from `(shard seed, epoch)` at every epoch
//! boundary, so the epoch number alone reproduces the generator.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "TCS1"
//! u32     format version (4)
//! u64     FNV-1a fingerprint of the target binary's TOF bytes
//! u32     epochs completed
//! decode  blocks u64 · insts u64 · bytes u64 · undecoded_bytes u64
//!         (decode-cache statistics of the shared Program, so resumed
//!         and remote campaigns can audit decode behavior cross-host)
//! config  seed u64 · shards u32 · epochs u32 · iters_per_epoch u64
//!         · max_input_len u64 · fuel_per_run u64
//!         · detector (6 fields) · emu u8 · heur_style u8
//!         · capture_witnesses u8 · spec_models u8 (v3)
//!         · dictionary (len-prefixed token list)
//! u32     shard count, then per shard:
//!         corpus    u32 count · { bytes input · u64 score }
//!         heur      u32 count · { u64 site-key · u32 count }
//!         cov       bytes normal · bytes spec
//!         gadgets   u32 count · { u64 pc · u8 channel · u8 ctrl
//!                   · u8 model (v3)
//!                   · u64 branch_pc · u64 access_pc · u32 depth
//!                   · bytes description }
//!         witnesses u32 count · { u64 pc · u8 channel · u8 ctrl
//!                   · u8 model (v3) · bytes input
//!                   · u32 count { u64 site-key · u32 count }
//!                   · u32 count { u8 kind ·
//!                       0: u64 pc · u32 depth · u8 model(v3) (spec branch)
//!                       1: u64 pc · u64 addr · u8 w · u8 tag
//!                          · u8 origin lo · u8 origin hi (v4) (tainted)
//!                       2: u64 pc · u32 depth · u8 model(v3) (rollback)
//!                       3: u64 pc · u32 depth · u8 model · u8 tag
//!                          · u8 origin lo · u8 origin hi (v4, leak site) } }
//!         u64 iters · u64 total_cost · u64 crashes · u32 epoch
//! ```
//!
//! where `bytes` is a `u32` length followed by that many raw bytes.

use crate::CampaignConfig;
use teapot_fuzz::StateSnapshot;
use teapot_obj::Binary;
use teapot_rt::{
    Channel, Controllability, DetectorConfig, GadgetKey, GadgetReport, GadgetWitness, OriginSpan,
    SpecModel, SpecModelSet, TraceEvent,
};
use teapot_vm::{DecodeStats, EmuStyle, HeurStyle};

/// Magic bytes opening every `.tcs` file.
pub const MAGIC: &[u8; 4] = b"TCS1";

/// Format version written by this crate. Version 2 added the decode
/// statistics header, the `capture_witnesses` flag and per-shard gadget
/// witnesses. Version 3 added the speculation-model set to the config
/// and a model byte to every gadget key, witness key and speculative
/// trace checkpoint/rollback event; v1/v2 files load with PHT defaults
/// everywhere, so old campaigns resume unchanged. Version 4 added taint
/// provenance: two origin-interval bytes on every tainted-access event
/// and the leak-site event (kind 3); v≤3 files load with empty origins
/// and no leak sites — exactly what campaign-captured traces contain
/// anyway, since the origin shadow only runs on triage replays.
pub const VERSION: u32 = 4;

/// A deserialized campaign snapshot.
#[derive(Debug, Clone)]
pub struct CampaignSnapshot {
    /// The campaign configuration at snapshot time (`workers` is reset
    /// to auto on load — thread count is an execution detail).
    pub config: CampaignConfig,
    /// FNV-1a fingerprint of the target binary's serialized bytes.
    pub bin_fingerprint: u64,
    /// Epochs completed when the snapshot was taken.
    pub epochs_done: u32,
    /// Decode-cache statistics of the shared [`Program`] at snapshot
    /// time, for cross-host audit of decode behavior.
    ///
    /// [`Program`]: teapot_vm::Program
    pub decode_stats: DecodeStats,
    /// One state per shard, in shard-index order.
    pub shard_states: Vec<StateSnapshot>,
}

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is newer than this build understands.
    BadVersion(u32),
    /// The file ended mid-record or a field was out of range.
    Corrupt(&'static str),
    /// The snapshot was taken against a different binary.
    BinaryMismatch {
        /// Fingerprint recorded in the snapshot.
        expected: u64,
        /// Fingerprint of the binary supplied on resume.
        actual: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => {
                write!(f, "not a .tcs campaign snapshot (bad magic)")
            }
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::Corrupt(what) => {
                write!(f, "corrupt snapshot: {what}")
            }
            SnapshotError::BinaryMismatch { expected, actual } => write!(
                f,
                "snapshot was taken against a different binary \
                 (fingerprint {expected:#018x}, got {actual:#018x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a fingerprint of a binary's serialized TOF bytes, binding a
/// snapshot to the exact binary it was taken against.
pub fn fingerprint(bin: &Binary) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bin.to_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
}

impl CampaignSnapshot {
    /// Serializes the snapshot to `.tcs` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);
        w.u64(self.bin_fingerprint);
        w.u32(self.epochs_done);
        w.u64(self.decode_stats.blocks as u64);
        w.u64(self.decode_stats.insts as u64);
        w.u64(self.decode_stats.bytes as u64);
        w.u64(self.decode_stats.undecoded_bytes as u64);

        let c = &self.config;
        w.u64(c.seed);
        w.u32(c.shards);
        w.u32(c.epochs);
        w.u64(c.iters_per_epoch);
        w.u64(c.max_input_len as u64);
        w.u64(c.fuel_per_run);
        w.bool(c.detector.taint_input_sources);
        w.bool(c.detector.massage_policy);
        w.u32(c.detector.rob_budget);
        w.u32(c.detector.max_nesting);
        w.u32(c.detector.full_depth_runs);
        w.bool(c.detector.artificial_gadget_mode);
        w.u8(match c.emu {
            EmuStyle::Native => 0,
            EmuStyle::SpecTaint => 1,
        });
        w.u8(match c.heur_style {
            HeurStyle::TeapotHybrid => 0,
            HeurStyle::SpecFuzzGradual => 1,
            HeurStyle::SpecTaintFive => 2,
        });
        w.bool(c.capture_witnesses);
        w.u8(c.models.bits());
        w.u32(c.dictionary.len() as u32);
        for tok in &c.dictionary {
            w.bytes(tok);
        }

        w.u32(self.shard_states.len() as u32);
        for s in &self.shard_states {
            w.u32(s.corpus.len() as u32);
            for (input, score) in &s.corpus {
                w.bytes(input);
                w.u64(*score);
            }
            w.u32(s.heur_counts.len() as u32);
            for (branch, count) in &s.heur_counts {
                w.u64(*branch);
                w.u32(*count);
            }
            w.bytes(&s.cov_normal);
            w.bytes(&s.cov_spec);
            w.u32(s.gadgets.len() as u32);
            for g in &s.gadgets {
                w.u64(g.key.pc);
                w.u8(match g.key.channel {
                    Channel::Mds => 0,
                    Channel::Cache => 1,
                    Channel::Port => 2,
                });
                w.u8(match g.key.controllability {
                    Controllability::User => 0,
                    Controllability::Massage => 1,
                });
                w.u8(g.key.model.id());
                w.u64(g.branch_pc);
                w.u64(g.access_pc);
                w.u32(g.depth);
                w.bytes(g.description.as_bytes());
            }
            w.u32(s.witnesses.len() as u32);
            for wit in &s.witnesses {
                w.u64(wit.key.pc);
                w.u8(match wit.key.channel {
                    Channel::Mds => 0,
                    Channel::Cache => 1,
                    Channel::Port => 2,
                });
                w.u8(match wit.key.controllability {
                    Controllability::User => 0,
                    Controllability::Massage => 1,
                });
                w.u8(wit.key.model.id());
                w.bytes(&wit.input);
                w.u32(wit.heur_counts.len() as u32);
                for (branch, count) in &wit.heur_counts {
                    w.u64(*branch);
                    w.u32(*count);
                }
                w.u32(wit.trace.len() as u32);
                for ev in &wit.trace {
                    match ev {
                        TraceEvent::SpecBranch { pc, depth, model } => {
                            w.u8(0);
                            w.u64(*pc);
                            w.u32(*depth);
                            w.u8(model.id());
                        }
                        TraceEvent::TaintedAccess {
                            pc,
                            addr,
                            width,
                            tag,
                            origin,
                        } => {
                            w.u8(1);
                            w.u64(*pc);
                            w.u64(*addr);
                            w.u8(*width);
                            w.u8(*tag);
                            let (lo, hi) = origin.raw();
                            w.u8(lo);
                            w.u8(hi);
                        }
                        TraceEvent::Rollback { pc, depth, model } => {
                            w.u8(2);
                            w.u64(*pc);
                            w.u32(*depth);
                            w.u8(model.id());
                        }
                        TraceEvent::LeakSite {
                            pc,
                            depth,
                            model,
                            tag,
                            origin,
                        } => {
                            w.u8(3);
                            w.u64(*pc);
                            w.u32(*depth);
                            w.u8(model.id());
                            w.u8(*tag);
                            let (lo, hi) = origin.raw();
                            w.u8(lo);
                            w.u8(hi);
                        }
                    }
                }
            }
            w.u64(s.iters);
            w.u64(s.total_cost);
            w.u64(s.crashes);
            w.u32(s.epoch);
        }
        w.buf
    }

    /// Parses `.tcs` bytes. Version 1 files (pre-witness) still load:
    /// every v2 addition is strictly appended and defaults cleanly
    /// (zero decode stats, witness capture on, no witnesses), so an old
    /// long-running campaign is never stranded by the format bump.
    pub fn from_bytes(bytes: &[u8]) -> Result<CampaignSnapshot, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version == 0 || version > VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let bin_fingerprint = r.u64()?;
        let epochs_done = r.u32()?;
        let decode_stats = if version >= 2 {
            DecodeStats {
                blocks: r.u64()? as usize,
                insts: r.u64()? as usize,
                bytes: r.u64()? as usize,
                undecoded_bytes: r.u64()? as usize,
            }
        } else {
            DecodeStats::default()
        };

        let seed = r.u64()?;
        let shards = r.u32()?;
        let epochs = r.u32()?;
        let iters_per_epoch = r.u64()?;
        let max_input_len = r.u64()? as usize;
        let fuel_per_run = r.u64()?;
        let detector = DetectorConfig {
            taint_input_sources: r.bool()?,
            massage_policy: r.bool()?,
            rob_budget: r.u32()?,
            max_nesting: r.u32()?,
            full_depth_runs: r.u32()?,
            artificial_gadget_mode: r.bool()?,
        };
        let emu = match r.u8()? {
            0 => EmuStyle::Native,
            1 => EmuStyle::SpecTaint,
            _ => return Err(SnapshotError::Corrupt("emu style")),
        };
        let heur_style = match r.u8()? {
            0 => HeurStyle::TeapotHybrid,
            1 => HeurStyle::SpecFuzzGradual,
            2 => HeurStyle::SpecTaintFive,
            _ => return Err(SnapshotError::Corrupt("heuristic style")),
        };
        let capture_witnesses = if version >= 2 { r.bool()? } else { true };
        let models = if version >= 3 {
            SpecModelSet::from_bits(r.u8()?).ok_or(SnapshotError::Corrupt("spec model set"))?
        } else {
            // Pre-specmodel snapshots simulated conditional branches only.
            SpecModelSet::PHT_ONLY
        };
        let dict_len = r.u32()? as usize;
        let mut dictionary = Vec::with_capacity(dict_len.min(1024));
        for _ in 0..dict_len {
            dictionary.push(r.bytes()?.to_vec());
        }
        let config = CampaignConfig {
            seed,
            shards,
            workers: 0,
            epochs,
            iters_per_epoch,
            max_input_len,
            fuel_per_run,
            detector,
            emu,
            heur_style,
            models,
            dictionary,
            capture_witnesses,
        };

        let shard_count = r.u32()? as usize;
        let mut shard_states = Vec::with_capacity(shard_count.min(4096));
        for _ in 0..shard_count {
            let corpus_len = r.u32()? as usize;
            let mut corpus = Vec::with_capacity(corpus_len.min(65536));
            for _ in 0..corpus_len {
                let input = r.bytes()?.to_vec();
                let score = r.u64()?;
                corpus.push((input, score));
            }
            let heur_len = r.u32()? as usize;
            let mut heur_counts = Vec::with_capacity(heur_len.min(65536));
            for _ in 0..heur_len {
                let branch = r.u64()?;
                let count = r.u32()?;
                heur_counts.push((branch, count));
            }
            let cov_normal = r.bytes()?.to_vec();
            let cov_spec = r.bytes()?.to_vec();
            // A wrong-length map would silently resume as empty coverage
            // (diverging from the uninterrupted run); reject it here.
            if cov_normal.len() != teapot_rt::coverage::COV_MAP_SIZE
                || cov_spec.len() != teapot_rt::coverage::COV_MAP_SIZE
            {
                return Err(SnapshotError::Corrupt("coverage map size"));
            }
            let gadget_len = r.u32()? as usize;
            let mut gadgets = Vec::with_capacity(gadget_len.min(65536));
            for _ in 0..gadget_len {
                let pc = r.u64()?;
                let channel = match r.u8()? {
                    0 => Channel::Mds,
                    1 => Channel::Cache,
                    2 => Channel::Port,
                    _ => return Err(SnapshotError::Corrupt("channel")),
                };
                let controllability = match r.u8()? {
                    0 => Controllability::User,
                    1 => Controllability::Massage,
                    _ => return Err(SnapshotError::Corrupt("controllability")),
                };
                let model = r.model(version)?;
                let branch_pc = r.u64()?;
                let access_pc = r.u64()?;
                let depth = r.u32()?;
                let description = String::from_utf8(r.bytes()?.to_vec())
                    .map_err(|_| SnapshotError::Corrupt("description"))?;
                gadgets.push(GadgetReport {
                    key: GadgetKey {
                        pc,
                        channel,
                        controllability,
                        model,
                    },
                    branch_pc,
                    access_pc,
                    depth,
                    description,
                });
            }
            let witness_len = if version >= 2 { r.u32()? as usize } else { 0 };
            let mut witnesses = Vec::with_capacity(witness_len.min(65536));
            for _ in 0..witness_len {
                let pc = r.u64()?;
                let channel = match r.u8()? {
                    0 => Channel::Mds,
                    1 => Channel::Cache,
                    2 => Channel::Port,
                    _ => return Err(SnapshotError::Corrupt("witness channel")),
                };
                let controllability = match r.u8()? {
                    0 => Controllability::User,
                    1 => Controllability::Massage,
                    _ => return Err(SnapshotError::Corrupt("witness controllability")),
                };
                let model = r.model(version)?;
                let input = r.bytes()?.to_vec();
                let hc_len = r.u32()? as usize;
                let mut heur_counts = Vec::with_capacity(hc_len.min(65536));
                for _ in 0..hc_len {
                    let branch = r.u64()?;
                    let count = r.u32()?;
                    heur_counts.push((branch, count));
                }
                let tr_len = r.u32()? as usize;
                if tr_len > teapot_rt::MAX_TRACE_EVENTS {
                    return Err(SnapshotError::Corrupt("witness trace length"));
                }
                let mut trace = Vec::with_capacity(tr_len);
                for _ in 0..tr_len {
                    trace.push(match r.u8()? {
                        0 => TraceEvent::SpecBranch {
                            pc: r.u64()?,
                            depth: r.u32()?,
                            model: r.model(version)?,
                        },
                        1 => TraceEvent::TaintedAccess {
                            pc: r.u64()?,
                            addr: r.u64()?,
                            width: r.u8()?,
                            tag: r.u8()?,
                            origin: r.origin(version)?,
                        },
                        2 => TraceEvent::Rollback {
                            pc: r.u64()?,
                            depth: r.u32()?,
                            model: r.model(version)?,
                        },
                        3 if version >= 4 => TraceEvent::LeakSite {
                            pc: r.u64()?,
                            depth: r.u32()?,
                            model: r.model(version)?,
                            tag: r.u8()?,
                            origin: r.origin(version)?,
                        },
                        _ => return Err(SnapshotError::Corrupt("trace event kind")),
                    });
                }
                witnesses.push(GadgetWitness {
                    key: GadgetKey {
                        pc,
                        channel,
                        controllability,
                        model,
                    },
                    input,
                    heur_counts,
                    trace,
                });
            }
            let iters = r.u64()?;
            let total_cost = r.u64()?;
            let crashes = r.u64()?;
            let epoch = r.u32()?;
            shard_states.push(StateSnapshot {
                corpus,
                heur_counts,
                cov_normal,
                cov_spec,
                gadgets,
                witnesses,
                iters,
                total_cost,
                crashes,
                epoch,
            });
        }
        Ok(CampaignSnapshot {
            config,
            bin_fingerprint,
            epochs_done,
            decode_stats,
            shard_states,
        })
    }

    /// Writes the snapshot to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a snapshot from `path`.
    pub fn load(path: &std::path::Path) -> Result<CampaignSnapshot, crate::CampaignError> {
        let bytes = std::fs::read(path)?;
        Ok(CampaignSnapshot::from_bytes(&bytes)?)
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError::Corrupt("truncated"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool")),
        }
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.u32()? as usize;
        self.take(n)
    }
    /// Speculation-model byte, present from format v3 on; earlier
    /// versions only ever simulated PHT.
    fn model(&mut self, version: u32) -> Result<SpecModel, SnapshotError> {
        if version < 3 {
            return Ok(SpecModel::Pht);
        }
        SpecModel::from_id(self.u8()?).ok_or(SnapshotError::Corrupt("spec model"))
    }
    /// Input-origin interval (two raw bytes), present from format v4
    /// on; earlier versions never resolved origins.
    fn origin(&mut self, version: u32) -> Result<OriginSpan, SnapshotError> {
        if version < 4 {
            return Ok(OriginSpan::NONE);
        }
        let lo = self.u8()?;
        let hi = self.u8()?;
        Ok(OriginSpan::from_raw(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> CampaignSnapshot {
        CampaignSnapshot {
            config: CampaignConfig {
                seed: 0xDEAD_BEEF,
                shards: 2,
                epochs: 3,
                iters_per_epoch: 50,
                dictionary: vec![b"GET".to_vec(), b"POST".to_vec()],
                models: SpecModelSet::parse("pht,rsb").unwrap(),
                ..CampaignConfig::default()
            },
            bin_fingerprint: 0x1234_5678_9ABC_DEF0,
            epochs_done: 2,
            decode_stats: DecodeStats {
                blocks: 12,
                insts: 340,
                bytes: 2048,
                undecoded_bytes: 3,
            },
            shard_states: (0..2)
                .map(|i| StateSnapshot {
                    corpus: vec![(vec![i as u8; 4], 3)],
                    heur_counts: vec![(0x400100, 7), (0x400200, 2)],
                    cov_normal: vec![0; teapot_rt::coverage::COV_MAP_SIZE],
                    cov_spec: vec![0; teapot_rt::coverage::COV_MAP_SIZE],
                    gadgets: vec![GadgetReport {
                        key: GadgetKey {
                            pc: 0x400180 + i,
                            channel: Channel::Cache,
                            controllability: Controllability::User,
                            model: if i == 0 {
                                SpecModel::Pht
                            } else {
                                SpecModel::Rsb
                            },
                        },
                        branch_pc: 0x400100,
                        access_pc: 0x400140,
                        depth: 1,
                        description: "test gadget".into(),
                    }],
                    witnesses: vec![GadgetWitness {
                        key: GadgetKey {
                            pc: 0x400180 + i,
                            channel: Channel::Cache,
                            controllability: Controllability::User,
                            model: if i == 0 {
                                SpecModel::Pht
                            } else {
                                SpecModel::Rsb
                            },
                        },
                        input: vec![0x7f, 200, i as u8],
                        heur_counts: vec![(0x400100, 7)],
                        trace: vec![
                            TraceEvent::SpecBranch {
                                pc: 0x400100,
                                depth: 1,
                                model: SpecModel::Pht,
                            },
                            TraceEvent::TaintedAccess {
                                pc: 0x400140,
                                addr: 0x80_0000,
                                width: 4,
                                tag: 5,
                                origin: OriginSpan::from_offset(1).join(OriginSpan::from_offset(3)),
                            },
                            TraceEvent::LeakSite {
                                pc: 0x400180 + i,
                                depth: 1,
                                model: SpecModel::Pht,
                                tag: 5,
                                origin: OriginSpan::from_offset(1),
                            },
                            TraceEvent::Rollback {
                                pc: 0x400100,
                                depth: 1,
                                model: SpecModel::Stl,
                            },
                        ],
                    }],
                    iters: 60,
                    total_cost: 1000,
                    crashes: 1,
                    epoch: 2,
                })
                .collect(),
        }
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let back = CampaignSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.bin_fingerprint, snap.bin_fingerprint);
        assert_eq!(back.epochs_done, snap.epochs_done);
        assert_eq!(back.config.seed, snap.config.seed);
        assert_eq!(back.config.shards, snap.config.shards);
        assert_eq!(back.config.dictionary, snap.config.dictionary);
        assert_eq!(back.decode_stats, snap.decode_stats);
        assert_eq!(back.config.capture_witnesses, snap.config.capture_witnesses);
        // Non-default model set (and per-record model tags) survive v3.
        assert_eq!(back.config.models, SpecModelSet::parse("pht,rsb").unwrap());
        assert_eq!(back.shard_states.len(), snap.shard_states.len());
        for (a, b) in back.shard_states.iter().zip(&snap.shard_states) {
            assert_eq!(a.corpus, b.corpus);
            assert_eq!(a.heur_counts, b.heur_counts);
            assert_eq!(a.gadgets, b.gadgets);
            assert_eq!(a.witnesses, b.witnesses);
            assert_eq!(a.iters, b.iters);
            assert_eq!(a.epoch, b.epoch);
        }
    }

    #[test]
    fn parser_rejects_garbage_and_truncations() {
        assert_eq!(
            CampaignSnapshot::from_bytes(b"nope").unwrap_err(),
            SnapshotError::BadMagic
        );
        let bytes = sample_snapshot().to_bytes();
        for l in (0..bytes.len()).step_by(97) {
            // Must error, never panic.
            assert!(CampaignSnapshot::from_bytes(&bytes[..l]).is_err());
        }
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert_eq!(
            CampaignSnapshot::from_bytes(&wrong_version).unwrap_err(),
            SnapshotError::BadVersion(9)
        );
    }

    /// Serializes `snap` in the v1 layout (no decode-stats header, no
    /// `capture_witnesses` flag, no witness sections) — what a pre-PR 3
    /// build wrote.
    fn v1_bytes(snap: &CampaignSnapshot) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.u32(1);
        w.u64(snap.bin_fingerprint);
        w.u32(snap.epochs_done);
        let c = &snap.config;
        w.u64(c.seed);
        w.u32(c.shards);
        w.u32(c.epochs);
        w.u64(c.iters_per_epoch);
        w.u64(c.max_input_len as u64);
        w.u64(c.fuel_per_run);
        w.bool(c.detector.taint_input_sources);
        w.bool(c.detector.massage_policy);
        w.u32(c.detector.rob_budget);
        w.u32(c.detector.max_nesting);
        w.u32(c.detector.full_depth_runs);
        w.bool(c.detector.artificial_gadget_mode);
        w.u8(0); // emu: Native
        w.u8(0); // heur: TeapotHybrid
        w.u32(c.dictionary.len() as u32);
        for tok in &c.dictionary {
            w.bytes(tok);
        }
        w.u32(snap.shard_states.len() as u32);
        for s in &snap.shard_states {
            w.u32(s.corpus.len() as u32);
            for (input, score) in &s.corpus {
                w.bytes(input);
                w.u64(*score);
            }
            w.u32(s.heur_counts.len() as u32);
            for (branch, count) in &s.heur_counts {
                w.u64(*branch);
                w.u32(*count);
            }
            w.bytes(&s.cov_normal);
            w.bytes(&s.cov_spec);
            w.u32(s.gadgets.len() as u32);
            for g in &s.gadgets {
                w.u64(g.key.pc);
                w.u8(1); // Cache
                w.u8(0); // User
                w.u64(g.branch_pc);
                w.u64(g.access_pc);
                w.u32(g.depth);
                w.bytes(g.description.as_bytes());
            }
            w.u64(s.iters);
            w.u64(s.total_cost);
            w.u64(s.crashes);
            w.u32(s.epoch);
        }
        w.buf
    }

    #[test]
    fn v1_snapshots_still_load_with_defaults() {
        let snap = sample_snapshot();
        let back = CampaignSnapshot::from_bytes(&v1_bytes(&snap)).unwrap();
        assert_eq!(back.bin_fingerprint, snap.bin_fingerprint);
        assert_eq!(back.epochs_done, snap.epochs_done);
        assert_eq!(back.config.seed, snap.config.seed);
        assert_eq!(back.config.dictionary, snap.config.dictionary);
        // v2/v3 additions default cleanly.
        assert_eq!(back.decode_stats, DecodeStats::default());
        assert!(back.config.capture_witnesses);
        assert_eq!(back.config.models, SpecModelSet::PHT_ONLY);
        for (a, b) in back.shard_states.iter().zip(&snap.shard_states) {
            assert_eq!(a.corpus, b.corpus);
            assert_eq!(a.gadgets.len(), b.gadgets.len());
            // Pre-specmodel records fold to the PHT model; everything
            // else survives.
            for (ga, gb) in a.gadgets.iter().zip(&b.gadgets) {
                assert_eq!(ga.key.model, SpecModel::Pht);
                assert_eq!(ga.key.pc, gb.key.pc);
                assert_eq!(ga.branch_pc, gb.branch_pc);
                assert_eq!(ga.description, gb.description);
            }
            assert!(a.witnesses.is_empty());
            assert_eq!(a.iters, b.iters);
        }
    }

    /// Serializes `snap` in the v2 layout (decode stats +
    /// capture_witnesses + witnesses, but no speculation-model bytes) —
    /// what a PR 3 build wrote for a long-running campaign.
    fn v2_bytes(snap: &CampaignSnapshot) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.u32(2);
        w.u64(snap.bin_fingerprint);
        w.u32(snap.epochs_done);
        w.u64(snap.decode_stats.blocks as u64);
        w.u64(snap.decode_stats.insts as u64);
        w.u64(snap.decode_stats.bytes as u64);
        w.u64(snap.decode_stats.undecoded_bytes as u64);
        let c = &snap.config;
        w.u64(c.seed);
        w.u32(c.shards);
        w.u32(c.epochs);
        w.u64(c.iters_per_epoch);
        w.u64(c.max_input_len as u64);
        w.u64(c.fuel_per_run);
        w.bool(c.detector.taint_input_sources);
        w.bool(c.detector.massage_policy);
        w.u32(c.detector.rob_budget);
        w.u32(c.detector.max_nesting);
        w.u32(c.detector.full_depth_runs);
        w.bool(c.detector.artificial_gadget_mode);
        w.u8(0); // emu: Native
        w.u8(0); // heur: TeapotHybrid
        w.bool(c.capture_witnesses);
        w.u32(c.dictionary.len() as u32);
        for tok in &c.dictionary {
            w.bytes(tok);
        }
        w.u32(snap.shard_states.len() as u32);
        for s in &snap.shard_states {
            w.u32(s.corpus.len() as u32);
            for (input, score) in &s.corpus {
                w.bytes(input);
                w.u64(*score);
            }
            w.u32(s.heur_counts.len() as u32);
            for (branch, count) in &s.heur_counts {
                w.u64(*branch);
                w.u32(*count);
            }
            w.bytes(&s.cov_normal);
            w.bytes(&s.cov_spec);
            w.u32(s.gadgets.len() as u32);
            for g in &s.gadgets {
                w.u64(g.key.pc);
                w.u8(match g.key.channel {
                    Channel::Mds => 0,
                    Channel::Cache => 1,
                    Channel::Port => 2,
                });
                w.u8(match g.key.controllability {
                    Controllability::User => 0,
                    Controllability::Massage => 1,
                });
                w.u64(g.branch_pc);
                w.u64(g.access_pc);
                w.u32(g.depth);
                w.bytes(g.description.as_bytes());
            }
            w.u32(s.witnesses.len() as u32);
            for wit in &s.witnesses {
                w.u64(wit.key.pc);
                w.u8(match wit.key.channel {
                    Channel::Mds => 0,
                    Channel::Cache => 1,
                    Channel::Port => 2,
                });
                w.u8(match wit.key.controllability {
                    Controllability::User => 0,
                    Controllability::Massage => 1,
                });
                w.bytes(&wit.input);
                w.u32(wit.heur_counts.len() as u32);
                for (branch, count) in &wit.heur_counts {
                    w.u64(*branch);
                    w.u32(*count);
                }
                // Leak sites are a v4 addition: a v2 writer never saw
                // them, so drop them from the emitted trace.
                let evs: Vec<_> = wit
                    .trace
                    .iter()
                    .filter(|e| !matches!(e, TraceEvent::LeakSite { .. }))
                    .collect();
                w.u32(evs.len() as u32);
                for ev in evs {
                    match ev {
                        TraceEvent::SpecBranch { pc, depth, .. } => {
                            w.u8(0);
                            w.u64(*pc);
                            w.u32(*depth);
                        }
                        TraceEvent::TaintedAccess {
                            pc,
                            addr,
                            width,
                            tag,
                            ..
                        } => {
                            w.u8(1);
                            w.u64(*pc);
                            w.u64(*addr);
                            w.u8(*width);
                            w.u8(*tag);
                        }
                        TraceEvent::Rollback { pc, depth, .. } => {
                            w.u8(2);
                            w.u64(*pc);
                            w.u32(*depth);
                        }
                        TraceEvent::LeakSite { .. } => unreachable!(),
                    }
                }
            }
            w.u64(s.iters);
            w.u64(s.total_cost);
            w.u64(s.crashes);
            w.u32(s.epoch);
        }
        w.buf
    }

    #[test]
    fn v2_snapshots_load_with_pht_defaults() {
        let snap = sample_snapshot();
        let back = CampaignSnapshot::from_bytes(&v2_bytes(&snap)).unwrap();
        // v2 payload survives in full…
        assert_eq!(back.bin_fingerprint, snap.bin_fingerprint);
        assert_eq!(back.decode_stats, snap.decode_stats);
        assert_eq!(back.config.seed, snap.config.seed);
        assert_eq!(back.config.capture_witnesses, snap.config.capture_witnesses);
        // …and every v3 addition defaults to PHT.
        assert_eq!(back.config.models, SpecModelSet::PHT_ONLY);
        for (a, b) in back.shard_states.iter().zip(&snap.shard_states) {
            assert_eq!(a.corpus, b.corpus);
            assert_eq!(a.heur_counts, b.heur_counts);
            assert_eq!(a.witnesses.len(), b.witnesses.len());
            for (wa, wb) in a.witnesses.iter().zip(&b.witnesses) {
                assert_eq!(wa.key.model, SpecModel::Pht);
                assert_eq!(wa.key.pc, wb.key.pc);
                assert_eq!(wa.input, wb.input);
                assert_eq!(wa.heur_counts, wb.heur_counts);
                // The v2 layout carries neither leak sites nor origins.
                let v2_repr = wb
                    .trace
                    .iter()
                    .filter(|e| !matches!(e, TraceEvent::LeakSite { .. }))
                    .count();
                assert_eq!(wa.trace.len(), v2_repr);
                for ev in &wa.trace {
                    match ev {
                        TraceEvent::SpecBranch { model, .. }
                        | TraceEvent::Rollback { model, .. } => {
                            assert_eq!(*model, SpecModel::Pht);
                        }
                        TraceEvent::TaintedAccess { origin, .. } => {
                            assert!(origin.is_none());
                        }
                        TraceEvent::LeakSite { .. } => {
                            panic!("v2 snapshots cannot carry leak sites")
                        }
                    }
                }
            }
        }
    }

    /// End-to-end format compatibility: a campaign interrupted under the
    /// old (v2, pre-specmodel) snapshot format resumes bit-identically
    /// to an uninterrupted run — the satellite guarantee that bumping
    /// `.tcs` to v3 strands no long-running campaign.
    #[test]
    fn v2_snapshot_resumes_equal_to_uninterrupted() {
        use crate::Campaign;
        use teapot_cc::{compile_to_binary, Options};
        use teapot_core::{rewrite, RewriteOptions};
        let src = "
            char bar[256]; int baz; char inbuf[16];
            int main() {
                char *foo = malloc(16);
                read_input(inbuf, 16);
                if (inbuf[1] < 10) { baz = bar[foo[inbuf[1]]]; }
                return 0;
            }";
        let mut cots = compile_to_binary(src, &Options::gcc_like()).unwrap();
        cots.strip();
        let bin = rewrite(&cots, &RewriteOptions::default()).unwrap();
        let cfg = CampaignConfig {
            shards: 2,
            workers: 1,
            epochs: 2,
            iters_per_epoch: 30,
            max_input_len: 16,
            ..CampaignConfig::default()
        };

        let mut a = Campaign::new(cfg.clone()).unwrap();
        let ra = a.run(&bin, &[]);

        let mut b = Campaign::new(cfg).unwrap();
        b.run_epoch(&bin, &[]);
        // Round-trip the mid-campaign state through the v2 byte layout
        // (drops the model fields — all PHT under the default set, so
        // nothing is lost) and resume from the result.
        let v2 = v2_bytes(&b.snapshot(&bin));
        let back = CampaignSnapshot::from_bytes(&v2).unwrap();
        let mut resumed = Campaign::resume(&back, &bin).unwrap();
        let rb = resumed.run(&bin, &[]);

        assert_eq!(ra.to_json(), rb.to_json());
        assert_eq!(ra.gadgets, rb.gadgets);
        assert_eq!(ra.witnesses, rb.witnesses);
    }

    /// Serializes `snap` in the v3 layout (speculation-model bytes, but
    /// no origin bytes and no leak-site events) — what a PR 4–7 build
    /// wrote. With `write_leak_sites`, leak sites are emitted with the
    /// v4 kind byte anyway, producing a corrupt v3 stream (used to pin
    /// that kind 3 is version-gated).
    fn v3_bytes(snap: &CampaignSnapshot, write_leak_sites: bool) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.u32(3);
        w.u64(snap.bin_fingerprint);
        w.u32(snap.epochs_done);
        w.u64(snap.decode_stats.blocks as u64);
        w.u64(snap.decode_stats.insts as u64);
        w.u64(snap.decode_stats.bytes as u64);
        w.u64(snap.decode_stats.undecoded_bytes as u64);
        let c = &snap.config;
        w.u64(c.seed);
        w.u32(c.shards);
        w.u32(c.epochs);
        w.u64(c.iters_per_epoch);
        w.u64(c.max_input_len as u64);
        w.u64(c.fuel_per_run);
        w.bool(c.detector.taint_input_sources);
        w.bool(c.detector.massage_policy);
        w.u32(c.detector.rob_budget);
        w.u32(c.detector.max_nesting);
        w.u32(c.detector.full_depth_runs);
        w.bool(c.detector.artificial_gadget_mode);
        w.u8(0); // emu: Native
        w.u8(0); // heur: TeapotHybrid
        w.bool(c.capture_witnesses);
        w.u8(c.models.bits());
        w.u32(c.dictionary.len() as u32);
        for tok in &c.dictionary {
            w.bytes(tok);
        }
        w.u32(snap.shard_states.len() as u32);
        for s in &snap.shard_states {
            w.u32(s.corpus.len() as u32);
            for (input, score) in &s.corpus {
                w.bytes(input);
                w.u64(*score);
            }
            w.u32(s.heur_counts.len() as u32);
            for (branch, count) in &s.heur_counts {
                w.u64(*branch);
                w.u32(*count);
            }
            w.bytes(&s.cov_normal);
            w.bytes(&s.cov_spec);
            w.u32(s.gadgets.len() as u32);
            for g in &s.gadgets {
                w.u64(g.key.pc);
                w.u8(match g.key.channel {
                    Channel::Mds => 0,
                    Channel::Cache => 1,
                    Channel::Port => 2,
                });
                w.u8(match g.key.controllability {
                    Controllability::User => 0,
                    Controllability::Massage => 1,
                });
                w.u8(g.key.model.id());
                w.u64(g.branch_pc);
                w.u64(g.access_pc);
                w.u32(g.depth);
                w.bytes(g.description.as_bytes());
            }
            w.u32(s.witnesses.len() as u32);
            for wit in &s.witnesses {
                w.u64(wit.key.pc);
                w.u8(match wit.key.channel {
                    Channel::Mds => 0,
                    Channel::Cache => 1,
                    Channel::Port => 2,
                });
                w.u8(match wit.key.controllability {
                    Controllability::User => 0,
                    Controllability::Massage => 1,
                });
                w.u8(wit.key.model.id());
                w.bytes(&wit.input);
                w.u32(wit.heur_counts.len() as u32);
                for (branch, count) in &wit.heur_counts {
                    w.u64(*branch);
                    w.u32(*count);
                }
                let evs: Vec<_> = wit
                    .trace
                    .iter()
                    .filter(|e| write_leak_sites || !matches!(e, TraceEvent::LeakSite { .. }))
                    .collect();
                w.u32(evs.len() as u32);
                for ev in evs {
                    match ev {
                        TraceEvent::SpecBranch { pc, depth, model } => {
                            w.u8(0);
                            w.u64(*pc);
                            w.u32(*depth);
                            w.u8(model.id());
                        }
                        TraceEvent::TaintedAccess {
                            pc,
                            addr,
                            width,
                            tag,
                            ..
                        } => {
                            w.u8(1);
                            w.u64(*pc);
                            w.u64(*addr);
                            w.u8(*width);
                            w.u8(*tag);
                        }
                        TraceEvent::Rollback { pc, depth, model } => {
                            w.u8(2);
                            w.u64(*pc);
                            w.u32(*depth);
                            w.u8(model.id());
                        }
                        TraceEvent::LeakSite {
                            pc, depth, model, ..
                        } => {
                            w.u8(3);
                            w.u64(*pc);
                            w.u32(*depth);
                            w.u8(model.id());
                        }
                    }
                }
            }
            w.u64(s.iters);
            w.u64(s.total_cost);
            w.u64(s.crashes);
            w.u32(s.epoch);
        }
        w.buf
    }

    #[test]
    fn v3_snapshots_load_with_empty_origins() {
        let snap = sample_snapshot();
        let back = CampaignSnapshot::from_bytes(&v3_bytes(&snap, false)).unwrap();
        // The v3 payload survives in full, model bytes included…
        assert_eq!(back.bin_fingerprint, snap.bin_fingerprint);
        assert_eq!(back.config.models, snap.config.models);
        for (a, b) in back.shard_states.iter().zip(&snap.shard_states) {
            assert_eq!(a.gadgets, b.gadgets);
            for (wa, wb) in a.witnesses.iter().zip(&b.witnesses) {
                assert_eq!(wa.key, wb.key);
                assert_eq!(wa.input, wb.input);
                // …and the v4 additions default to nothing: no origins,
                // no leak sites.
                let v3_repr = wb
                    .trace
                    .iter()
                    .filter(|e| !matches!(e, TraceEvent::LeakSite { .. }))
                    .count();
                assert_eq!(wa.trace.len(), v3_repr);
                for ev in &wa.trace {
                    assert!(ev.origin().is_none());
                    assert!(!matches!(ev, TraceEvent::LeakSite { .. }));
                }
            }
        }
    }

    #[test]
    fn leak_site_kind_is_version_gated() {
        // A kind-3 event in a v3 stream is corruption, not a leak site.
        let bytes = v3_bytes(&sample_snapshot(), true);
        assert_eq!(
            CampaignSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Corrupt("trace event kind")
        );
    }

    #[test]
    fn parser_rejects_wrong_coverage_map_size() {
        let mut snap = sample_snapshot();
        snap.shard_states[0].cov_normal.truncate(16);
        assert_eq!(
            CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap_err(),
            SnapshotError::Corrupt("coverage map size")
        );
    }
}
