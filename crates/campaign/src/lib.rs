//! `teapot-campaign` — a sharded, resumable, parallel fuzzing-campaign
//! orchestrator over [`teapot_fuzz`] workers.
//!
//! The paper's workflow culminates in long coverage-guided fuzzing
//! sessions over instrumented COTS binaries (Fig. 3; §6.3). A single
//! sequential [`teapot_fuzz::fuzz`] call reproduces that at experiment
//! scale; this crate scales it out:
//!
//! * **Sharding** — a campaign is split into `shards` deterministic
//!   sub-campaigns. Shard *i* fuzzes with RNG seed `seed ⊕ i` over its
//!   own corpus, so shards explore different parts of the input space.
//! * **Epoch barriers** — fuzzing proceeds in epochs of
//!   `iters_per_epoch` executions per shard. At each barrier the shards
//!   exchange the inputs they found interesting (cross-pollination, the
//!   corpus-sync of distributed AFL/honggfuzz deployments), coverage
//!   maps are unioned, and gadget reports are deduplicated by
//!   [`GadgetKey`].
//! * **Determinism** — merging happens strictly in shard-index order and
//!   worker threads only decide *which CPU runs which shard*, never what
//!   a shard computes. The merged gadget set and the JSON report are
//!   bit-identical for any `workers` value (acceptance: `--workers 8`
//!   equals `--workers 1` byte-for-byte).
//! * **Snapshots** — [`Campaign::snapshot`] serializes every shard
//!   (corpus, per-branch [`SpecHeuristics`] counts, coverage maps, RNG
//!   epoch) into a [`.tcs` file](snapshot); a killed campaign resumed
//!   with [`Campaign::resume`] replays bit-identically to one that never
//!   stopped, because shard RNGs are re-seeded from `(seed, epoch)` at
//!   every epoch boundary rather than serialized.
//! * **Queue mode** — [`queue::run_queue`] scans a directory of `.tof`
//!   binaries and pushes each through instrument → fuzz → report in one
//!   invocation.
//!
//! [`SpecHeuristics`]: teapot_vm::SpecHeuristics

pub mod json;
pub mod queue;
pub mod snapshot;

use std::collections::BTreeMap;
use std::sync::Arc;
use teapot_fuzz::{CampaignState, ConfigError, FuzzConfig};
use teapot_obj::Binary;
use teapot_rt::{
    CovMap, DetectorConfig, FxHashSet, GadgetKey, GadgetReport, GadgetWitness, SpecModelSet,
};
use teapot_telemetry::{Event, MetricsSink, Stopwatch, VmCounters, MODEL_NAMES};
use teapot_vm::{BlockProfile, DecodeStats, EmuStyle, ExecContext, HeurStyle, Program};

pub use snapshot::{CampaignSnapshot, SnapshotError};

/// Orchestrator configuration.
///
/// `shards`, `seed`, `epochs` and `iters_per_epoch` define *what* the
/// campaign computes; `workers` only defines how many OS threads execute
/// it and never influences results.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Base RNG seed; shard `i` fuzzes with `seed ^ i`.
    pub seed: u64,
    /// Number of deterministic sub-campaigns (the determinism unit).
    pub shards: u32,
    /// OS threads executing shards; `0` means "one per available CPU,
    /// at most one per shard". Results never depend on this.
    pub workers: usize,
    /// Epoch barriers to run.
    pub epochs: u32,
    /// Mutate-and-execute iterations per shard per epoch.
    pub iters_per_epoch: u64,
    /// Maximum input length the mutators will grow to.
    pub max_input_len: usize,
    /// Per-run cost budget.
    pub fuel_per_run: u64,
    /// Detector configuration passed to every run.
    pub detector: DetectorConfig,
    /// Execution style (native for instrumented binaries).
    pub emu: EmuStyle,
    /// Which tool's nested-speculation heuristic to persist.
    pub heur_style: HeurStyle,
    /// Active speculation models for every run of every shard
    /// (`--spec-models pht,rsb,stl`). Part of *what* the campaign
    /// computes, so it is snapshotted into the `.tcs` v3 header.
    pub models: SpecModelSet,
    /// Dictionary tokens spliced into inputs.
    pub dictionary: Vec<Vec<u8>>,
    /// Capture replayable witnesses for first-seen gadgets (see
    /// [`FuzzConfig::capture_witnesses`]). On by default; `teapot-triage`
    /// requires them for deterministic replay and minimization.
    pub capture_witnesses: bool,
    /// Adaptive shard budgets: at each epoch barrier, steal half the
    /// iteration budget of every *plateaued* shard (no new coverage
    /// feature last epoch) and redistribute it evenly across the shards
    /// still discovering. Decided purely from merged coverage counts at
    /// the barrier, so it is part of *what* the campaign computes
    /// (snapshotted in `.tcs` v5) and identical across worker counts and
    /// fleet layouts. Off by default.
    pub adaptive_budgets: bool,
    /// Coverage-subsumption corpus minimization at each epoch barrier
    /// (after the cross-shard exchange): greedily drop corpus entries
    /// whose coverage is subsumed by earlier entries. Deterministic and
    /// snapshotted like `adaptive_budgets`. Off by default.
    pub corpus_minimize: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        let f = FuzzConfig::default();
        CampaignConfig {
            seed: f.seed,
            shards: 8,
            workers: 0,
            epochs: 4,
            iters_per_epoch: 250,
            max_input_len: f.max_input_len,
            fuel_per_run: f.fuel_per_run,
            detector: f.detector,
            emu: f.emu,
            heur_style: f.heur_style,
            models: f.models,
            dictionary: f.dictionary,
            capture_witnesses: f.capture_witnesses,
            adaptive_budgets: false,
            corpus_minimize: false,
        }
    }
}

impl CampaignConfig {
    /// Validates the orchestration budgets, rejecting configurations
    /// that would silently do nothing.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.shards == 0 {
            return Err(CampaignError::ZeroShards);
        }
        if self.epochs == 0 {
            return Err(CampaignError::ZeroEpochs);
        }
        if self.iters_per_epoch == 0 {
            return Err(CampaignError::Fuzz(ConfigError::ZeroIters));
        }
        self.shard_fuzz_config(0)
            .validate()
            .map_err(CampaignError::Fuzz)
    }

    /// The [`FuzzConfig`] shard `i` runs under (`seed ⊕ i`).
    pub fn shard_fuzz_config(&self, shard: u32) -> FuzzConfig {
        FuzzConfig {
            seed: self.seed ^ shard as u64,
            max_iters: self
                .iters_per_epoch
                .saturating_mul(self.epochs as u64)
                .max(1),
            max_input_len: self.max_input_len,
            fuel_per_run: self.fuel_per_run,
            detector: self.detector.clone(),
            emu: self.emu,
            heur_style: self.heur_style,
            models: self.models,
            dictionary: self.dictionary.clone(),
            capture_witnesses: self.capture_witnesses,
        }
    }

    /// The thread count actually used for `shards` shards.
    pub fn effective_workers(&self) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let w = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        w.clamp(1, self.shards as usize)
    }
}

/// Errors from campaign orchestration.
#[derive(Debug)]
pub enum CampaignError {
    /// `shards` was zero.
    ZeroShards,
    /// `epochs` was zero.
    ZeroEpochs,
    /// An *explicit* `--workers 0` (config `workers == 0` means auto,
    /// but a user asking for zero worker threads is asking for nothing
    /// to run).
    ZeroWorkers,
    /// An explicit `--fleet 0`: a fleet with no workers cannot run.
    ZeroFleet,
    /// A per-shard fuzzer configuration was invalid.
    Fuzz(ConfigError),
    /// Snapshot (de)serialization failed.
    Snapshot(SnapshotError),
    /// Filesystem access failed (queue mode, snapshot I/O).
    Io(std::io::Error),
    /// A queued binary failed to parse or instrument.
    Binary {
        /// Path of the offending file.
        path: String,
        /// Parse or rewrite error text.
        reason: String,
    },
    /// A `.tcs` snapshot file failed to read or parse — names the file
    /// so "truncated at byte N" points somewhere actionable.
    SnapshotFile {
        /// Path of the offending snapshot.
        path: String,
        /// Read or parse error text.
        reason: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::ZeroShards => {
                write!(f, "shards must be > 0 (campaign would be empty)")
            }
            CampaignError::ZeroEpochs => {
                write!(f, "epochs must be > 0 (campaign would be empty)")
            }
            CampaignError::ZeroWorkers => {
                write!(f, "workers must be > 0 (omit --workers to use one per CPU)")
            }
            CampaignError::ZeroFleet => {
                write!(f, "fleet size must be > 0 (a fleet needs workers)")
            }
            CampaignError::Fuzz(e) => write!(f, "fuzzer config: {e}"),
            CampaignError::Snapshot(e) => write!(f, "snapshot: {e}"),
            CampaignError::Io(e) => write!(f, "i/o: {e}"),
            CampaignError::Binary { path, reason } => {
                write!(f, "{path}: {reason}")
            }
            CampaignError::SnapshotFile { path, reason } => {
                write!(f, "{path}: {reason}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> Self {
        CampaignError::Fuzz(e)
    }
}

impl From<SnapshotError> for CampaignError {
    fn from(e: SnapshotError) -> Self {
        CampaignError::Snapshot(e)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Per-shard statistics in a [`CampaignReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: u32,
    /// Executions this shard performed (fuzzing + imports).
    pub iters: u64,
    /// Final corpus size of the shard.
    pub corpus_len: usize,
    /// Gadgets the shard found (before cross-shard deduplication).
    pub gadgets: usize,
    /// Crashing runs.
    pub crashes: u64,
    /// Cost units spent executing.
    pub total_cost: u64,
}

/// A merged witness: which shard first reported the gadget, plus the
/// replayable evidence itself. Deduplicated exactly like the gadget list
/// (first shard in index order wins), so the attribution is identical
/// for every worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardWitness {
    /// Index of the shard that first found the gadget.
    pub shard: u32,
    /// The replayable witness.
    pub witness: GadgetWitness,
}

/// Merged results of a sharded campaign. Built strictly in shard-index
/// order, so it is identical for every worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Base seed of the campaign.
    pub seed: u64,
    /// Number of shards.
    pub shards: u32,
    /// Epochs completed.
    pub epochs: u32,
    /// Speculation models every run simulated.
    pub spec_models: SpecModelSet,
    /// Total executions across shards.
    pub iters: u64,
    /// Total cost units across shards.
    pub total_cost: u64,
    /// Total crashing runs across shards.
    pub crashes: u64,
    /// Sum of shard corpus sizes.
    pub corpus_total: usize,
    /// Distinct normal-coverage features in the unioned map.
    pub cov_normal_features: usize,
    /// Distinct speculative-coverage features in the unioned map.
    pub cov_spec_features: usize,
    /// Gadgets deduplicated by [`GadgetKey`], in shard-index order then
    /// per-shard discovery order.
    pub gadgets: Vec<GadgetReport>,
    /// Replayable witnesses for the gadgets above, deduplicated the same
    /// way (empty when witness capture was off).
    pub witnesses: Vec<ShardWitness>,
    /// Deduplicated gadget counts per `Controllability-Channel` bucket.
    pub buckets: BTreeMap<String, usize>,
    /// Per-shard statistics, indexed by shard.
    pub per_shard: Vec<ShardSummary>,
    /// What the shared decode pass covered (one decode serves every
    /// shard; snapshotted into `.tcs` so resumed and remote campaigns
    /// can audit decode behavior cross-host).
    pub decode_stats: DecodeStats,
}

impl CampaignReport {
    /// Number of unique gadgets across all shards.
    pub fn unique_gadgets(&self) -> usize {
        self.gadgets.len()
    }

    /// Count for one bucket, e.g. `"User-Cache"`.
    pub fn bucket(&self, name: &str) -> usize {
        self.buckets.get(name).copied().unwrap_or(0)
    }

    /// Deterministic JSON rendering (see [`json`]): byte-identical for
    /// identical campaign results, independent of worker count.
    pub fn to_json(&self) -> String {
        json::render_report(self)
    }
}

/// A sharded fuzzing campaign in progress.
pub struct Campaign {
    cfg: CampaignConfig,
    shards: Vec<CampaignState>,
    epochs_done: u32,
    seeded: bool,
    /// Decode-pass coverage of the shared [`Program`], cached from the
    /// last epoch run (or restored from a snapshot) so reports and
    /// `.tcs` files can carry it without re-decoding the binary.
    decode_stats: DecodeStats,
    /// Metrics JSONL stream (`--metrics`). Emission-only: whether a sink
    /// is attached never influences what the campaign computes.
    metrics: Option<MetricsSink>,
    /// Live per-epoch progress line on stderr.
    heartbeat: bool,
    /// Per-shard `(execs, timeline entries)` watermarks from the last
    /// emitted epoch, for delta events.
    emitted: Vec<(u64, usize)>,
    /// Per-shard coverage-feature counts observed at the start of the
    /// last epoch, the reference point [`adaptive_budgets`] diffs
    /// against. Part of campaign state (snapshotted in `.tcs` v5): a
    /// resumed campaign must hand out the same budgets as an
    /// uninterrupted one. Empty until the first epoch runs.
    prev_features: Vec<u64>,
}

impl Campaign {
    /// Creates a campaign with empty shard states.
    pub fn new(cfg: CampaignConfig) -> Result<Campaign, CampaignError> {
        cfg.validate()?;
        let shards = (0..cfg.shards)
            .map(|i| CampaignState::new(cfg.shard_fuzz_config(i)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Campaign {
            cfg,
            shards,
            epochs_done: 0,
            seeded: false,
            decode_stats: DecodeStats::default(),
            metrics: None,
            heartbeat: false,
            emitted: Vec::new(),
            prev_features: Vec::new(),
        })
    }

    /// Rebuilds a campaign from a snapshot (see [`snapshot`]). `bin`
    /// must be the same binary the snapshot was taken against.
    pub fn resume(snap: &CampaignSnapshot, bin: &Binary) -> Result<Campaign, CampaignError> {
        let fingerprint = snapshot::fingerprint(bin);
        if snap.bin_fingerprint != fingerprint {
            return Err(SnapshotError::BinaryMismatch {
                expected: snap.bin_fingerprint,
                actual: fingerprint,
            }
            .into());
        }
        snap.config.validate()?;
        if snap.shard_states.len() != snap.config.shards as usize {
            return Err(SnapshotError::Corrupt("shard count mismatch").into());
        }
        let shards = snap
            .shard_states
            .iter()
            .enumerate()
            .map(|(i, s)| CampaignState::from_snapshot(snap.config.shard_fuzz_config(i as u32), s))
            .collect::<Result<Vec<_>, _>>()?;
        // A snapshot taken before the first epoch has empty corpora and
        // must still run seed_corpus on resume, or it would silently
        // fall back to the default input and diverge from an
        // uninterrupted run with the same seeds.
        let seeded = snap.epochs_done > 0 || snap.shard_states.iter().any(|s| !s.corpus.is_empty());
        Ok(Campaign {
            cfg: snap.config.clone(),
            shards,
            epochs_done: snap.epochs_done,
            seeded,
            decode_stats: snap.decode_stats,
            metrics: None,
            heartbeat: false,
            emitted: Vec::new(),
            prev_features: snap.prev_features.clone(),
        })
    }

    /// The configuration this campaign runs under.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Overrides the worker-thread count (safe at any time: thread count
    /// is an execution detail that never influences results). `0` means
    /// auto.
    pub fn set_workers(&mut self, workers: usize) {
        self.cfg.workers = workers;
    }

    /// Raises the total epoch budget (e.g. to extend a resumed campaign
    /// beyond its original plan). Never lowers it below what already ran.
    pub fn extend_epochs(&mut self, total: u32) {
        self.cfg.epochs = self.cfg.epochs.max(total);
    }

    /// Epochs completed so far.
    pub fn epochs_done(&self) -> u32 {
        self.epochs_done
    }

    /// Whether every configured epoch has run.
    pub fn finished(&self) -> bool {
        self.epochs_done >= self.cfg.epochs
    }

    /// Runs one epoch: every shard fuzzes `iters_per_epoch` inputs (in
    /// parallel across `workers` threads), then the barrier exchanges
    /// fresh inputs between shards. `seeds` initializes shard corpora on
    /// the first epoch and is ignored afterwards.
    ///
    /// Decodes `bin` privately; epoch loops should decode once with
    /// [`Program::shared`] and call [`Campaign::run_epoch_shared`].
    pub fn run_epoch(&mut self, bin: &Binary, seeds: &[Vec<u8>]) {
        self.run_epoch_shared(&Program::shared(bin), seeds);
    }

    /// [`Campaign::run_epoch`] over a shared predecoded program: one
    /// decode pass and one pristine memory image serve every shard on
    /// every worker thread.
    pub fn run_epoch_shared(&mut self, prog: &Arc<Program>, seeds: &[Vec<u8>]) {
        self.decode_stats = *prog.stats();
        let watch = Stopwatch::new();
        let epoch = self.epochs_done;
        let seed_now = !self.seeded;
        self.seeded = true;
        let iters = self.cfg.iters_per_epoch;
        let minimize = self.cfg.corpus_minimize;
        let ranges = partition(self.shards.len(), self.cfg.effective_workers());

        // Per-shard iteration budgets: uniform, unless adaptive budgets
        // diff each shard's coverage-feature count against the start of
        // the previous epoch. Both inputs are merged barrier state, so
        // the budgets are identical for every worker count and fleet
        // layout — the fabric coordinator computes the same vector from
        // its boundary snapshots.
        let curr: Vec<u64> = self
            .shards
            .iter()
            .map(|s| (s.cov_normal().count_nonzero() + s.cov_spec().count_nonzero()) as u64)
            .collect();
        let budgets: Vec<u64> =
            if self.cfg.adaptive_budgets && self.prev_features.len() == self.shards.len() {
                adaptive_budgets(iters, &self.prev_features, &curr)
            } else {
                vec![iters; self.shards.len()]
            };
        self.prev_features = curr;
        let budgets = &budgets;

        // Phase 1 — fuzz. Shards are partitioned into contiguous chunks;
        // each thread drives its chunk sequentially. The partition is an
        // execution detail: shard states never interact here.
        std::thread::scope(|scope| {
            let mut rest = &mut self.shards[..];
            for r in &ranges {
                let (shard_chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let base = r.start;
                scope.spawn(move || {
                    for (k, st) in shard_chunk.iter_mut().enumerate() {
                        if seed_now {
                            st.seed_corpus_shared(prog, seeds);
                        }
                        st.begin_epoch(epoch);
                        st.run_iters_shared(prog, budgets[base + k]);
                    }
                });
            }
        });

        // Phase 2 — barrier exchange. Collect what every shard found
        // this epoch (shard-index order), then let each shard import the
        // others' findings. Imports consume no RNG and each shard scans
        // donors in index order, so the outcome is worker-independent.
        // Byte-identical clones — inputs the receiving shard already
        // holds, or repeats among the donated sets — are dropped instead
        // of re-executed: a clone can never add a corpus entry, so
        // plateaued campaigns stop burning iterations on it. (Dropping a
        // clone also skips its heuristic warm-up, so campaigns where
        // clones occur are not step-for-step identical to clone-replaying
        // ones — deterministically so, and without losing the corpus or
        // coverage the clone's original already contributed.)
        let fresh: Vec<Vec<Vec<u8>>> = self.shards.iter().map(|s| s.fresh_inputs()).collect();
        let fresh = &fresh;
        std::thread::scope(|scope| {
            let mut rest = &mut self.shards[..];
            for r in &ranges {
                let (shard_chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let base = r.start;
                scope.spawn(move || {
                    for (k, st) in shard_chunk.iter_mut().enumerate() {
                        let j = base + k;
                        let mut seen: FxHashSet<&[u8]> = FxHashSet::default();
                        for (i, inputs) in fresh.iter().enumerate() {
                            if i == j {
                                continue;
                            }
                            for input in inputs {
                                if st.contains_input(input) || !seen.insert(input.as_slice()) {
                                    continue;
                                }
                                st.import_input_shared(prog, input);
                            }
                        }
                        if minimize {
                            st.minimize_corpus(prog);
                        }
                    }
                });
            }
        });

        self.epochs_done = epoch + 1;
        self.emit_epoch(epoch, watch.ms());
    }

    /// Streams the epoch's telemetry (metrics JSONL + heartbeat).
    /// Reached after the barrier, outside all worker threads; a no-op
    /// unless a sink or the heartbeat is enabled.
    fn emit_epoch(&mut self, epoch: u32, wall_ms: u64) {
        if self.metrics.is_none() && !self.heartbeat {
            return;
        }
        if self.emitted.len() != self.shards.len() {
            self.emitted = vec![(0, 0); self.shards.len()];
        }
        let mut execs = 0u64;
        let mut corpus = 0usize;
        let mut keys: FxHashSet<GadgetKey> = FxHashSet::default();
        for st in &self.shards {
            execs += st.iters();
            corpus += st.corpus_len();
            keys.extend(st.gadgets().iter().map(|g| g.key));
        }
        let unique = keys.len();
        if let Some(sink) = &mut self.metrics {
            sink.emit(
                Event::new("epoch")
                    .num("epoch", epoch as u64)
                    .num("wall_ms", wall_ms)
                    .num("execs", execs)
                    .num("corpus", corpus as u64)
                    .num("unique_gadgets", unique as u64),
            );
            for (i, st) in self.shards.iter().enumerate() {
                let (prev_execs, prev_seen) = self.emitted[i];
                sink.emit(
                    Event::new("shard")
                        .num("epoch", epoch as u64)
                        .num("shard", i as u64)
                        .num("execs", st.iters() - prev_execs)
                        .num("corpus", st.corpus_len() as u64)
                        .num("cov_normal", st.cov_normal().count_nonzero() as u64)
                        .num("cov_spec", st.cov_spec().count_nonzero() as u64)
                        .num("gadgets", st.gadgets().len() as u64),
                );
                for (ord, key) in &st.gadget_timeline()[prev_seen..] {
                    sink.emit(
                        Event::new("gadget_first_seen")
                            .num("shard", i as u64)
                            .num("exec", *ord)
                            .hex("pc", key.pc)
                            .str_field("model", MODEL_NAMES[key.model.id() as usize]),
                    );
                }
            }
        }
        for (i, st) in self.shards.iter().enumerate() {
            self.emitted[i] = (st.iters(), st.gadget_timeline().len());
        }
        if self.heartbeat {
            eprintln!(
                "[teapot] epoch {}/{}: {} execs, corpus {}, {} unique gadgets ({:.2}s)",
                epoch + 1,
                self.cfg.epochs.max(epoch + 1),
                execs,
                corpus,
                unique,
                wall_ms as f64 / 1000.0,
            );
        }
    }

    /// Runs all remaining epochs and returns the merged report.
    pub fn run(&mut self, bin: &Binary, seeds: &[Vec<u8>]) -> CampaignReport {
        self.run_shared(&Program::shared(bin), seeds)
    }

    /// [`Campaign::run`] over a shared predecoded program.
    pub fn run_shared(&mut self, prog: &Arc<Program>, seeds: &[Vec<u8>]) -> CampaignReport {
        while !self.finished() {
            self.run_epoch_shared(prog, seeds);
        }
        self.report()
    }

    /// Merges shard results strictly in shard-index order.
    pub fn report(&self) -> CampaignReport {
        let mut gadget_keys: std::collections::HashSet<GadgetKey> =
            std::collections::HashSet::new();
        let mut witness_keys: std::collections::HashSet<GadgetKey> =
            std::collections::HashSet::new();
        let mut gadgets: Vec<GadgetReport> = Vec::new();
        let mut witnesses: Vec<ShardWitness> = Vec::new();
        let mut buckets: BTreeMap<String, usize> = BTreeMap::new();
        let mut union_normal = CovMap::new();
        let mut union_spec = CovMap::new();
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let (mut iters, mut total_cost, mut crashes, mut corpus_total) = (0u64, 0u64, 0u64, 0usize);

        for (i, st) in self.shards.iter().enumerate() {
            for g in st.gadgets() {
                if gadget_keys.insert(g.key) {
                    *buckets.entry(g.bucket()).or_insert(0) += 1;
                    gadgets.push(g.clone());
                }
            }
            for w in st.witnesses() {
                if witness_keys.insert(w.key) {
                    witnesses.push(ShardWitness {
                        shard: i as u32,
                        witness: w.clone(),
                    });
                }
            }
            st.cov_normal().merge_into(&mut union_normal);
            st.cov_spec().merge_into(&mut union_spec);
            iters += st.iters();
            corpus_total += st.corpus_len();
            let r = st.result();
            total_cost += r.total_cost;
            crashes += r.crashes;
            per_shard.push(ShardSummary {
                shard: i as u32,
                iters: r.iters,
                corpus_len: r.corpus_len,
                gadgets: r.gadgets.len(),
                crashes: r.crashes,
                total_cost: r.total_cost,
            });
        }

        CampaignReport {
            seed: self.cfg.seed,
            shards: self.cfg.shards,
            epochs: self.epochs_done,
            spec_models: self.cfg.models,
            iters,
            total_cost,
            crashes,
            corpus_total,
            cov_normal_features: union_normal.count_nonzero(),
            cov_spec_features: union_spec.count_nonzero(),
            gadgets,
            witnesses,
            buckets,
            per_shard,
            decode_stats: self.decode_stats,
        }
    }

    /// Drains the pooled [`ExecContext`]s out of every shard, in shard
    /// index order — queue mode recycles them into the next binary's
    /// campaign instead of rebuilding per binary. Shards that never
    /// executed contribute nothing.
    pub fn harvest_contexts(&mut self) -> Vec<ExecContext> {
        self.shards
            .iter_mut()
            .filter_map(|s| s.harvest_context())
            .collect()
    }

    /// Hands recycled [`ExecContext`]s to the shards (one each, shard
    /// index order; extras are dropped). A donated context is reset
    /// against the shard's program on first use — observably identical
    /// to a fresh one, so results never depend on recycling.
    pub fn donate_contexts(&mut self, ctxs: Vec<ExecContext>) {
        for (shard, ctx) in self.shards.iter_mut().zip(ctxs) {
            shard.donate_context(ctx);
        }
    }

    /// Attaches a metrics JSONL sink (`--metrics`). Emission-only:
    /// attaching a sink never changes what the campaign computes.
    pub fn set_metrics(&mut self, sink: MetricsSink) {
        self.metrics = Some(sink);
    }

    /// Detaches the metrics sink (to append pipeline-level events and
    /// flush it once the campaign is done).
    pub fn take_metrics(&mut self) -> Option<MetricsSink> {
        self.metrics.take()
    }

    /// Enables the per-epoch stderr progress line.
    pub fn set_heartbeat(&mut self, on: bool) {
        self.heartbeat = on;
    }

    /// Enables the guest hot-site profiler on every shard (see
    /// [`CampaignState::set_block_profiling`]).
    pub fn set_block_profiling(&mut self, on: bool) {
        for st in &mut self.shards {
            st.set_block_profiling(on);
        }
    }

    /// Executions until the campaign's first gadget: the minimum over
    /// shards of the 1-based ordinal at which a shard first reported
    /// one. A pure function of the campaign seed — independent of
    /// worker count and wall-clock — so it may appear in benchmark
    /// artifacts, not just telemetry.
    pub fn time_to_first_gadget_execs(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.gadget_timeline().first().map(|(ord, _)| *ord))
            .min()
    }

    /// Per-shard VM telemetry counters, in shard-index order.
    pub fn vm_counters(&self) -> Vec<VmCounters> {
        self.shards.iter().map(|s| s.vm_counters()).collect()
    }

    /// VM telemetry counters summed over all shards.
    pub fn merged_vm_counters(&self) -> VmCounters {
        let mut total = VmCounters::default();
        for s in &self.shards {
            total.merge(&s.vm_counters());
        }
        total
    }

    /// The union of every shard's hot-site profile (`None` unless
    /// profiling was enabled and at least one shard executed).
    pub fn merged_profile(&self) -> Option<BlockProfile> {
        let mut merged: Option<BlockProfile> = None;
        for st in &self.shards {
            if let Some(p) = st.block_profile() {
                match &mut merged {
                    Some(m) => m.merge(p),
                    None => merged = Some(p.clone()),
                }
            }
        }
        merged
    }

    /// Per-shard log2-bucketed per-run cost distributions, in
    /// shard-index order.
    pub fn cost_histograms(&self) -> Vec<[u64; 65]> {
        self.shards
            .iter()
            .map(|s| s.cost_histogram().snapshot())
            .collect()
    }

    /// Captures the whole campaign (config + every shard) into a
    /// snapshot bound to `bin` by fingerprint.
    pub fn snapshot(&self, bin: &Binary) -> CampaignSnapshot {
        CampaignSnapshot {
            config: self.cfg.clone(),
            bin_fingerprint: snapshot::fingerprint(bin),
            epochs_done: self.epochs_done,
            decode_stats: self.decode_stats,
            shard_states: self.shards.iter().map(|s| s.export_snapshot()).collect(),
            prev_features: self.prev_features.clone(),
        }
    }
}

/// Adaptive shard budgets: shards whose coverage-feature count did not
/// grow last epoch ("plateaued") give up half of the base budget; the
/// pooled iterations are split evenly over the still-advancing shards
/// (remainder to the lowest-indexed ones). The total budget is conserved
/// and the result is a pure function of the two feature vectors, so
/// every host computes the same split. All-plateaued (or all-advancing)
/// epochs fall back to uniform budgets.
pub fn adaptive_budgets(base: u64, prev: &[u64], now: &[u64]) -> Vec<u64> {
    let n = now.len();
    if prev.len() != n || n == 0 {
        return vec![base; n];
    }
    let give = base / 2;
    let plateaued: Vec<bool> = (0..n).map(|i| now[i] <= prev[i]).collect();
    let stalled = plateaued.iter().filter(|&&p| p).count();
    let active = n - stalled;
    if stalled == 0 || active == 0 || give == 0 {
        return vec![base; n];
    }
    let pool = give * stalled as u64;
    let share = pool / active as u64;
    let mut rem = pool % active as u64;
    (0..n)
        .map(|i| {
            if plateaued[i] {
                base - give
            } else {
                let extra = share
                    + if rem > 0 {
                        rem -= 1;
                        1
                    } else {
                        0
                    };
                base + extra
            }
        })
        .collect()
}

/// Balanced contiguous partition of `shards` over `workers` threads:
/// exactly `min(workers, shards)` non-empty ranges, the first
/// `shards % workers` one element longer, covering `0..shards` in order.
/// Public because the fabric coordinator leases shards to fleet workers
/// with the same split (an execution detail either way).
pub fn partition(shards: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let w = workers.clamp(1, shards.max(1));
    let (base, rem) = (shards / w, shards % w);
    let mut ranges = Vec::with_capacity(w);
    let mut start = 0;
    for i in 0..w {
        let len = base + usize::from(i < rem);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Convenience wrapper: new campaign, all epochs, merged report.
pub fn run_campaign(
    bin: &Binary,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    Ok(Campaign::new(cfg.clone())?.run(bin, seeds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_empty_budgets() {
        let ok = CampaignConfig::default();
        assert!(ok.validate().is_ok());
        let bad = CampaignConfig {
            shards: 0,
            ..CampaignConfig::default()
        };
        assert!(matches!(bad.validate(), Err(CampaignError::ZeroShards)));
        let bad = CampaignConfig {
            epochs: 0,
            ..CampaignConfig::default()
        };
        assert!(matches!(bad.validate(), Err(CampaignError::ZeroEpochs)));
        let bad = CampaignConfig {
            iters_per_epoch: 0,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(CampaignError::Fuzz(ConfigError::ZeroIters))
        ));
        let bad = CampaignConfig {
            fuel_per_run: 0,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(CampaignError::Fuzz(ConfigError::ZeroFuel))
        ));
    }

    #[test]
    fn shard_seeds_are_xored() {
        let cfg = CampaignConfig {
            seed: 0xABCD,
            ..CampaignConfig::default()
        };
        assert_eq!(cfg.shard_fuzz_config(0).seed, 0xABCD);
        assert_eq!(cfg.shard_fuzz_config(5).seed, 0xABCD ^ 5);
    }

    #[test]
    fn worker_count_is_clamped_to_shards() {
        let cfg = CampaignConfig {
            shards: 4,
            workers: 64,
            ..CampaignConfig::default()
        };
        assert_eq!(cfg.effective_workers(), 4);
        let cfg = CampaignConfig {
            shards: 4,
            workers: 1,
            ..CampaignConfig::default()
        };
        assert_eq!(cfg.effective_workers(), 1);
    }

    #[test]
    fn adaptive_budgets_conserve_and_rebalance() {
        // No plateau: uniform.
        assert_eq!(adaptive_budgets(100, &[1, 1], &[2, 2]), vec![100, 100]);
        // All plateaued: uniform (nobody to give the pool to).
        assert_eq!(adaptive_budgets(100, &[2, 2], &[2, 2]), vec![100, 100]);
        // One of three plateaued: it gives half, split over the others.
        let b = adaptive_budgets(100, &[5, 5, 5], &[5, 9, 9]);
        assert_eq!(b, vec![50, 125, 125]);
        assert_eq!(b.iter().sum::<u64>(), 300);
        let b = adaptive_budgets(101, &[5, 5, 5], &[5, 9, 9]);
        assert_eq!(b, vec![51, 126, 126]);
        assert_eq!(b.iter().sum::<u64>(), 303);
        // Uneven pool: the remainder lands on the lowest-indexed active.
        let b = adaptive_budgets(10, &[1, 1, 1, 1], &[1, 5, 5, 5]);
        assert_eq!(b.iter().sum::<u64>(), 40);
        assert_eq!(b, vec![5, 12, 12, 11]);
        // Missing history: uniform.
        assert_eq!(adaptive_budgets(100, &[], &[1, 2]), vec![100, 100]);
    }

    #[test]
    fn partition_covers_all_shards_with_full_thread_use() {
        for shards in 1..20usize {
            for workers in 1..10usize {
                let ranges = partition(shards, workers);
                // Exactly min(workers, shards) non-empty contiguous
                // ranges tiling 0..shards in order.
                assert_eq!(ranges.len(), workers.min(shards));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, shards);
                // Balanced: lengths differ by at most one.
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }
}
