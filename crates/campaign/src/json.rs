//! Deterministic JSON rendering of campaign reports.
//!
//! Hand-rolled so the workspace stays dependency-free: keys are emitted
//! in a fixed order, maps are sorted (`BTreeMap`), and nothing
//! timing- or thread-dependent is included — the bytes are a pure
//! function of the campaign result, which is what makes the
//! "`--workers 8` equals `--workers 1`" acceptance check meaningful.

use crate::{CampaignReport, ShardSummary};
use teapot_rt::{GadgetReport, SpecModel};

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn render_gadget(g: &GadgetReport, out: &mut String) {
    // The model field is emitted only for non-PHT gadgets: default
    // (PHT-only) campaign JSON stays byte-identical to the
    // pre-specmodel pipeline.
    let model = if g.key.model == SpecModel::Pht {
        String::new()
    } else {
        format!("\"model\":\"{}\",", g.key.model)
    };
    out.push_str(&format!(
        "{{\"pc\":\"{:#x}\",\"channel\":\"{}\",\"controllability\":\"{}\",{model}\
         \"bucket\":\"{}\",\"branch_pc\":\"{:#x}\",\"access_pc\":\"{:#x}\",\
         \"depth\":{},\"description\":\"{}\"}}",
        g.key.pc,
        g.key.channel,
        g.key.controllability,
        g.bucket(),
        g.branch_pc,
        g.access_pc,
        g.depth,
        escape(&g.description),
    ));
}

fn render_shard(s: &ShardSummary, out: &mut String) {
    out.push_str(&format!(
        "{{\"shard\":{},\"iters\":{},\"corpus_len\":{},\"gadgets\":{},\
         \"crashes\":{},\"total_cost\":{}}}",
        s.shard, s.iters, s.corpus_len, s.gadgets, s.crashes, s.total_cost,
    ));
}

/// Renders a [`CampaignReport`] as deterministic, pretty-stable JSON.
pub fn render_report(r: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", r.seed));
    out.push_str(&format!("  \"shards\": {},\n", r.shards));
    out.push_str(&format!("  \"epochs\": {},\n", r.epochs));
    // Emitted only for non-default model sets: default campaign JSON is
    // byte-identical to the pre-specmodel renderer.
    if !r.spec_models.is_default() {
        out.push_str(&format!("  \"spec_models\": \"{}\",\n", r.spec_models));
    }
    out.push_str(&format!(
        "  \"decode_cache\": {{\"blocks\": {}, \"insts\": {}, \"bytes\": {}, \
         \"undecoded_bytes\": {}}},\n",
        r.decode_stats.blocks,
        r.decode_stats.insts,
        r.decode_stats.bytes,
        r.decode_stats.undecoded_bytes
    ));
    out.push_str(&format!("  \"iters\": {},\n", r.iters));
    out.push_str(&format!("  \"total_cost\": {},\n", r.total_cost));
    out.push_str(&format!("  \"crashes\": {},\n", r.crashes));
    out.push_str(&format!("  \"corpus_total\": {},\n", r.corpus_total));
    out.push_str(&format!(
        "  \"cov_normal_features\": {},\n",
        r.cov_normal_features
    ));
    out.push_str(&format!(
        "  \"cov_spec_features\": {},\n",
        r.cov_spec_features
    ));
    out.push_str(&format!("  \"unique_gadgets\": {},\n", r.unique_gadgets()));

    out.push_str("  \"buckets\": {");
    for (i, (bucket, n)) in r.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(bucket), n));
    }
    out.push_str("},\n");

    out.push_str("  \"gadgets\": [");
    for (i, g) in r.gadgets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        render_gadget(g, &mut out);
    }
    if !r.gadgets.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"per_shard\": [");
    for (i, s) in r.per_shard.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        render_shard(s, &mut out);
    }
    if !r.per_shard.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use teapot_rt::{Channel, Controllability, GadgetKey, SpecModelSet};

    fn sample_report() -> CampaignReport {
        CampaignReport {
            seed: 7,
            shards: 2,
            epochs: 1,
            spec_models: SpecModelSet::PHT_ONLY,
            iters: 100,
            total_cost: 5000,
            crashes: 0,
            corpus_total: 12,
            cov_normal_features: 4,
            cov_spec_features: 9,
            gadgets: vec![GadgetReport {
                key: GadgetKey {
                    pc: 0x400100,
                    channel: Channel::Mds,
                    controllability: Controllability::User,
                    model: SpecModel::Pht,
                },
                branch_pc: 0x4000f0,
                access_pc: 0x4000f8,
                depth: 2,
                description: "load of \"secret\"\n".into(),
            }],
            witnesses: Vec::new(),
            buckets: BTreeMap::from([("User-MDS".to_string(), 1)]),
            per_shard: vec![ShardSummary {
                shard: 0,
                iters: 50,
                corpus_len: 6,
                gadgets: 1,
                crashes: 0,
                total_cost: 2500,
            }],
            decode_stats: teapot_vm::DecodeStats {
                blocks: 3,
                insts: 70,
                bytes: 512,
                undecoded_bytes: 0,
            },
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = sample_report();
        assert_eq!(render_report(&r), render_report(&r.clone()));
    }

    #[test]
    fn escapes_quotes_and_newlines() {
        let json = render_report(&sample_report());
        assert!(json.contains("load of \\\"secret\\\"\\n"));
        assert!(json.contains("\"User-MDS\":1"));
        assert!(json.contains("\"pc\":\"0x400100\""));
    }

    #[test]
    fn control_chars_are_u_escaped() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("t\ta"), "t\\ta");
    }

    #[test]
    fn model_fields_render_only_for_non_default_sets() {
        let mut r = sample_report();
        // Default set: no model annotations anywhere (pre-specmodel
        // byte-compatibility).
        let json = render_report(&r);
        assert!(!json.contains("spec_models"));
        assert!(!json.contains("\"model\""));
        // Non-default set + RSB gadget: both annotations appear.
        r.spec_models = SpecModelSet::parse("pht,rsb").unwrap();
        r.gadgets[0].key.model = SpecModel::Rsb;
        let json = render_report(&r);
        assert!(json.contains("\"spec_models\": \"pht,rsb\""));
        assert!(json.contains("\"model\":\"rsb\""));
    }
}
