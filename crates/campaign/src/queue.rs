//! Multi-binary queue mode: scan a directory of `.tof` binaries and run
//! instrument → fuzz → report over each in one invocation (the "scan a
//! whole corpus of COTS binaries" workflow that FastSpec argues for).
//!
//! Files are processed in lexicographic path order so a queue run is as
//! deterministic as a single-binary campaign. Binaries that are not yet
//! instrumented (per their TOF header flag) are rewritten with the
//! Speculation Shadows rewriter first; already-instrumented binaries are
//! fuzzed as-is.
//!
//! Across binaries the queue **recycles each shard's pooled
//! `ExecContext`**: the paged address space is re-cloned from the next
//! binary's pristine image (unavoidable — the bytes differ), but the
//! shadow engines, checkpoint stack, memory log, coverage scratch and
//! report buffers keep their allocations. Recycling is observably
//! identical to building fresh contexts (`ExecContext::reset` ==
//! `ExecContext::new` is a pipeline invariant), so queue results never
//! depend on it.

use crate::{Campaign, CampaignConfig, CampaignError, CampaignReport};
use std::path::{Path, PathBuf};
use teapot_core::{rewrite, RewriteOptions};
use teapot_obj::Binary;
use teapot_vm::ExecContext;

/// Outcome of one queued binary.
#[derive(Debug, Clone)]
pub struct QueueOutcome {
    /// Path of the `.tof` file.
    pub path: PathBuf,
    /// Whether the queue had to instrument it before fuzzing.
    pub instrumented_here: bool,
    /// The fuzz-ready (instrumented) binary the campaign ran against —
    /// kept so downstream consumers (triage replay) do not re-read and
    /// re-instrument the file.
    pub bin: Binary,
    /// The merged campaign report.
    pub report: CampaignReport,
}

/// Lists the `.tof` files under `dir`, sorted by path.
pub fn scan_queue(dir: &Path) -> Result<Vec<PathBuf>, CampaignError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some("tof"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Loads one queued binary, instrumenting it if required. Returns the
/// fuzz-ready binary and whether instrumentation happened here.
pub fn prepare_binary(path: &Path) -> Result<(Binary, bool), CampaignError> {
    let bytes = std::fs::read(path)?;
    let bin = Binary::from_bytes(&bytes).map_err(|e| CampaignError::Binary {
        path: path.display().to_string(),
        reason: format!("parse: {e}"),
    })?;
    if bin.flags.instrumented {
        return Ok((bin, false));
    }
    let rewritten =
        rewrite(&bin, &RewriteOptions::default()).map_err(|e| CampaignError::Binary {
            path: path.display().to_string(),
            reason: format!("instrument: {e}"),
        })?;
    Ok((rewritten, true))
}

/// Runs a full campaign over every `.tof` under `dir` with the same
/// orchestrator configuration. Returns per-binary outcomes in path
/// order; an unreadable or unrewritable binary aborts the queue with a
/// typed error naming the file. `seeds` initializes every campaign's
/// corpus (pass `&[]` for the default input).
pub fn run_queue(
    dir: &Path,
    cfg: &CampaignConfig,
    seeds: &[Vec<u8>],
) -> Result<Vec<QueueOutcome>, CampaignError> {
    let mut outcomes = Vec::new();
    // Per-shard execution contexts recycled across the whole queue.
    let mut ctx_pool: Vec<ExecContext> = Vec::new();
    for path in scan_queue(dir)? {
        let (bin, instrumented_here) = prepare_binary(&path)?;
        let mut campaign = Campaign::new(cfg.clone())?;
        campaign.donate_contexts(std::mem::take(&mut ctx_pool));
        let report = campaign.run(&bin, seeds);
        ctx_pool = campaign.harvest_contexts();
        outcomes.push(QueueOutcome {
            path,
            instrumented_here,
            bin,
            report,
        });
    }
    // Queue output is ordered by (binary path, then shard index inside
    // each report): downstream consumers — the JSON document and the
    // triage database — rely on this to stay byte-identical for every
    // `--workers` count. `scan_queue` already yields sorted paths; the
    // explicit sort pins the invariant against future scan changes.
    outcomes.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(outcomes)
}

/// Renders queue outcomes as one deterministic JSON document keyed by
/// file name.
pub fn render_queue_json(outcomes: &[QueueOutcome]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"queue\": [");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": \"");
        out.push_str(&crate::json::escape(&o.path.display().to_string()));
        out.push_str("\", \"instrumented_here\": ");
        out.push_str(if o.instrumented_here { "true" } else { "false" });
        out.push_str(", \"report\": ");
        // Indent the nested report for readability.
        let nested = o.report.to_json();
        out.push_str(nested.trim_end().trim_end_matches('\n'));
        out.push('}');
    }
    if !outcomes.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}
