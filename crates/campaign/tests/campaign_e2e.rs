//! End-to-end campaign acceptance tests:
//!
//! 1. **Worker-count determinism** — the same seed with 1, 2 and 8
//!    worker threads yields identical merged gadget sets and
//!    byte-identical JSON reports.
//! 2. **Snapshot/resume** — a campaign killed after epoch *k* and
//!    resumed from its `.tcs` snapshot matches an uninterrupted run.
//! 3. **Queue mode** — a directory of `.tof` binaries is scanned in
//!    deterministic order, instrumenting where needed.

use teapot_campaign::{
    queue, run_campaign, Campaign, CampaignConfig, CampaignError, CampaignSnapshot, SnapshotError,
};
use teapot_cc::{compile_to_binary, Options};
use teapot_core::{rewrite, RewriteOptions};
use teapot_obj::Binary;

/// A gadget behind a magic-byte gate plus a second, always-reachable
/// gadget — enough structure that shards genuinely trade inputs.
const TARGET: &str = "
    char bar[256];
    int baz;
    char inbuf[16];
    int main() {
        char *foo = malloc(16);
        read_input(inbuf, 16);
        int index = inbuf[1];
        if (inbuf[0] == 0x7f) {
            if (index < 10) {
                int secret = foo[index];
                baz = bar[secret];
            }
        }
        return 0;
    }";

fn instrumented(src: &str) -> Binary {
    let mut bin = compile_to_binary(src, &Options::gcc_like()).unwrap();
    bin.strip();
    rewrite(&bin, &RewriteOptions::default()).unwrap()
}

fn small_config(workers: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 0x7EA907,
        shards: 4,
        workers,
        epochs: 3,
        iters_per_epoch: 40,
        max_input_len: 16,
        ..CampaignConfig::default()
    }
}

#[test]
fn worker_count_never_changes_the_report() {
    let bin = instrumented(TARGET);
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            let mut c = Campaign::new(small_config(w)).unwrap();
            c.run(&bin, &[])
        })
        .collect();

    // Identical merged gadget sets…
    assert_eq!(runs[0].gadgets, runs[1].gadgets);
    assert_eq!(runs[0].gadgets, runs[2].gadgets);
    // …identical full reports…
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
    // …and byte-identical JSON.
    let json: Vec<String> = runs.iter().map(|r| r.to_json()).collect();
    assert_eq!(json[0], json[1]);
    assert_eq!(json[0], json[2]);
    // The campaign did real work.
    assert!(runs[0].iters >= 4 * 3 * 40);
    assert!(runs[0].cov_normal_features > 0);
}

#[test]
fn shards_exchange_interesting_inputs_at_barriers() {
    let bin = instrumented(TARGET);
    let mut c = Campaign::new(small_config(1)).unwrap();
    let before_corpus: usize = {
        c.run_epoch(&bin, &[]);
        c.report().corpus_total
    };
    c.run_epoch(&bin, &[]);
    let after = c.report();
    // Imports can only grow corpora; iters include imported executions
    // beyond the per-epoch fuzzing budget once anything was exchanged.
    assert!(after.corpus_total >= before_corpus);
    assert!(after.iters >= 2 * 4 * 40);
}

#[test]
fn barrier_dedup_drops_clones_without_changing_the_merged_report() {
    use std::collections::BTreeSet;
    use teapot_fuzz::CampaignState;
    use teapot_vm::Program;

    let bin = instrumented(TARGET);
    let prog = Program::shared(&bin);
    // Tiny inputs over enough iterations that independent shards
    // *actually* discover byte-identical entries and donate them — the
    // test asserts below that clones really were dropped, so the dedup
    // path is exercised, not just compiled.
    let cfg = CampaignConfig {
        seed: 0x7EA907,
        shards: 4,
        workers: 1,
        epochs: 4,
        iters_per_epoch: 80,
        max_input_len: 2,
        ..CampaignConfig::default()
    };

    // Production path: byte-identical clones are dropped at barriers.
    let mut c = Campaign::new(cfg.clone()).unwrap();
    let dedup = c.run_shared(&prog, &[]);

    // Reference: the same shards and epochs, but every donated input is
    // re-executed — the pre-dedup barrier behavior.
    let mut shards: Vec<CampaignState> = (0..cfg.shards)
        .map(|i| CampaignState::new(cfg.shard_fuzz_config(i)).unwrap())
        .collect();
    for epoch in 0..cfg.epochs {
        for st in shards.iter_mut() {
            if epoch == 0 {
                st.seed_corpus_shared(&prog, &[]);
            }
            st.begin_epoch(epoch);
            st.run_iters_shared(&prog, cfg.iters_per_epoch);
        }
        let fresh: Vec<Vec<Vec<u8>>> = shards.iter().map(|s| s.fresh_inputs()).collect();
        for (j, st) in shards.iter_mut().enumerate() {
            for (i, inputs) in fresh.iter().enumerate() {
                if i == j {
                    continue;
                }
                for input in inputs {
                    st.import_input_shared(&prog, input);
                }
            }
        }
    }

    // Dropping a clone can never remove what its original contributed,
    // so in this pinned configuration the merged gadget sets and
    // coverage breadth are unchanged while executions shrink. (Skipped
    // clones also skip heuristic warm-up, so this equality is a
    // regression pin for the config above, not a structural guarantee
    // for every campaign.)
    let ref_keys: BTreeSet<_> = shards
        .iter()
        .flat_map(|s| s.gadgets().iter().map(|g| g.key))
        .collect();
    let dedup_keys: BTreeSet<_> = dedup.gadgets.iter().map(|g| g.key).collect();
    assert_eq!(dedup_keys, ref_keys, "merged gadget set changed");

    let mut ref_normal = teapot_rt::CovMap::new();
    let mut ref_spec = teapot_rt::CovMap::new();
    for s in &shards {
        s.cov_normal().merge_into(&mut ref_normal);
        s.cov_spec().merge_into(&mut ref_spec);
    }
    assert_eq!(dedup.cov_normal_features, ref_normal.count_nonzero());
    assert_eq!(dedup.cov_spec_features, ref_spec.count_nonzero());

    // Non-vacuous: clones were actually donated and dropped (with this
    // config, 4 duplicate donations occur), so the campaign executed
    // strictly fewer iterations than the clone-replaying reference.
    let ref_iters: u64 = shards.iter().map(|s| s.iters()).sum();
    assert!(
        dedup.iters < ref_iters,
        "no clones were dropped (dedup {} vs reference {ref_iters}): \
         the dedup path was not exercised",
        dedup.iters
    );
}

#[test]
fn snapshot_resume_matches_uninterrupted_run() {
    let bin = instrumented(TARGET);

    // Uninterrupted: all 3 epochs in one process.
    let mut full = Campaign::new(small_config(2)).unwrap();
    let full_report = full.run(&bin, &[]);

    // Interrupted: 2 epochs, snapshot to disk, "kill", reload, resume.
    let mut first = Campaign::new(small_config(2)).unwrap();
    first.run_epoch(&bin, &[]);
    first.run_epoch(&bin, &[]);
    let snap_path = std::env::temp_dir().join("teapot-campaign-test.tcs");
    first.snapshot(&bin).save(&snap_path).unwrap();
    drop(first);

    let snap = CampaignSnapshot::load(&snap_path).unwrap();
    assert_eq!(snap.epochs_done, 2);
    let mut resumed = Campaign::resume(&snap, &bin).unwrap();
    let resumed_report = resumed.run(&bin, &[]);

    assert_eq!(full_report, resumed_report);
    assert_eq!(full_report.to_json(), resumed_report.to_json());
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn resume_rejects_a_different_binary() {
    let bin = instrumented(TARGET);
    let other = instrumented(
        "char inbuf[8];
         int main() { read_input(inbuf, 8); return inbuf[0]; }",
    );
    let mut c = Campaign::new(small_config(1)).unwrap();
    c.run_epoch(&bin, &[]);
    let snap = c.snapshot(&bin);
    match Campaign::resume(&snap, &other) {
        Err(CampaignError::Snapshot(SnapshotError::BinaryMismatch { .. })) => {}
        Err(other) => panic!("expected BinaryMismatch, got {other:?}"),
        Ok(_) => panic!("expected BinaryMismatch, resume succeeded"),
    }
}

#[test]
fn queue_mode_processes_a_directory_in_order() {
    let dir = std::env::temp_dir().join("teapot-campaign-queue-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // b_: already instrumented. a_: stripped COTS — the queue must
    // instrument it itself. z.txt: ignored.
    let inst = instrumented(TARGET);
    std::fs::write(dir.join("b_ready.tof"), inst.to_bytes()).unwrap();
    let mut cots = compile_to_binary(TARGET, &Options::gcc_like()).unwrap();
    cots.strip();
    std::fs::write(dir.join("a_cots.tof"), cots.to_bytes()).unwrap();
    std::fs::write(dir.join("z.txt"), b"not a binary").unwrap();

    let cfg = CampaignConfig {
        shards: 2,
        epochs: 2,
        iters_per_epoch: 30,
        max_input_len: 16,
        ..CampaignConfig::default()
    };
    let outcomes = queue::run_queue(&dir, &cfg, &[]).unwrap();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes[0].path.ends_with("a_cots.tof"));
    assert!(outcomes[1].path.ends_with("b_ready.tof"));
    assert!(outcomes[0].instrumented_here);
    assert!(!outcomes[1].instrumented_here);
    // Both fuzzed the same program, so the merged gadget sets agree.
    assert_eq!(outcomes[0].report.gadgets, outcomes[1].report.gadgets);

    let json = queue::render_queue_json(&outcomes);
    assert!(json.contains("a_cots.tof"));
    assert!(json.contains("\"instrumented_here\": true"));

    std::fs::remove_dir_all(&dir).ok();
}

/// Queue mode recycles each shard's pooled `ExecContext` across
/// binaries; recycling must be invisible — every queued campaign's
/// report is byte-identical to an isolated `run_campaign` over the same
/// binary (which builds its contexts from scratch).
#[test]
fn queue_context_recycling_never_changes_reports() {
    let dir = std::env::temp_dir().join("teapot-campaign-recycle-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Two *different* programs, so the recycled contexts must rebind to
    // a new pristine image between binaries (the interesting path).
    let first = instrumented(TARGET);
    let second = instrumented(
        "char buf[32];
         int out;
         int main() {
             read_input(buf, 32);
             int i = buf[0];
             if (i < 16) { out = buf[i + 8]; }
             return 0;
         }",
    );
    std::fs::write(dir.join("a.tof"), first.to_bytes()).unwrap();
    std::fs::write(dir.join("b.tof"), second.to_bytes()).unwrap();

    let cfg = CampaignConfig {
        shards: 2,
        epochs: 2,
        iters_per_epoch: 30,
        max_input_len: 16,
        ..CampaignConfig::default()
    };
    let outcomes = queue::run_queue(&dir, &cfg, &[]).unwrap();
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        let fresh = run_campaign(&o.bin, &[], &cfg).unwrap();
        assert_eq!(
            o.report.to_json(),
            fresh.to_json(),
            "{}: recycled-context report differs from fresh-context report",
            o.path.display()
        );
        assert_eq!(o.report.witnesses, fresh.witnesses);
    }

    std::fs::remove_dir_all(&dir).ok();
}
