//! Checkpoint crash-recovery tests: torn, bit-flipped and empty `.tcs`
//! files must fail to load with a typed error naming a byte offset —
//! never panic, never yield a half-parsed campaign — and the
//! `load_with_fallback` path must recover the previous epoch's rotation
//! where one exists.

use teapot_campaign::{Campaign, CampaignConfig, CampaignSnapshot, SnapshotError};
use teapot_cc::{compile_to_binary, Options};
use teapot_core::{rewrite, RewriteOptions};
use teapot_obj::Binary;

const TARGET: &str = "
    char bar[256];
    char inbuf[8];
    int main() {
        read_input(inbuf, 8);
        if (inbuf[0] == 0x7f) {
            int x = bar[inbuf[1]];
        }
        return 0;
    }";

fn instrumented() -> Binary {
    let mut bin = compile_to_binary(TARGET, &Options::gcc_like()).unwrap();
    bin.strip();
    rewrite(&bin, &RewriteOptions::default()).unwrap()
}

/// A real (small) campaign snapshot, so the corpus/gadget sections are
/// populated and corruption can land anywhere.
fn sample() -> CampaignSnapshot {
    let bin = instrumented();
    let cfg = CampaignConfig {
        seed: 0x5AFE,
        shards: 2,
        workers: 1,
        epochs: 2,
        iters_per_epoch: 30,
        max_input_len: 8,
        ..CampaignConfig::default()
    };
    let mut c = Campaign::new(cfg).unwrap();
    c.run(&bin, &[]);
    c.snapshot(&bin)
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcs-recovery-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn truncated_checkpoints_fail_with_a_named_offset() {
    let bytes = sample().to_bytes();
    // Every proper prefix must be rejected with a typed error — the CRC
    // trailer catches most cuts; very short prefixes die in the header.
    for cut in [0, 1, 5, 9, bytes.len() / 3, bytes.len() - 1] {
        let err = CampaignSnapshot::from_bytes(&bytes[..cut]).unwrap_err();
        match err {
            SnapshotError::Truncated { offset, .. } => assert!(offset <= cut, "cut {cut}"),
            SnapshotError::Checksum { covered, .. } => assert_eq!(covered, cut - 4, "cut {cut}"),
            other => panic!("cut {cut}: expected Truncated/Checksum, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("byte offset"), "cut {cut}: {msg}");
    }
}

#[test]
fn bit_flips_anywhere_are_caught_by_the_crc() {
    let bytes = sample().to_bytes();
    // Flip one bit at a spread of offsets past the version field (a
    // flipped magic/version reports BadMagic/BadVersion instead, which
    // is fine — the point is no flip ever loads).
    let step = (bytes.len() / 23).max(1);
    for at in (8..bytes.len()).step_by(step) {
        let mut evil = bytes.clone();
        evil[at] ^= 0x10;
        match CampaignSnapshot::from_bytes(&evil).unwrap_err() {
            SnapshotError::Checksum {
                covered,
                stored,
                actual,
            } => {
                assert_eq!(covered, bytes.len() - 4, "flip at {at}");
                assert_ne!(stored, actual, "flip at {at}");
            }
            other => panic!("flip at {at}: expected Checksum, got {other:?}"),
        }
    }
}

#[test]
fn zero_length_and_garbage_files_are_typed_errors() {
    match CampaignSnapshot::from_bytes(&[]).unwrap_err() {
        SnapshotError::Truncated { section, offset } => {
            assert_eq!(section, "header");
            assert_eq!(offset, 0);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    assert!(matches!(
        CampaignSnapshot::from_bytes(b"not a teapot checkpoint").unwrap_err(),
        SnapshotError::BadMagic
    ));
    // And through the file path, the error names the file.
    let dir = tempdir("garbage");
    let path = dir.join("empty.tcs");
    std::fs::write(&path, []).unwrap();
    let msg = CampaignSnapshot::load(&path).unwrap_err().to_string();
    assert!(msg.contains("empty.tcs"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atomic_save_rotates_and_fallback_recovers_the_previous_epoch() {
    let dir = tempdir("rotate");
    let path = dir.join("camp.tcs");
    let mut snap = sample();

    // First save: no rotation partner yet.
    snap.save(&path).unwrap();
    let (loaded, fell_back) = CampaignSnapshot::load_with_fallback(&path).unwrap();
    assert_eq!(loaded.epochs_done, snap.epochs_done);
    assert!(fell_back.is_none());

    // Second save rotates the first generation to `.prev`.
    let first_epochs = snap.epochs_done;
    snap.epochs_done += 1;
    snap.save(&path).unwrap();
    let prev = {
        let mut p = path.clone().into_os_string();
        p.push(".prev");
        std::path::PathBuf::from(p)
    };
    assert_eq!(
        CampaignSnapshot::load(&prev).unwrap().epochs_done,
        first_epochs
    );

    // "Crash mid-write": the primary is torn. Fallback loads `.prev`
    // and reports the primary's failure for the log line.
    let good = std::fs::read(&path).unwrap();
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    let (recovered, fell_back) = CampaignSnapshot::load_with_fallback(&path).unwrap();
    assert_eq!(recovered.epochs_done, first_epochs);
    let why = fell_back.expect("fallback must report the primary's error");
    assert!(why.contains("camp.tcs"), "{why}");

    // Both generations gone: the error is the primary's.
    std::fs::remove_file(&prev).unwrap();
    let err = CampaignSnapshot::load_with_fallback(&path).unwrap_err();
    assert!(err.to_string().contains("camp.tcs"), "{err}");

    // Cleanup sweeps all three names.
    CampaignSnapshot::remove(&path);
    assert!(!path.exists() && !prev.exists());
    std::fs::remove_dir_all(&dir).ok();
}
