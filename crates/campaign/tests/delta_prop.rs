//! Property tests for the fabric's epoch-delta machinery:
//!
//! 1. **Codec round-trip** — `encode_delta` → `decode_delta` is the
//!    identity for deltas produced by real campaign activity.
//! 2. **Replay equivalence** — for a random campaign state driven
//!    through random epochs, the full exported snapshot equals the
//!    starting snapshot with every [`ShardDelta`] replayed onto it.
//!    This is the invariant the fleet coordinator's barrier merge
//!    rests on: applying deltas in order reconstructs exactly the
//!    state a single host would hold.
//!
//! [`ShardDelta`]: teapot_rt::ShardDelta

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use teapot_campaign::snapshot::{decode_delta, encode_delta};
use teapot_campaign::CampaignConfig;
use teapot_cc::{compile_to_binary, Options};
use teapot_core::{rewrite, RewriteOptions};
use teapot_fuzz::CampaignState;
use teapot_vm::Program;

/// Same target shape as the e2e suites: one gated and one
/// always-reachable gadget.
const TARGET: &str = "
    char bar[256];
    int baz;
    char inbuf[16];
    int main() {
        char *foo = malloc(16);
        read_input(inbuf, 16);
        int index = inbuf[1];
        if (inbuf[0] == 0x7f) {
            if (index < 10) {
                int secret = foo[index];
                baz = bar[secret];
            }
        }
        return 0;
    }";

fn program() -> &'static Arc<Program> {
    static PROG: OnceLock<Arc<Program>> = OnceLock::new();
    PROG.get_or_init(|| {
        let mut bin = compile_to_binary(TARGET, &Options::gcc_like()).unwrap();
        bin.strip();
        Program::shared(&rewrite(&bin, &RewriteOptions::default()).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshot_plus_replayed_deltas_equals_full_snapshot(
        seed in any::<u64>(),
        shard in 0u32..8,
        epochs in 1u32..4,
        iters in proptest::collection::vec(5u64..60, 4),
        seeds in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16),
            0..3,
        ),
        imports in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16),
            0..4,
        ),
        minimize in any::<bool>(),
    ) {
        let prog = program();
        let cfg = CampaignConfig {
            seed,
            max_input_len: 16,
            ..CampaignConfig::default()
        };
        let mut st = CampaignState::new(cfg.shard_fuzz_config(shard)).unwrap();
        let base = st.export_snapshot();
        let mut replayed = base.clone();

        st.seed_corpus_shared(prog, &seeds);
        for epoch in 0..epochs {
            // Phase 0: fuzz.
            st.begin_epoch(epoch);
            st.run_iters_shared(prog, iters[epoch as usize % iters.len()]);
            let d0 = st.take_delta(shard, epoch, 0);
            prop_assert_eq!(&decode_delta(&encode_delta(&d0)).unwrap(), &d0);
            replayed.apply_delta(&d0);

            // Phase 1: barrier imports (donations from imaginary
            // peers), optional minimization.
            for input in &imports {
                if !st.contains_input(input) {
                    st.import_input_shared(prog, input);
                }
            }
            if minimize {
                st.minimize_corpus(prog);
            }
            let d1 = st.take_delta(shard, epoch, 1);
            prop_assert_eq!(&decode_delta(&encode_delta(&d1)).unwrap(), &d1);
            replayed.apply_delta(&d1);

            // The coordinator's merged boundary equals the live
            // worker's exported state at every barrier, not just at
            // the end.
            prop_assert_eq!(&replayed, &st.export_snapshot());
        }
    }

    #[test]
    fn deltas_are_idempotent_on_coverage(
        seed in any::<u64>(),
        iters in 10u64..80,
    ) {
        // Coverage updates ship as absolute counter values, so a
        // duplicate delta from a re-lease race must not change the
        // merged state.
        let prog = program();
        let cfg = CampaignConfig {
            seed,
            max_input_len: 16,
            ..CampaignConfig::default()
        };
        let mut st = CampaignState::new(cfg.shard_fuzz_config(0)).unwrap();
        let base = st.export_snapshot();
        st.begin_epoch(0);
        st.run_iters_shared(prog, iters);
        let d = st.take_delta(0, 0, 0);

        let mut once = base.clone();
        once.apply_delta(&d);
        let mut twice = base;
        twice.apply_delta(&d);
        twice.apply_delta(&d);
        prop_assert_eq!(&twice.cov_normal, &once.cov_normal);
        prop_assert_eq!(&twice.cov_spec, &once.cov_spec);
    }
}
