//! The TEA-64 virtual machine — the execution substrate behind every
//! Teapot experiment.
//!
//! The VM plays two roles from the paper:
//!
//! 1. **Native execution** of (instrumented) binaries: it implements the
//!    architectural semantics of TEA-64 plus the run-time services that
//!    the paper's runtime support library provides — checkpoints, the
//!    memory log, rollback (§6.1), binary ASan (§6.2.1), the DIFT tag
//!    shadow (§6.2.2), gadget reporting (§6.2.3), and two-level coverage
//!    (§6.3). Performance is accounted in deterministic *host-cost units*
//!    (see `teapot-rt::cost` and DESIGN.md §7).
//! 2. **SpecTaint-style full-system emulation** ([`EmuStyle::SpecTaint`])
//!    of uninstrumented binaries, used by the baseline comparisons of
//!    Figures 1 and 7 and the detection experiments.
//!
//! Set the `TEAPOT_TRACE` environment variable to stream simulation
//! entries, rollbacks, ASan verdicts and gadget reports to stderr while
//! debugging detection behaviour.
//!
//! # Example
//!
//! ```
//! use teapot_asm::Assembler;
//! use teapot_isa::{Inst, Reg};
//! use teapot_obj::Linker;
//! use teapot_vm::{Machine, RunOptions, SpecHeuristics, ExitStatus};
//!
//! let mut asm = Assembler::new("demo");
//! let mut f = asm.func("_start");
//! f.ins(Inst::MovRI { dst: Reg::R1, imm: 0 });
//! f.ins(Inst::Syscall { num: teapot_isa::sys::EXIT });
//! asm.finish_func(f)?;
//! let bin = Linker::new().add_object(asm.finish()).link("_start").unwrap();
//! let mut heur = SpecHeuristics::default();
//! let outcome = Machine::new(&bin, RunOptions::default()).run(&mut heur);
//! assert_eq!(outcome.status, ExitStatus::Exit(0));
//! # Ok::<(), teapot_asm::AsmError>(())
//! ```

mod asan;
mod cpu;
mod heuristics;
mod machine;
mod mem;
mod program;
mod slab;
mod taint;

pub use asan::{AsanEngine, REDZONE};
pub use cpu::{alu, cmp_flags, test_flags, AluResult, Cpu, Flags};
pub use heuristics::{HeurStyle, SpecHeuristics};
pub use machine::{
    DispatchTier, EmuStyle, ExecContext, ExitStatus, Fault, Machine, RunOptions, RunOutcome,
    RunStats,
};
pub use mem::{MemFault, PagedMem, PAGE_SIZE};
pub use program::{CompileStats, DecodeStats, Program};
pub use taint::TaintEngine;
pub use teapot_rt::{SpecModel, SpecModelSet};
pub use teapot_telemetry::{BlockProfile, HotBlock, VmCounters};
