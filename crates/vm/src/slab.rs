//! The shared page-slab core behind every VM address space.
//!
//! [`PagedMem`](crate::mem::PagedMem), the DIFT tag shadow and the ASan
//! poison shadow all used to key a `FxHashMap` by page id and probe it
//! **once per byte** — eight probes for a single `u64` load, mirrored
//! again in each shadow. A [`PageSlab`] replaces that with:
//!
//! * one contiguous byte slab holding every mapped page in address
//!   order (loader-mapped images stay contiguous; the heap grows at the
//!   tail because `malloc` hands out strictly increasing addresses);
//! * a small **sorted region table** of page runs (`first_page`,
//!   `npages`, `slot0`) — the loader maps a handful of images, so the
//!   table stays a few entries long and a run lookup is one short
//!   binary search;
//! * an inline **software TLB** of [`TLB_ENTRIES`] recently-translated
//!   pages consulted before any region walk, so the hot path of a
//!   load/store is a couple of compares plus a slice index.
//!
//! On top of the slab, callers operate on **page-bounded chunks**
//! (slices that never cross a page boundary) instead of bytes: a `u64`
//! load is one TLB probe and one 8-byte copy, and `memcpy`-style guest
//! loops move whole page slices at a time.
//!
//! [`ShadowMem`] layers zero-default semantics over a `PageSlab` for
//! the two sanitizer shadows: an absent page reads as zeroes, writing
//! zeroes to an absent page is a no-op (observably identical, and it
//! keeps untainted stores from allocating shadow pages), and `reset`
//! zeroes the slab in place so allocations survive across runs.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Page size in bytes (must be a power of two).
pub const PAGE_SIZE: u64 = 4096;
const PAGE: usize = PAGE_SIZE as usize;

/// Software-TLB depth (direct-mapped by page-id low bits). Wide enough
/// that the hot working set — several stack pages, globals, the input
/// staging area, a few heap and shadow pages — rarely conflicts, while
/// a probe stays one load + compare (256 bytes of table per address
/// space).
const TLB_ENTRIES: usize = 32;

/// Bits of a packed TLB entry holding the slot index; the page id
/// occupies the remaining high bits. One `u64` per entry keeps probes
/// and refreshes single relaxed atomic ops (no torn page/slot pairs),
/// which is what lets lookups through `&self` refresh the TLB while the
/// structure stays `Sync` (a `Program`'s pristine image is shared
/// across worker threads behind an `Arc`).
const TLB_SLOT_BITS: u32 = 28;
const TLB_SLOT_MASK: u64 = (1 << TLB_SLOT_BITS) - 1;
/// Page ids at or above this cannot be packed (only reachable via wild
/// speculative addresses beyond the 48-bit layout); they skip the TLB.
const TLB_MAX_PAGE: u64 = (1 << (64 - TLB_SLOT_BITS)) - 1;
const TLB_EMPTY: u64 = u64::MAX;

/// One run of consecutively-mapped pages backed by consecutive slots.
#[derive(Debug, Clone, Copy)]
struct Run {
    first_page: u64,
    npages: u32,
    /// Slot index of `first_page`; runs are sorted, slots are dense.
    slot0: u32,
}

/// Sorted page runs over one contiguous slab, fronted by a tiny TLB.
pub(crate) struct PageSlab {
    runs: Vec<Run>,
    bytes: Vec<u8>,
    /// Packed `page id << TLB_SLOT_BITS | slot` entries, direct-mapped
    /// by page id. Invalidated whenever the page→slot mapping changes
    /// (insertions shift slots).
    tlb: [AtomicU64; TLB_ENTRIES],
    /// Single-entry L0 front cache holding the last translation (same
    /// packing as `tlb`): a compiled slice streaming accesses against
    /// one data page resolves it with a single load + compare, pinning
    /// the entry for the slice regardless of direct-mapped conflicts.
    /// An L0 hit counts as a TLB hit, so hit + miss totals are
    /// unchanged by the cache's existence.
    l0: AtomicU64,
    /// Telemetry counters (TLB hits/misses, pages materialized).
    /// Atomics only because lookups go through `&self`; increments are
    /// relaxed load+store (no RMW — every counting slab is owned by one
    /// context/thread; the `Arc`-shared pristine image is only ever read
    /// through `reset_to`, which walks the region table directly and
    /// never touches these). The values never influence execution.
    tlb_hits: AtomicU64,
    tlb_misses: AtomicU64,
    pages_alloc: AtomicU64,
}

fn empty_tlb() -> [AtomicU64; TLB_ENTRIES] {
    std::array::from_fn(|_| AtomicU64::new(TLB_EMPTY))
}

impl Default for PageSlab {
    fn default() -> Self {
        PageSlab {
            runs: Vec::new(),
            bytes: Vec::new(),
            tlb: empty_tlb(),
            l0: AtomicU64::new(TLB_EMPTY),
            tlb_hits: AtomicU64::new(0),
            tlb_misses: AtomicU64::new(0),
            pages_alloc: AtomicU64::new(0),
        }
    }
}

impl Clone for PageSlab {
    fn clone(&self) -> Self {
        PageSlab {
            runs: self.runs.clone(),
            bytes: self.bytes.clone(),
            tlb: empty_tlb(),
            l0: AtomicU64::new(TLB_EMPTY),
            // A clone is a fresh address space (a context cloning the
            // pristine image): it starts counting from zero.
            tlb_hits: AtomicU64::new(0),
            tlb_misses: AtomicU64::new(0),
            pages_alloc: AtomicU64::new(0),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.runs.clone_from(&source.runs);
        self.bytes.clone_from(&source.bytes);
        self.invalidate_tlb();
        // Counters deliberately survive clone_from: rebinding a pooled
        // context re-clones the pristine image but the context keeps its
        // accumulated history.
    }
}

impl PageSlab {
    /// Slot of `page`: the pinned L0 entry first, then the direct-mapped
    /// TLB, then the region table.
    #[inline(always)]
    pub(crate) fn slot_of(&self, page: u64) -> Option<u32> {
        if page < TLB_MAX_PAGE {
            let p = self.l0.load(Relaxed);
            if p >> TLB_SLOT_BITS == page {
                // Relaxed load+store (not fetch_add): counting slabs are
                // single-owner, so a plain increment compiles to mov/add
                // with no lock prefix on the hottest path in the VM.
                self.tlb_hits
                    .store(self.tlb_hits.load(Relaxed) + 1, Relaxed);
                return Some((p & TLB_SLOT_MASK) as u32);
            }
            let v = self.tlb[page as usize % TLB_ENTRIES].load(Relaxed);
            if v >> TLB_SLOT_BITS == page {
                self.l0.store(v, Relaxed);
                self.tlb_hits
                    .store(self.tlb_hits.load(Relaxed) + 1, Relaxed);
                return Some((v & TLB_SLOT_MASK) as u32);
            }
        }
        self.slot_walk(page)
    }

    /// Region-table walk on a TLB miss; refreshes the TLB (and the L0
    /// pin) on a hit.
    #[cold]
    #[inline(never)]
    fn slot_walk(&self, page: u64) -> Option<u32> {
        self.tlb_misses
            .store(self.tlb_misses.load(Relaxed) + 1, Relaxed);
        let i = self.runs.partition_point(|r| r.first_page <= page);
        let r = self.runs.get(i.checked_sub(1)?)?;
        let off = page - r.first_page;
        if off >= r.npages as u64 {
            return None;
        }
        let slot = r.slot0 + off as u32;
        if page < TLB_MAX_PAGE && (slot as u64) <= TLB_SLOT_MASK {
            let packed = page << TLB_SLOT_BITS | slot as u64;
            self.tlb[page as usize % TLB_ENTRIES].store(packed, Relaxed);
            self.l0.store(packed, Relaxed);
        }
        Some(slot)
    }

    #[inline]
    pub(crate) fn page(&self, slot: u32) -> &[u8] {
        let o = slot as usize * PAGE;
        &self.bytes[o..o + PAGE]
    }

    #[inline]
    pub(crate) fn page_mut(&mut self, slot: u32) -> &mut [u8] {
        let o = slot as usize * PAGE;
        &mut self.bytes[o..o + PAGE]
    }

    /// Number of mapped pages.
    #[inline]
    pub(crate) fn num_slots(&self) -> usize {
        self.bytes.len() / PAGE
    }

    pub(crate) fn invalidate_tlb(&self) {
        self.l0.store(TLB_EMPTY, Relaxed);
        for e in &self.tlb {
            e.store(TLB_EMPTY, Relaxed);
        }
    }

    /// Maps `page` (zero-filled) if absent. Returns `(slot, created)`.
    /// Insertion keeps the slab in page order: appends are cheap (the
    /// heap case), interior inserts shift the tail.
    pub(crate) fn ensure(&mut self, page: u64) -> (u32, bool) {
        if let Some(s) = self.slot_of(page) {
            return (s, false);
        }
        *self.pages_alloc.get_mut() += 1;
        let i = self.runs.partition_point(|r| r.first_page <= page);
        let slot = match i.checked_sub(1) {
            Some(j) => self.runs[j].slot0 + self.runs[j].npages,
            None => 0,
        };
        // Open a page-sized, zeroed gap at `slot`.
        let at = slot as usize * PAGE;
        let old_len = self.bytes.len();
        self.bytes.resize(old_len + PAGE, 0);
        if at < old_len {
            self.bytes.copy_within(at..old_len, at + PAGE);
            self.bytes[at..at + PAGE].fill(0);
        }
        // Region-table bookkeeping: extend / bridge / insert.
        let extends_prev =
            i > 0 && self.runs[i - 1].first_page + self.runs[i - 1].npages as u64 == page;
        let extends_next = i < self.runs.len() && page + 1 == self.runs[i].first_page;
        match (extends_prev, extends_next) {
            (true, true) => {
                let np = self.runs[i].npages;
                self.runs[i - 1].npages += 1 + np;
                self.runs.remove(i);
            }
            (true, false) => self.runs[i - 1].npages += 1,
            (false, true) => {
                self.runs[i].first_page = page;
                self.runs[i].npages += 1;
            }
            (false, false) => self.runs.insert(
                i,
                Run {
                    first_page: page,
                    npages: 1,
                    slot0: slot,
                },
            ),
        }
        let mut s = 0u32;
        for r in &mut self.runs {
            r.slot0 = s;
            s += r.npages;
        }
        self.invalidate_tlb();
        (slot, true)
    }

    /// Restores this slab to `pristine`'s page set in place. Per-slot
    /// hooks drive the caller's metadata:
    ///
    /// * `dirty(slot)` — whether the slot's bytes diverged from the
    ///   pristine image (if so, they are byte-copied back);
    /// * `kept(old_slot, new_slot, pristine_slot)` — called for every
    ///   surviving page so the caller can compact its own per-slot
    ///   state alongside the slab.
    ///
    /// Pages not present in `pristine` are dropped; `self`'s page set
    /// must be a superset of `pristine`'s (pages are never unmapped
    /// during a run).
    pub(crate) fn reset_to(
        &mut self,
        pristine: &PageSlab,
        mut dirty: impl FnMut(u32) -> bool,
        mut kept: impl FnMut(u32, u32, u32),
    ) {
        let mut p_iter = pristine
            .runs
            .iter()
            .flat_map(|r| (0..r.npages as u64).map(move |k| r.first_page + k));
        let mut p_next = p_iter.next();
        let mut pi = 0u32; // pristine slot cursor
        let mut keep = 0u32; // next compacted slot
        for ri in 0..self.runs.len() {
            let run = self.runs[ri];
            for k in 0..run.npages {
                let page = run.first_page + k as u64;
                let slot = run.slot0 + k;
                if p_next != Some(page) {
                    continue; // run-created page: dropped
                }
                if dirty(slot) {
                    self.page_mut(keep).copy_from_slice(pristine.page(pi));
                } else if keep != slot {
                    let from = slot as usize * PAGE;
                    self.bytes
                        .copy_within(from..from + PAGE, keep as usize * PAGE);
                }
                kept(slot, keep, pi);
                pi += 1;
                keep += 1;
                p_next = p_iter.next();
            }
        }
        assert!(
            p_next.is_none(),
            "PageSlab::reset_to: live page set must cover the pristine image"
        );
        self.bytes.truncate(keep as usize * PAGE);
        self.runs.clone_from(&pristine.runs);
        self.invalidate_tlb();
    }

    /// Zeroes every mapped page, keeping the mapping and allocation.
    pub(crate) fn zero_all(&mut self) {
        self.bytes.fill(0);
    }

    /// Telemetry snapshot: `(tlb_hits, tlb_misses, pages_allocated)`.
    /// Counters accumulate over the slab's lifetime (runs and resets
    /// never clear them).
    pub(crate) fn telemetry_counts(&self) -> (u64, u64, u64) {
        (
            self.tlb_hits.load(Relaxed),
            self.tlb_misses.load(Relaxed),
            self.pages_alloc.load(Relaxed),
        )
    }
}

/// Splits `[addr, addr+len)` into page-bounded chunks, calling
/// `f(chunk_addr, chunk_len)` for each; chunk advance wraps like the
/// per-byte `addr.wrapping_add(i)` loops it replaces. `f` returns
/// `false` to stop early (fault, early verdict).
#[inline]
pub(crate) fn for_page_chunks(addr: u64, len: u64, mut f: impl FnMut(u64, usize) -> bool) {
    let mut a = addr;
    let mut rem = len;
    while rem > 0 {
        let room = PAGE_SIZE - (a % PAGE_SIZE);
        let chunk = rem.min(room) as usize;
        if !f(a, chunk) {
            return;
        }
        a = a.wrapping_add(chunk as u64);
        rem -= chunk as u64;
    }
}

/// Mask selecting the low `n` bytes of a little-endian `u64` window
/// (`n` in `1..=8`). The fixed-width fast paths in the accessors read
/// or splice a full 8-byte window and mask with this instead of doing a
/// length-dependent byte copy (which compiles to a `memcpy` call when
/// the length is a runtime value).
#[inline]
pub(crate) fn lane_mask(n: u64) -> u64 {
    debug_assert!((1..=8).contains(&n));
    u64::MAX >> ((8 - n) * 8)
}

/// A sparse, zero-default byte shadow over a [`PageSlab`] — the shared
/// backing of the DIFT tag shadow and the ASan poison shadow. An absent
/// page reads as zeroes and a zeroed page is observably identical to an
/// absent one, which is what lets [`ShadowMem::reset`] keep page
/// allocations across runs.
#[derive(Clone, Default)]
pub(crate) struct ShadowMem {
    slab: PageSlab,
}

impl ShadowMem {
    /// Mapped shadow pages (diagnostics).
    pub(crate) fn num_pages(&self) -> usize {
        self.slab.num_slots()
    }

    /// Telemetry snapshot of the backing slab:
    /// `(tlb_hits, tlb_misses, pages_allocated)`.
    pub(crate) fn telemetry_counts(&self) -> (u64, u64, u64) {
        self.slab.telemetry_counts()
    }

    /// One shadow byte (0 when the page is absent).
    #[inline]
    pub(crate) fn get(&self, addr: u64) -> u8 {
        match self.slab.slot_of(addr / PAGE_SIZE) {
            Some(s) => self.slab.page(s)[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Sets one shadow byte, returning the previous value. Writing zero
    /// to an absent page is a no-op (it already reads as zero).
    #[inline]
    pub(crate) fn set(&mut self, addr: u64, v: u8) -> u8 {
        let page = addr / PAGE_SIZE;
        let slot = match self.slab.slot_of(page) {
            Some(s) => s,
            None if v == 0 => return 0,
            None => self.slab.ensure(page).0,
        };
        let b = &mut self.slab.page_mut(slot)[(addr % PAGE_SIZE) as usize];
        let old = *b;
        *b = v;
        old
    }

    /// The page-bounded chunk of shadow starting at `addr` (at most
    /// `max` bytes): `(chunk_len, Some(slice))` when the page is
    /// present, `(chunk_len, None)` when absent (all-zero).
    #[inline]
    pub(crate) fn chunk_at(&self, addr: u64, max: u64) -> (usize, Option<&[u8]>) {
        let room = PAGE_SIZE - (addr % PAGE_SIZE);
        let chunk = max.min(room) as usize;
        match self.slab.slot_of(addr / PAGE_SIZE) {
            Some(s) => {
                let off = (addr % PAGE_SIZE) as usize;
                (chunk, Some(&self.slab.page(s)[off..off + chunk]))
            }
            None => (chunk, None),
        }
    }

    /// Fills `[addr, addr+len)` with `v`. Filling zero skips absent
    /// pages entirely (the common untainted-store case).
    #[inline]
    pub(crate) fn fill(&mut self, addr: u64, len: u64, v: u8) {
        if len == 0 {
            return;
        }
        let off = addr % PAGE_SIZE;
        if len <= 8 && off + 8 <= PAGE_SIZE {
            // Fastest path: every ≤8-byte store tag update splices a
            // broadcast byte into one fixed 8-byte window (bytes above
            // `len` written back unchanged — invisible, and free of
            // length-dependent fills).
            let page = addr / PAGE_SIZE;
            let slot = match self.slab.slot_of(page) {
                Some(s) => s,
                None if v == 0 => return,
                None => self.slab.ensure(page).0,
            };
            let off = off as usize;
            let win = &mut self.slab.page_mut(slot)[off..off + 8];
            let old = u64::from_le_bytes(win.try_into().expect("8-byte window"));
            let mask = lane_mask(len);
            let pattern = v as u64 * 0x0101_0101_0101_0101;
            win.copy_from_slice(&((old & !mask) | (pattern & mask)).to_le_bytes());
            return;
        }
        if len <= PAGE_SIZE - off {
            // Fast path: one page.
            let page = addr / PAGE_SIZE;
            let slot = match self.slab.slot_of(page) {
                Some(s) => s,
                None if v == 0 => return,
                None => self.slab.ensure(page).0,
            };
            let off = off as usize;
            self.slab.page_mut(slot)[off..off + len as usize].fill(v);
            return;
        }
        for_page_chunks(addr, len, |a, chunk| {
            let page = a / PAGE_SIZE;
            let slot = match self.slab.slot_of(page) {
                Some(s) => s,
                None if v == 0 => return true,
                None => self.slab.ensure(page).0,
            };
            let off = (a % PAGE_SIZE) as usize;
            self.slab.page_mut(slot)[off..off + chunk].fill(v);
            true
        });
    }

    /// ORs `v` into every byte of `[addr, addr+len)`.
    pub(crate) fn or_fill(&mut self, addr: u64, len: u64, v: u8) {
        if v == 0 {
            return;
        }
        for_page_chunks(addr, len, |a, chunk| {
            let (slot, _) = self.slab.ensure(a / PAGE_SIZE);
            let off = (a % PAGE_SIZE) as usize;
            for b in &mut self.slab.page_mut(slot)[off..off + chunk] {
                *b |= v;
            }
            true
        });
    }

    /// OR-fold of `[addr, addr+len)` (absent pages contribute 0).
    #[inline]
    pub(crate) fn fold_or(&self, addr: u64, len: u64) -> u8 {
        let off = addr % PAGE_SIZE;
        if len <= 8 && len > 0 && off + 8 <= PAGE_SIZE {
            // Fastest path: every ≤8-byte load tag fold is one fixed
            // 8-byte window read, masked to `len`, OR-reduced in
            // registers.
            return match self.slab.slot_of(addr / PAGE_SIZE) {
                Some(s) => {
                    let off = off as usize;
                    let w: [u8; 8] = self.slab.page(s)[off..off + 8]
                        .try_into()
                        .expect("8-byte window");
                    let mut x = u64::from_le_bytes(w) & lane_mask(len);
                    x |= x >> 32;
                    x |= x >> 16;
                    x |= x >> 8;
                    (x & 0xff) as u8
                }
                None => 0,
            };
        }
        if len <= PAGE_SIZE - off {
            // Fast path: one page.
            return match self.slab.slot_of(addr / PAGE_SIZE) {
                Some(s) => {
                    let off = off as usize;
                    self.slab.page(s)[off..off + len as usize]
                        .iter()
                        .fold(0, |a, &b| a | b)
                }
                None => 0,
            };
        }
        let mut acc = 0u8;
        for_page_chunks(addr, len, |a, chunk| {
            if let (_, Some(s)) = self.chunk_at(a, chunk as u64) {
                for &b in s {
                    acc |= b;
                }
            }
            true
        });
        acc
    }

    /// Copies `[addr, addr+out.len())` into `out` (absent pages as 0).
    pub(crate) fn read_into(&self, addr: u64, out: &mut [u8]) {
        let off = (addr % PAGE_SIZE) as usize;
        if out.len() <= PAGE - off {
            // Fast path: one page (memory-log tag capture).
            match self.slab.slot_of(addr / PAGE_SIZE) {
                Some(s) => out.copy_from_slice(&self.slab.page(s)[off..off + out.len()]),
                None => out.fill(0),
            }
            return;
        }
        let mut done = 0usize;
        for_page_chunks(addr, out.len() as u64, |a, chunk| {
            match self.chunk_at(a, chunk as u64) {
                (_, Some(s)) => out[done..done + chunk].copy_from_slice(s),
                (_, None) => out[done..done + chunk].fill(0),
            }
            done += chunk;
            true
        });
    }

    /// Writes `src` at `addr`. All-zero chunks skip absent pages.
    pub(crate) fn write_from(&mut self, addr: u64, src: &[u8]) {
        let off = (addr % PAGE_SIZE) as usize;
        if src.len() <= PAGE - off {
            // Fast path: one page (rollback tag restore).
            let page = addr / PAGE_SIZE;
            let slot = match self.slab.slot_of(page) {
                Some(s) => s,
                None if src.iter().all(|&b| b == 0) => return,
                None => self.slab.ensure(page).0,
            };
            self.slab.page_mut(slot)[off..off + src.len()].copy_from_slice(src);
            return;
        }
        let mut done = 0usize;
        for_page_chunks(addr, src.len() as u64, |a, chunk| {
            let part = &src[done..done + chunk];
            done += chunk;
            let page = a / PAGE_SIZE;
            let slot = match self.slab.slot_of(page) {
                Some(s) => s,
                None if part.iter().all(|&b| b == 0) => return true,
                None => self.slab.ensure(page).0,
            };
            let off = (a % PAGE_SIZE) as usize;
            self.slab.page_mut(slot)[off..off + chunk].copy_from_slice(part);
            true
        });
    }

    /// Makes the shadow observably identical to a fresh one while
    /// keeping the page allocations for reuse across runs.
    pub(crate) fn reset(&mut self) {
        self.slab.zero_all();
    }
}

/// A growable bitset with mid-vector insertion, used for the per-region
/// page metadata (writability, dirtiness) that rides alongside a
/// [`PageSlab`]'s slots.
#[derive(Clone, Default)]
pub(crate) struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    pub(crate) fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, v);
    }

    /// Inserts `v` at `i`, shifting higher bits up by one.
    pub(crate) fn insert(&mut self, i: usize, v: bool) {
        self.push(false);
        let mut j = self.len - 1;
        while j > i {
            let b = self.get(j - 1);
            self.set(j, b);
            j -= 1;
        }
        self.set(i, v);
    }

    pub(crate) fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        self.len = n;
        self.words.truncate(n.div_ceil(64));
        // Clear the tail bits of the last word so future pushes start clean.
        if !n.is_multiple_of(64) {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << (n % 64)) - 1;
            }
        }
    }

    /// Clears every bit, keeping the length.
    pub(crate) fn zero(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_orders_pages_and_merges_runs() {
        let mut s = PageSlab::default();
        let (a, c1) = s.ensure(10);
        let (b, c2) = s.ensure(12);
        assert!(c1 && c2);
        assert_eq!((a, b), (0, 1));
        // Bridging page 11 lands between them.
        let (m, _) = s.ensure(11);
        assert_eq!(m, 1);
        assert_eq!(s.slot_of(12), Some(2));
        assert_eq!(s.runs.len(), 1);
        assert_eq!(s.num_slots(), 3);
        // Data stays with its page across the shift.
        s.page_mut(2)[0] = 0xAB;
        let (_, _) = s.ensure(5);
        assert_eq!(s.slot_of(12), Some(3));
        assert_eq!(s.page(3)[0], 0xAB);
    }

    #[test]
    fn shadow_zero_default_and_zero_write_skip() {
        let mut sh = ShadowMem::default();
        assert_eq!(sh.get(0x1234), 0);
        assert_eq!(sh.set(0x1234, 0), 0);
        assert_eq!(sh.num_pages(), 0); // zero write allocated nothing
        assert_eq!(sh.set(0x1234, 7), 0);
        assert_eq!(sh.get(0x1234), 7);
        assert_eq!(sh.num_pages(), 1);
        sh.fill(0x2000, 0x3000, 0); // zero fill over absent pages: no-op
        assert_eq!(sh.num_pages(), 1);
        assert_eq!(sh.fold_or(0x1000, 0x4000), 7);
    }

    #[test]
    fn shadow_bulk_round_trip_across_pages() {
        let mut sh = ShadowMem::default();
        let base = PAGE_SIZE - 3;
        sh.write_from(base, &[1, 2, 3, 4, 5, 6]);
        let mut out = [0u8; 8];
        sh.read_into(base.wrapping_sub(1), &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 5, 6, 0]);
        assert_eq!(sh.fold_or(base, 6), 7);
        sh.reset();
        assert_eq!(sh.fold_or(0, 2 * PAGE_SIZE), 0);
        assert_eq!(sh.num_pages(), 2); // allocations kept
    }

    #[test]
    fn bitvec_insert_and_truncate() {
        let mut b = BitVec::default();
        for i in 0..100 {
            b.push(i % 3 == 0);
        }
        b.insert(50, true);
        assert!(b.get(50));
        for i in 0..50 {
            assert_eq!(b.get(i), i % 3 == 0);
        }
        for i in 51..101 {
            assert_eq!(b.get(i), (i - 1) % 3 == 0);
        }
        b.truncate(64);
        b.push(true);
        assert!(b.get(64));
    }
}
