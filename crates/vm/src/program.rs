//! Binary-wide predecoded programs.
//!
//! The seed interpreter paid fetch + decode through a per-run
//! `HashMap<u64, (Inst, u8)>` instruction cache that was rebuilt for
//! every `Machine` — once per fuzz input. A [`Program`] hoists that work
//! to **once per binary**: every executable section is decoded up front
//! (via `teapot-isa`'s block walk, plus an exhaustive per-byte sweep so
//! even wild speculative control flow that lands mid-instruction hits
//! the table), each instruction carries its precomputed metadata
//! (length, instrumentation class, cost class, Real-Copy membership),
//! and the whole structure is immutable — wrap it in an [`Arc`] and
//! every campaign shard and worker thread shares one decode pass.
//!
//! A `Program` also owns the **pristine memory image** of the binary
//! (loadable sections plus the stack mapping). A fresh run no longer
//! re-pokes every section byte into a new address space; it clones the
//! image once per [`ExecContext`](crate::ExecContext) and thereafter
//! restores only the dirty pages between runs.
//!
//! Correctness note: predecoding is semantically transparent because
//! code pages are read-only in the VM (stores to them fault before the
//! memory log records anything), so `decode_at` over the pristine image
//! at address `pc` is exactly what the seed's lazy per-run decode
//! computed. The `teapot` facade crate carries a differential test that
//! replays the full workload suite through both the predecoded and the
//! uncached path and asserts identical outcomes.

use crate::mem::PagedMem;
use std::sync::Arc;
use teapot_isa::{
    decode_at, walk_blocks, AccessSize, AluOp, Cc, Inst, MemRef, Operand, Reg, INST_MAX_LEN,
};
use teapot_obj::{BinFlags, Binary};
use teapot_rt::layout::{STACK_LIMIT, STACK_TOP};
use teapot_rt::{cost, TeapotMeta};

/// Entry flag: the instruction is rewriter-inserted instrumentation.
pub(crate) const F_INSTR: u8 = 1;
/// Entry flag: the address lies in the Real Copy (`TeapotMeta`).
pub(crate) const F_IN_REAL: u8 = 2;
/// Entry flag: charged even in single-copy normal mode
/// (`guard`/`sim.start`/`cov.trace` — the always-on overhead of the
/// SpecFuzz-style layout, paper Listing 3).
pub(crate) const F_ALWAYS_CHARGE: u8 = 4;
/// Entry flag: the decode at this address consumed (or its failure may
/// depend on) bytes beyond the executable section — bytes that are not
/// guaranteed immutable at run time. The VM must use the live decoder
/// here; only the address-derived flags of the entry are valid.
pub(crate) const F_LIVE: u8 = 8;
/// Entry flag: executing the instruction is a pure no-op beyond the
/// standard counters (cost markers and NOPs). The slice dispatcher
/// retires these without entering the interpreter's opcode match at
/// all — in a rewritten binary they are a large share of the stream
/// (`tag.prop`/`memlog` ride along with most architectural
/// instructions).
pub(crate) const F_NOP: u8 = 16;

/// One predecoded table slot: the instruction starting at an address.
/// Build-time representation — the final [`Region`] splits it
/// structure-of-arrays so the dispatch loop streams a compact hot
/// record per slot instead of pulling the whole ~48-byte entry (and
/// its cache lines) for every retired instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub inst: Inst<u64>,
    /// Encoded length; `0` marks an address where decoding fails (the
    /// VM raises the same invalid-instruction fault the live decoder
    /// would).
    pub len: u8,
    pub flags: u8,
    /// Native-execution cost class (`teapot-rt::cost`).
    pub cost: u32,
    /// Block-slice superinstruction metadata: number of instructions in
    /// the maximal fall-through run starting here. Interior positions
    /// are sliceable instructions (architectural straight-line code and
    /// passive instrumentation); the run may end with one terminator
    /// (branch / ret / active instrumentation / syscall). `0` marks an
    /// entry the fast path must not dispatch (undecodable or `F_LIVE`).
    pub run_len: u8,
    /// Program (non-instrumentation) instructions in the run — what the
    /// reorder-buffer budget counts for a two-copy binary.
    pub run_prog: u8,
    /// Summed native cost of the whole run (instrumentation at its full
    /// charge; the dispatcher still charges per instruction, this sum
    /// only bounds the hoisted fuel check conservatively).
    pub run_cost: u32,
}

/// The per-slot fields every dispatched instruction touches, packed to
/// 8 bytes so fall-through execution streams a few slots per cache
/// line (the instruction payload and slice metadata live in parallel
/// arrays, read only when actually needed).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotEntry {
    /// Encoded length; `0` marks an address where decoding fails.
    pub len: u8,
    pub flags: u8,
    /// Native-execution cost class (`teapot-rt::cost`).
    pub cost: u32,
}

/// Per-slot block-slice metadata, read once per slice entry.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RunInfo {
    pub run_len: u8,
    pub run_prog: u8,
    pub run_cost: u32,
}

/// Sentinel for a compiled load whose STL wrong path has no Shadow-Copy
/// continuation: the bypass cannot be simulated at this site.
pub(crate) const STL_NO_CONT: u64 = u64::MAX;

/// Sentinel for "no dense heuristic site at this slot".
pub(crate) const NO_SITE: u32 = u32::MAX;

/// One template-compiled execution record: a per-opcode-shape template
/// plus fully pre-resolved operands, so the compiled dispatch tier
/// streams uniform records with zero per-pass decode or operand work.
/// A record may *fuse* several table slots (a run of pure cost markers,
/// or an `asan.check` with the access it guards) — its counters then
/// cover every fused instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledOp {
    /// Bytes the record covers (all fused instructions).
    pub len: u8,
    /// Instructions the record retires.
    pub insts: u8,
    /// Program-instruction increments the record performs. The
    /// single-copy rule ("every instruction counts") is baked in at
    /// compile time — it is a property of the binary, not of the run.
    pub prog: u8,
    /// Cost charged while inside speculation simulation (full charge).
    pub cost_sim: u32,
    /// Cost charged outside simulation: the single-copy zeroing of
    /// unguarded instrumentation bodies is baked in per component.
    pub cost_norm: u32,
    pub kind: OpKind,
}

/// The dispatch template of a [`CompiledOp`]. Operand payloads are
/// pre-resolved copies out of the decoded instruction; `Other` falls
/// back to the full interpreter match over `Region::insts`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpKind {
    /// A fused run of pure cost markers and NOPs (`F_NOP` entries):
    /// nothing executes, the record only advances the counters and PC.
    Skip,
    MovRR {
        dst: Reg,
        src: Reg,
    },
    MovRI {
        dst: Reg,
        imm: i64,
    },
    Load {
        dst: Reg,
        mem: MemRef,
        size: AccessSize,
        sext: bool,
        /// Pre-resolved Shadow-Copy continuation for an STL bypass at
        /// this load ([`STL_NO_CONT`] when the wrong path cannot be
        /// simulated) — the `next_original_after` + shadow-twin lookup
        /// done once at compile time instead of per bypass attempt.
        stl_cont: u64,
        /// Dense heuristic site id of this load (STL gate).
        sid: u32,
    },
    /// Fused `asan.check` + guarded load superinstruction: the shadow
    /// probe and the access execute as one record when the predecoded
    /// table proves they are adjacent.
    LoadChecked {
        chk: MemRef,
        chk_size: AccessSize,
        /// Byte offset of the fused access (= the check's length).
        acc_off: u8,
        dst: Reg,
        mem: MemRef,
        size: AccessSize,
        sext: bool,
        stl_cont: u64,
        sid: u32,
    },
    Store {
        src: Reg,
        mem: MemRef,
        size: AccessSize,
    },
    /// Fused `asan.check` + guarded store superinstruction.
    StoreChecked {
        chk: MemRef,
        chk_size: AccessSize,
        acc_off: u8,
        src: Reg,
        mem: MemRef,
        size: AccessSize,
    },
    StoreI {
        imm: i32,
        mem: MemRef,
        size: AccessSize,
    },
    Lea {
        dst: Reg,
        mem: MemRef,
    },
    Push {
        src: Reg,
    },
    Pop {
        dst: Reg,
    },
    Alu {
        op: AluOp,
        dst: Reg,
        src: Operand,
    },
    Cmp {
        lhs: Reg,
        rhs: Operand,
    },
    Test {
        lhs: Reg,
        rhs: Operand,
    },
    Set {
        cc: Cc,
        dst: Reg,
    },
    Jcc {
        cc: Cc,
        target: u64,
    },
    /// `sim.start` with the trampoline target, the rewritten→original
    /// translation and the dense heuristic site id all pre-resolved.
    SimStart {
        tramp: u64,
        branch_orig: u64,
        sid: u32,
    },
    SimCheck,
    CovTrace {
        guard: u32,
    },
    CovNote {
        guard: u32,
    },
    /// Everything else: execute `Region::insts[offset]` through the
    /// full interpreter match (control flow, syscalls, rare opcodes).
    Other,
}

/// Per-slot compiled-window metadata, read once at compiled-dispatch
/// entry: how many records the fall-through window holds and the
/// conservative sums backing the hoisted fuel/ROB checks.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CRun {
    /// Records in the window (`0`: the compiled tier must not dispatch).
    pub recs: u8,
    /// Instructions the window retires (≤ [`SLICE_CAP`]).
    pub insts: u8,
    /// Program-instruction increments in the window (single-copy baked
    /// in), for the hoisted ROB check.
    pub prog: u8,
    /// Summed full cost, for the hoisted fuel check (conservative).
    pub cost: u32,
}

/// What the template-compilation pass produced for one binary —
/// surfaced in the decode-cache line and the `meta` telemetry event so
/// `--metrics` streams show compile coverage per binary. Counted over
/// the canonical (linear-walk) instruction stream; separate from
/// [`DecodeStats`], whose layout is frozen into campaign snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Canonical instructions covered by a dispatchable compiled record.
    pub records: usize,
    /// Records fusing a run of two or more pure cost markers.
    pub fused_skips: usize,
    /// Fused `asan.check`+access superinstruction records.
    pub fused_checks: usize,
    /// Dense heuristic sites (speculation gates) indexed program-wide.
    pub sites: usize,
}

/// A predecoded executable region (one `.text`-kind section),
/// structure-of-arrays: one slot per byte offset in
/// `[start, start + hot.len())`.
pub(crate) struct Region {
    pub(crate) start: u64,
    /// Hot dispatch record per slot (length / flags / cost).
    pub(crate) hot: Vec<HotEntry>,
    /// Decoded instruction per slot (read only when executed).
    pub(crate) insts: Vec<Inst<u64>>,
    /// Block-slice metadata per slot (read once per slice entry).
    pub(crate) runs: Vec<RunInfo>,
    /// Template-compiled record per slot (the compiled dispatch tier).
    pub(crate) ops: Vec<CompiledOp>,
    /// Compiled-window metadata per slot (read once per window entry).
    pub(crate) cruns: Vec<CRun>,
    /// Dense heuristic site id per slot ([`NO_SITE`] when the slot is
    /// not a speculation gate): replaces the per-decision `pc → index`
    /// hash probe in the persistent heuristics with an array read.
    pub(crate) site_id: Vec<u32>,
    /// Precomputed `TeapotMeta::to_original(va).unwrap_or(va)` per byte
    /// offset (empty for uninstrumented binaries): turns the
    /// rewritten→original translation on every `sim.start`, gadget
    /// report and model gate from a binary search into an array read.
    orig: Vec<u64>,
}

/// What one decode pass covered — reported by the campaign tooling so
/// the "decode once vs. once per run" saving is visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Basic blocks recovered by the linear walk.
    pub blocks: usize,
    /// Instructions in the canonical (linear-walk) stream.
    pub insts: usize,
    /// Executable bytes predecoded (table slots).
    pub bytes: usize,
    /// Bytes the linear walk could not decode (data islands).
    pub undecoded_bytes: usize,
}

/// An immutable, binary-wide predecoded program: shared decode tables,
/// per-instruction metadata and the pristine memory image.
pub struct Program {
    /// Process-unique identity, so a pooled [`ExecContext`] can detect
    /// (and recover from) being handed a different program than the one
    /// its pristine image came from.
    ///
    /// [`ExecContext`]: crate::ExecContext
    pub(crate) uid: u64,
    /// Entry-point address.
    pub entry: u64,
    /// Feature flags of the underlying binary.
    pub flags: BinFlags,
    meta: Option<TeapotMeta>,
    regions: Arc<Vec<Region>>,
    pristine: PagedMem,
    stats: DecodeStats,
    compile_stats: CompileStats,
    /// Total dense heuristic sites across all regions (the size of the
    /// per-program binding table in `SpecHeuristics`).
    n_sites: u32,
    /// `(start, end)` basic-block spans from the linear walk, sorted.
    block_spans: Vec<(u64, u64)>,
    /// Original coordinate → Shadow-Copy twin (smallest shadow address
    /// of the copied instruction), for the RSB/STL speculation models:
    /// a VM-driven wrong path entering from the Real Copy must continue
    /// in the Shadow Copy or the §5.3 safety net squashes it. Empty for
    /// uninstrumented binaries.
    shadow_twins: teapot_rt::FxHashMap<u64, u64>,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("entry", &self.entry)
            .field("regions", &self.regions.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Program {
    /// Decodes `binary` once: builds the pristine memory image, the
    /// per-byte instruction tables for every executable section and the
    /// basic-block statistics.
    ///
    /// # Panics
    ///
    /// Panics if an instrumented binary carries a malformed
    /// `.teapot.meta` section (a rewriter bug, not a runtime input) —
    /// the same contract the per-run loader had.
    pub fn new(binary: &Binary) -> Program {
        // The initial address space, exactly as the per-run loader built
        // it: loadable sections (bytes poked over zero-filled pages),
        // then the stack mapping.
        let mut mem = PagedMem::new();
        for sec in &binary.sections {
            if !sec.kind.is_loadable() {
                continue;
            }
            mem.map_region(sec.vaddr, sec.mem_size.max(1), sec.kind.is_writable());
            mem.poke_n(sec.vaddr, &sec.bytes);
        }
        mem.map_region(STACK_TOP - STACK_LIMIT, STACK_LIMIT, true);
        mem.seal_pristine();

        let meta = binary
            .note(".teapot.meta")
            .map(|n| TeapotMeta::from_bytes(&n.bytes).expect("malformed .teapot.meta section"));

        // The Original→Shadow twin table is built before the region
        // loop: the compile pass bakes per-load STL continuations from
        // it (the shadow twin of the next copied instruction).
        let mut shadow_twins = teapot_rt::FxHashMap::default();
        if let Some(m) = &meta {
            for &(rew, orig) in &m.addr_map {
                if m.in_shadow(rew) {
                    let e = shadow_twins.entry(orig).or_insert(rew);
                    *e = (*e).min(rew);
                }
            }
        }

        let mut stats = DecodeStats::default();
        let mut compile_stats = CompileStats::default();
        let mut n_sites: u32 = 0;
        let mut regions = Vec::new();
        let mut block_spans = Vec::new();
        for sec in &binary.sections {
            if !sec.kind.is_executable() {
                continue;
            }
            let start = sec.vaddr;
            let span = sec.mem_size.max(1) as usize;

            // Canonical instruction stream + block structure. The walk's
            // decodes are reused directly as table entries below — an
            // instruction the walk recovered saw exactly the bytes the
            // live decoder would (a decode that would straddle the
            // section end comes back truncated and is not reused).
            let image = mem.read_for_decode(start, span);
            let walk = walk_blocks(&image, start);
            stats.blocks += walk.blocks.len();
            stats.insts += walk.insts.len();
            stats.bytes += span;
            stats.undecoded_bytes += walk.undecoded_bytes;
            block_spans.extend(walk.blocks.iter().map(|b| (b.start, b.end)));

            // Exhaustive per-byte table: start from the walk's canonical
            // stream, then decode the remaining offsets (mid-instruction
            // addresses, data islands) against the pristine image, so
            // even wild speculative control flow hits the table with the
            // live decoder's answer.
            //
            // Trust boundary: an entry is only frozen into the table if
            // every byte its decode consumed — or, for a failed decode,
            // every byte its verdict may depend on — lies inside this
            // section, whose pages are immutable at run time. Entries in
            // the section's last few bytes may read into an adjacent
            // *writable* page; those are marked `F_LIVE` and the VM
            // decodes them from current guest memory instead (the seed
            // semantics for mutable bytes).
            let bad = |va: u64| Entry {
                inst: Inst::Nop,
                len: 0,
                flags: addr_flags(meta.as_ref(), va),
                cost: 0,
                run_len: 0,
                run_prog: 0,
                run_cost: 0,
            };
            let mut entries: Vec<Entry> = (0..span).map(|off| bad(start + off as u64)).collect();
            let mut decoded = vec![false; span];
            for wi in &walk.insts {
                let off = (wi.va - start) as usize;
                entries[off] = Entry {
                    flags: entry_flags(&wi.inst, meta.as_ref(), wi.va),
                    cost: inst_cost(&wi.inst) as u32,
                    inst: wi.inst,
                    len: wi.len,
                    run_len: 0,
                    run_prog: 0,
                    run_cost: 0,
                };
                decoded[off] = true;
            }
            for off in 0..span {
                if decoded[off] {
                    continue;
                }
                let va = start + off as u64;
                let bytes = mem.read_for_decode(va, INST_MAX_LEN);
                match decode_at(&bytes, va) {
                    Ok((inst, len)) if off + len <= span => {
                        entries[off] = Entry {
                            flags: entry_flags(&inst, meta.as_ref(), va),
                            cost: inst_cost(&inst) as u32,
                            inst,
                            len: len as u8,
                            run_len: 0,
                            run_prog: 0,
                            run_cost: 0,
                        };
                    }
                    Ok(_) => entries[off].flags |= F_LIVE,
                    Err(_) if off + INST_MAX_LEN > span => entries[off].flags |= F_LIVE,
                    Err(_) => {}
                }
            }
            compute_slices(&mut entries);
            let site_id = assign_sites(&entries, &mut n_sites);
            let (ops, cruns) = compile_region(
                &entries,
                start,
                binary.flags.single_copy,
                meta.as_ref(),
                &shadow_twins,
                &site_id,
                &decoded,
                &mut compile_stats,
            );
            let orig = match &meta {
                Some(m) => (0..span)
                    .map(|off| {
                        let va = start + off as u64;
                        m.to_original(va).unwrap_or(va)
                    })
                    .collect(),
                None => Vec::new(),
            };
            regions.push(Region {
                start,
                hot: entries
                    .iter()
                    .map(|e| HotEntry {
                        len: e.len,
                        flags: e.flags,
                        cost: e.cost,
                    })
                    .collect(),
                insts: entries.iter().map(|e| e.inst).collect(),
                runs: entries
                    .iter()
                    .map(|e| RunInfo {
                        run_len: e.run_len,
                        run_prog: e.run_prog,
                        run_cost: e.run_cost,
                    })
                    .collect(),
                ops,
                cruns,
                site_id,
                orig,
            });
        }
        regions.sort_by_key(|r| r.start);
        block_spans.sort_unstable();
        compile_stats.sites = n_sites as usize;

        static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let regions = Arc::new(regions);
        Program {
            uid: NEXT_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            entry: binary.entry,
            flags: binary.flags,
            meta,
            regions,
            pristine: mem,
            stats,
            compile_stats,
            n_sites,
            block_spans,
            shadow_twins,
        }
    }

    /// Shadow-Copy twin of an original-coordinate instruction, if the
    /// binary is instrumented and the instruction was copied.
    pub fn shadow_twin(&self, orig: u64) -> Option<u64> {
        self.shadow_twins.get(&orig).copied()
    }

    /// Convenience: decode once and wrap for sharing across shards and
    /// worker threads.
    pub fn shared(binary: &Binary) -> Arc<Program> {
        Arc::new(Program::new(binary))
    }

    /// Parsed `.teapot.meta`, if the binary is instrumented.
    pub fn meta(&self) -> Option<&TeapotMeta> {
        self.meta.as_ref()
    }

    /// What the decode pass covered.
    pub fn stats(&self) -> &DecodeStats {
        &self.stats
    }

    /// What the template-compilation pass produced.
    pub fn compile_stats(&self) -> &CompileStats {
        &self.compile_stats
    }

    /// Number of dense heuristic sites (speculation gates) in the
    /// program — the size of the per-program heuristics binding table.
    #[inline]
    pub(crate) fn site_count(&self) -> u32 {
        self.n_sites
    }

    /// Dense heuristic site id of the gate instruction at `pc`, when
    /// `pc` lies in a predecoded region and the slot is a gate.
    #[inline]
    pub(crate) fn site_id_of(&self, pc: u64) -> Option<u32> {
        for r in self.regions.iter() {
            if pc >= r.start {
                let off = (pc - r.start) as usize;
                if off < r.site_id.len() {
                    let id = r.site_id[off];
                    return (id != NO_SITE).then_some(id);
                }
            }
        }
        None
    }

    /// `(start, end)` address spans of the basic blocks the linear walk
    /// recovered, sorted by start address.
    pub fn blocks(&self) -> &[(u64, u64)] {
        &self.block_spans
    }

    /// The pristine initial memory image (sections + stack).
    pub(crate) fn pristine(&self) -> &PagedMem {
        &self.pristine
    }

    /// Predecoded slot at `pc` (instruction + hot record), or `None`
    /// when `pc` is outside every executable section (the VM then falls
    /// back to live decoding, the seed behavior for such addresses).
    #[inline]
    pub(crate) fn fetch(&self, pc: u64) -> Option<(Inst<u64>, HotEntry)> {
        for r in self.regions.iter() {
            if pc >= r.start {
                let off = (pc - r.start) as usize;
                if off < r.hot.len() {
                    return Some((r.insts[off], r.hot[off]));
                }
            }
        }
        None
    }

    /// The shared region tables. The dispatch loop clones this `Arc`
    /// once per run and borrows entries from the clone, so the
    /// per-instruction fetch is a plain slice index with no borrow of
    /// the machine.
    #[inline]
    pub(crate) fn regions_arc(&self) -> Arc<Vec<Region>> {
        Arc::clone(&self.regions)
    }

    /// Precomputed original-binary coordinate of `pc`
    /// (`meta.to_original(pc).unwrap_or(pc)`), when `pc` lies in a
    /// predecoded region of an instrumented binary.
    #[inline]
    pub(crate) fn orig_of(&self, pc: u64) -> Option<u64> {
        for r in self.regions.iter() {
            if pc >= r.start {
                let off = (pc - r.start) as usize;
                if off < r.orig.len() {
                    return Some(r.orig[off]);
                }
            }
        }
        None
    }

    /// Shorthand for [`Region`] membership of `pc`.
    #[inline]
    pub(crate) fn region_of(regions: &[Region], pc: u64) -> Option<(&Region, usize)> {
        regions
            .iter()
            .find(|r| pc >= r.start && ((pc - r.start) as usize) < r.hot.len())
            .map(|r| (r, (pc - r.start) as usize))
    }
}

/// Longest slice the dispatcher fuses; bounds the hoisted fuel/ROB
/// checks (they must cover the whole run conservatively) and keeps
/// `run_len`/`run_prog` in a byte.
const SLICE_CAP: u8 = 64;

/// Reverse-DP pass precomputing the block slices ("superinstructions"):
/// for every decodable, non-`F_LIVE` offset, the fall-through window of
/// up to [`SLICE_CAP`] decodable instructions starting there, with its
/// summed cost and program-instruction count. Any instruction may sit
/// in a slice — the dispatcher executes through the same `exec` as the
/// per-step path and stops the moment control or simulation depth
/// diverges from fall-through (taken branch, checkpoint push/pop,
/// fault) — so a window simply ends at region/`F_LIVE`/decode-failure
/// boundaries. A window only extends across entries with the same
/// `F_IN_REAL` flag, so the hoisted §5.3 safety-net check at slice
/// entry covers every instruction in it.
fn compute_slices(entries: &mut [Entry]) {
    let n = entries.len();
    for off in (0..n).rev() {
        let e = entries[off];
        if e.len == 0 || e.flags & F_LIVE != 0 {
            continue; // run_len stays 0: fast path must not dispatch
        }
        let own_prog = u8::from(e.flags & F_INSTR == 0);
        let (rl, rp, rc) = match entries.get(off + e.len as usize) {
            Some(ne)
                if ne.run_len >= 1
                    && ne.run_len < SLICE_CAP
                    && (ne.flags ^ e.flags) & F_IN_REAL == 0 =>
            {
                (1 + ne.run_len, own_prog + ne.run_prog, e.cost + ne.run_cost)
            }
            _ => (1, own_prog, e.cost),
        };
        entries[off].run_len = rl;
        entries[off].run_prog = rp;
        entries[off].run_cost = rc;
    }
}

/// Cap on the pure cost markers one `Skip` record fuses: keeps the
/// record's byte length well inside a `u8` (16 × `INST_MAX_LEN` = 192)
/// and its instruction count a small share of a compiled window.
const SKIP_FUSE_CAP: u8 = 16;

/// Assigns dense heuristic site ids: one per decoded, non-`F_LIVE`
/// speculation-gate instruction (`sim.start` → PHT, `ret` → RSB, loads
/// → STL, conditional branches → SpecTaint-emulation PHT). Ids are
/// sequential across regions in address order; the key a gate consults
/// the heuristics under is a pure function of the slot's address and
/// frozen opcode, so one id always stands for one site key.
fn assign_sites(entries: &[Entry], next: &mut u32) -> Vec<u32> {
    entries
        .iter()
        .map(|e| {
            if e.len == 0 || e.flags & F_LIVE != 0 {
                return NO_SITE;
            }
            match e.inst {
                Inst::SimStart { .. } | Inst::Ret | Inst::Load { .. } | Inst::Jcc { .. } => {
                    let id = *next;
                    *next += 1;
                    id
                }
                _ => NO_SITE,
            }
        })
        .collect()
}

/// Per-record accounting: program-instruction increment and the
/// normal-mode cost with the single-copy zeroing rule baked in (the
/// in-simulation cost is always the full charge).
#[inline]
fn op_accounting(e: &Entry, single_copy: bool) -> (u8, u32) {
    let is_instr = e.flags & F_INSTR != 0;
    let prog = u8::from(single_copy || !is_instr);
    let cost_norm = if single_copy && is_instr && e.flags & F_ALWAYS_CHARGE == 0 {
        0
    } else {
        e.cost
    };
    (prog, cost_norm)
}

/// Pre-resolved Shadow-Copy continuation of an STL bypass at the load
/// at `acc_pc` (fall-through continuation `cont`): exactly the lookup
/// `Machine::try_stl_bypass` performs per attempt, hoisted to compile
/// time. [`STL_NO_CONT`] marks a load whose wrong path cannot be
/// simulated.
fn stl_cont_of(
    meta: Option<&TeapotMeta>,
    single_copy: bool,
    shadow_twins: &teapot_rt::FxHashMap<u64, u64>,
    acc_pc: u64,
    cont: u64,
) -> u64 {
    match meta {
        Some(m) if !single_copy && m.in_real(cont) => m
            .next_original_after(acc_pc)
            .and_then(|o| shadow_twins.get(&o).copied())
            .unwrap_or(STL_NO_CONT),
        _ => cont,
    }
}

/// The template-compilation pass: builds one [`CompiledOp`] record per
/// decodable, non-`F_LIVE` slot (fusing `F_NOP` marker runs and
/// `asan.check`+access pairs when the table proves adjacency), then a
/// reverse-DP over *records* producing the per-slot [`CRun`] windows
/// whose sums back the hoisted fuel/safety-net/ROB checks — so
/// executing a window record-by-record covers exactly the instructions
/// the hoisted checks were computed against. Fusion never crosses an
/// `F_IN_REAL` boundary (one hoisted escape check covers a window) and
/// every slot keeps its own record, so control flow entering *between*
/// the halves of a fused pair (an STL squash resuming at the guarded
/// load) dispatches the plain record at that slot.
#[allow(clippy::too_many_arguments)]
fn compile_region(
    entries: &[Entry],
    start: u64,
    single_copy: bool,
    meta: Option<&TeapotMeta>,
    shadow_twins: &teapot_rt::FxHashMap<u64, u64>,
    site_id: &[u32],
    canonical: &[bool],
    stats: &mut CompileStats,
) -> (Vec<CompiledOp>, Vec<CRun>) {
    let n = entries.len();
    let nil = CompiledOp {
        len: 0,
        insts: 0,
        prog: 0,
        cost_sim: 0,
        cost_norm: 0,
        kind: OpKind::Other,
    };
    let mut ops = vec![nil; n];
    let mut cruns = vec![CRun::default(); n];
    for off in (0..n).rev() {
        let e = &entries[off];
        if e.len == 0 || e.flags & F_LIVE != 0 {
            continue; // recs stays 0: the compiled tier must not dispatch
        }
        let pc = start + off as u64;
        let next_off = off + e.len as usize;
        let (own_prog, own_norm) = op_accounting(e, single_copy);
        let mut op = CompiledOp {
            len: e.len,
            insts: 1,
            prog: own_prog,
            cost_sim: e.cost,
            cost_norm: own_norm,
            kind: compile_kind(e, pc, single_copy, meta, shadow_twins, site_id[off]),
        };
        if e.flags & F_NOP != 0 {
            // Fuse a fall-through run of pure markers into one Skip.
            if let Some(ne) = entries.get(next_off) {
                let nop = ops[next_off];
                if matches!(nop.kind, OpKind::Skip)
                    && nop.insts < SKIP_FUSE_CAP
                    && (ne.flags ^ e.flags) & F_IN_REAL == 0
                {
                    op.len += nop.len;
                    op.insts += nop.insts;
                    op.prog += nop.prog;
                    op.cost_sim += nop.cost_sim;
                    op.cost_norm += nop.cost_norm;
                }
            }
        } else if let Inst::AsanCheck {
            mem: chk,
            size: chk_size,
            is_write: _,
        } = e.inst
        {
            // Fuse the check with the access it guards when the next
            // table slot is that access (decodable, immutable, same
            // Real-Copy membership).
            if let Some(ne) = entries.get(next_off) {
                if ne.len != 0 && ne.flags & F_LIVE == 0 && (ne.flags ^ e.flags) & F_IN_REAL == 0 {
                    let acc_pc = pc + e.len as u64;
                    let (acc_prog, acc_norm) = op_accounting(ne, single_copy);
                    let fused = match ne.inst {
                        Inst::Load {
                            dst,
                            mem,
                            size,
                            sext,
                        } => Some(OpKind::LoadChecked {
                            chk,
                            chk_size,
                            acc_off: e.len,
                            dst,
                            mem,
                            size,
                            sext,
                            stl_cont: stl_cont_of(
                                meta,
                                single_copy,
                                shadow_twins,
                                acc_pc,
                                acc_pc + ne.len as u64,
                            ),
                            sid: site_id[next_off],
                        }),
                        Inst::Store { src, mem, size } => Some(OpKind::StoreChecked {
                            chk,
                            chk_size,
                            acc_off: e.len,
                            src,
                            mem,
                            size,
                        }),
                        _ => None,
                    };
                    if let Some(kind) = fused {
                        op.kind = kind;
                        op.len += ne.len;
                        op.insts = 2;
                        op.prog += acc_prog;
                        op.cost_sim += ne.cost;
                        op.cost_norm += acc_norm;
                    }
                }
            }
        }
        if canonical[off] {
            stats.records += 1;
            match op.kind {
                OpKind::Skip if op.insts >= 2 => stats.fused_skips += 1,
                OpKind::LoadChecked { .. } | OpKind::StoreChecked { .. } => stats.fused_checks += 1,
                _ => {}
            }
        }
        // Window DP over records: extend while the next slot's window
        // exists, the combined instruction count stays within the slice
        // cap and Real-Copy membership is homogeneous.
        let rec_end = off + op.len as usize;
        let cr = match (entries.get(rec_end), cruns.get(rec_end)) {
            (Some(ne), Some(nc))
                if nc.recs >= 1
                    && op.insts as u32 + nc.insts as u32 <= SLICE_CAP as u32
                    && (ne.flags ^ e.flags) & F_IN_REAL == 0 =>
            {
                CRun {
                    recs: 1 + nc.recs,
                    insts: op.insts + nc.insts,
                    prog: op.prog + nc.prog,
                    cost: op.cost_sim + nc.cost,
                }
            }
            _ => CRun {
                recs: 1,
                insts: op.insts,
                prog: op.prog,
                cost: op.cost_sim,
            },
        };
        ops[off] = op;
        cruns[off] = cr;
    }
    (ops, cruns)
}

/// The pre-resolved dispatch template for one (unfused) instruction.
fn compile_kind(
    e: &Entry,
    pc: u64,
    single_copy: bool,
    meta: Option<&TeapotMeta>,
    shadow_twins: &teapot_rt::FxHashMap<u64, u64>,
    sid: u32,
) -> OpKind {
    if e.flags & F_NOP != 0 {
        return OpKind::Skip;
    }
    match e.inst {
        Inst::MovRR { dst, src } => OpKind::MovRR { dst, src },
        Inst::MovRI { dst, imm } => OpKind::MovRI { dst, imm },
        Inst::Load {
            dst,
            mem,
            size,
            sext,
        } => OpKind::Load {
            dst,
            mem,
            size,
            sext,
            stl_cont: stl_cont_of(meta, single_copy, shadow_twins, pc, pc + e.len as u64),
            sid,
        },
        Inst::Store { src, mem, size } => OpKind::Store { src, mem, size },
        Inst::StoreI { imm, mem, size } => OpKind::StoreI { imm, mem, size },
        Inst::Lea { dst, mem } => OpKind::Lea { dst, mem },
        Inst::Push { src } => OpKind::Push { src },
        Inst::Pop { dst } => OpKind::Pop { dst },
        Inst::Alu { op, dst, src } => OpKind::Alu { op, dst, src },
        Inst::Cmp { lhs, rhs } => OpKind::Cmp { lhs, rhs },
        Inst::Test { lhs, rhs } => OpKind::Test { lhs, rhs },
        Inst::Set { cc, dst } => OpKind::Set { cc, dst },
        Inst::Jcc { cc, target } => OpKind::Jcc { cc, target },
        Inst::SimStart { tramp } => OpKind::SimStart {
            tramp,
            branch_orig: meta.and_then(|m| m.to_original(pc)).unwrap_or(pc),
            sid,
        },
        Inst::SimCheck => OpKind::SimCheck,
        Inst::CovTrace { guard } => OpKind::CovTrace { guard },
        Inst::CovNote { guard } => OpKind::CovNote { guard },
        _ => OpKind::Other,
    }
}

/// Address-derived flags, valid whether or not the address decodes:
/// the Real-Copy safety net must fire for undecodable Real-Copy
/// addresses too (counted as an escape, not an invalid-instruction
/// fault — exactly the seed's check order).
fn addr_flags(meta: Option<&TeapotMeta>, va: u64) -> u8 {
    if meta.is_some_and(|m| m.in_real(va)) {
        F_IN_REAL
    } else {
        0
    }
}

fn entry_flags(inst: &Inst<u64>, meta: Option<&TeapotMeta>, va: u64) -> u8 {
    let (is_instr, always_charge, _) = inst_meta(inst);
    let mut f = addr_flags(meta, va);
    if is_instr {
        f |= F_INSTR;
    }
    if always_charge {
        f |= F_ALWAYS_CHARGE;
    }
    if matches!(
        inst,
        Inst::Nop
            | Inst::MarkerNop
            | Inst::TagProp
            | Inst::TagBlockProp { .. }
            | Inst::MemLog { .. }
            | Inst::Guard
    ) {
        f |= F_NOP;
    }
    f
}

/// The per-instruction execution metadata `(is_instrumentation,
/// always_charge, cost)` — the single definition behind both the frozen
/// table entries and the VM's live-decode path, so the two can never
/// diverge on cost accounting.
pub(crate) fn inst_meta(inst: &Inst<u64>) -> (bool, bool, u64) {
    let always_charge = matches!(
        inst,
        Inst::Guard | Inst::SimStart { .. } | Inst::CovTrace { .. }
    );
    (inst.is_instrumentation(), always_charge, inst_cost(inst))
}

/// Cost of one instruction under native execution (see `teapot-rt::cost`).
pub(crate) fn inst_cost(inst: &Inst<u64>) -> u64 {
    match inst {
        Inst::SimStart { .. } => cost::SIM_START,
        Inst::SimCheck => cost::SIM_CHECK,
        Inst::SimEnd => cost::SIM_END,
        Inst::AsanCheck { .. } => cost::ASAN_CHECK,
        Inst::MemLog { .. } => cost::MEMLOG,
        Inst::TagProp => cost::TAG_PROP,
        Inst::TagBlockProp { n } => cost::tag_block_prop(*n),
        Inst::IndCheck { .. } => cost::IND_CHECK,
        Inst::CovTrace { .. } => cost::COV_TRACE,
        Inst::CovNote { .. } => cost::COV_NOTE,
        Inst::Guard => cost::GUARD,
        _ => cost::PLAIN_INST,
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    /// The compiled tier streams one `CompiledOp` per record; keeping
    /// the record within a cache line is part of the design. This pins
    /// the layout so a new operand payload can't silently bloat it.
    #[test]
    fn compiled_op_stays_within_a_cache_line() {
        let sz = std::mem::size_of::<CompiledOp>();
        eprintln!(
            "CompiledOp = {sz} bytes, OpKind = {} bytes, CRun = {} bytes",
            std::mem::size_of::<OpKind>(),
            std::mem::size_of::<CRun>()
        );
        assert!(sz <= 64, "CompiledOp grew to {sz} bytes");
    }
}
