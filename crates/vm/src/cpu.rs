//! Architectural CPU state: registers, FLAGS and their x86-style update
//! rules, and condition-code evaluation.

use teapot_isa::{AluOp, Cc, Reg};

/// The FLAGS register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag (unsigned overflow / borrow).
    pub cf: bool,
    /// Overflow flag (signed overflow).
    pub of: bool,
}

impl Flags {
    /// Evaluates a condition code (x86 semantics).
    pub fn eval(self, cc: Cc) -> bool {
        match cc {
            Cc::E => self.zf,
            Cc::Ne => !self.zf,
            Cc::L => self.sf != self.of,
            Cc::Le => self.zf || self.sf != self.of,
            Cc::G => !self.zf && self.sf == self.of,
            Cc::Ge => self.sf == self.of,
            Cc::B => self.cf,
            Cc::Be => self.cf || self.zf,
            Cc::A => !self.cf && !self.zf,
            Cc::Ae => !self.cf,
            Cc::S => self.sf,
            Cc::Ns => !self.sf,
        }
    }
}

/// Architectural register file plus program counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cpu {
    /// The sixteen general-purpose registers.
    pub regs: [u64; 16],
    /// FLAGS.
    pub flags: Flags,
    /// Program counter.
    pub pc: u64,
}

impl Cpu {
    /// Reads a register.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }
}

/// Result of an ALU operation: value plus flag updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// The 64-bit result.
    pub value: u64,
    /// The FLAGS produced.
    pub flags: Flags,
    /// Whether the operation faulted (division by zero).
    pub div_by_zero: bool,
}

/// Computes `a <op> b` with x86-style flag semantics.
///
/// * `add`/`sub` set all four flags;
/// * logical ops clear `CF`/`OF` and set `ZF`/`SF`;
/// * shifts and `mul` set `ZF`/`SF` and clear `CF`/`OF` (simplified);
/// * `div`/`rem` clear flags and report division by zero.
pub fn alu(op: AluOp, a: u64, b: u64) -> AluResult {
    let mut div_by_zero = false;
    let (value, cf, of) = match op {
        AluOp::Add => {
            let (r, c) = a.overflowing_add(b);
            let o = ((a ^ !b) & (a ^ r)) >> 63 == 1;
            (r, c, o)
        }
        AluOp::Sub => sub_flags(a, b),
        AluOp::And => (a & b, false, false),
        AluOp::Or => (a | b, false, false),
        AluOp::Xor => (a ^ b, false, false),
        AluOp::Shl => (a.wrapping_shl((b & 63) as u32), false, false),
        AluOp::Shr => (a.wrapping_shr((b & 63) as u32), false, false),
        AluOp::Sar => (
            (a as i64).wrapping_shr((b & 63) as u32) as u64,
            false,
            false,
        ),
        AluOp::Mul => (a.wrapping_mul(b), false, false),
        AluOp::Div => {
            if b == 0 {
                div_by_zero = true;
                (0, false, false)
            } else {
                ((a as i64).wrapping_div(b as i64) as u64, false, false)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                div_by_zero = true;
                (0, false, false)
            } else {
                ((a as i64).wrapping_rem(b as i64) as u64, false, false)
            }
        }
    };
    AluResult {
        value,
        flags: Flags {
            zf: value == 0,
            sf: (value as i64) < 0,
            cf,
            of,
        },
        div_by_zero,
    }
}

/// Flags of `a - b` (shared by `sub`, `cmp` and `neg`).
pub fn sub_flags(a: u64, b: u64) -> (u64, bool, bool) {
    let (r, borrow) = a.overflowing_sub(b);
    let o = ((a ^ b) & (a ^ r)) >> 63 == 1;
    (r, borrow, o)
}

/// Flags of a compare `a - b`.
pub fn cmp_flags(a: u64, b: u64) -> Flags {
    let (r, cf, of) = sub_flags(a, b);
    Flags {
        zf: r == 0,
        sf: (r as i64) < 0,
        cf,
        of,
    }
}

/// Flags of a `test` (`a & b`).
pub fn test_flags(a: u64, b: u64) -> Flags {
    let r = a & b;
    Flags {
        zf: r == 0,
        sf: (r as i64) < 0,
        cf: false,
        of: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_comparisons() {
        // -1 < 10 signed, but 2⁶⁴−1 > 10 unsigned.
        let f = cmp_flags(-1i64 as u64, 10);
        assert!(f.eval(Cc::L));
        assert!(f.eval(Cc::A));
        let f = cmp_flags(10, -1i64 as u64);
        assert!(f.eval(Cc::G));
        assert!(f.eval(Cc::B));
    }

    #[test]
    fn unsigned_comparisons() {
        let f = cmp_flags(5, 10);
        assert!(f.eval(Cc::B));
        assert!(f.eval(Cc::L));
        assert!(!f.eval(Cc::E));
        let f = cmp_flags(10, 10);
        assert!(f.eval(Cc::E));
        assert!(f.eval(Cc::Be));
        assert!(f.eval(Cc::Ae));
        assert!(!f.eval(Cc::A));
        // The Appendix A.2 pattern: size_t n = -1 makes every i < n true.
        let f = cmp_flags(1000, u64::MAX);
        assert!(f.eval(Cc::B));
    }

    #[test]
    fn add_overflow_flags() {
        let r = alu(AluOp::Add, u64::MAX, 1);
        assert_eq!(r.value, 0);
        assert!(r.flags.cf);
        assert!(r.flags.zf);
        assert!(!r.flags.of);
        let r = alu(AluOp::Add, i64::MAX as u64, 1);
        assert!(r.flags.of);
        assert!(!r.flags.cf);
        assert!(r.flags.sf);
    }

    #[test]
    fn sub_borrow_flags() {
        let r = alu(AluOp::Sub, 0, 1);
        assert_eq!(r.value, u64::MAX);
        assert!(r.flags.cf);
        assert!(r.flags.sf);
        let r = alu(AluOp::Sub, i64::MIN as u64, 1);
        assert!(r.flags.of);
    }

    #[test]
    fn logic_clears_cf_of() {
        for op in [AluOp::And, AluOp::Or, AluOp::Xor] {
            let r = alu(op, u64::MAX, 0x0f);
            assert!(!r.flags.cf);
            assert!(!r.flags.of);
        }
        let r = alu(AluOp::Xor, 7, 7);
        assert!(r.flags.zf);
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(alu(AluOp::Shl, 1, 64).value, 1); // count masked to 0
        assert_eq!(alu(AluOp::Shl, 1, 3).value, 8);
        assert_eq!(alu(AluOp::Shr, u64::MAX, 63).value, 1);
        assert_eq!(alu(AluOp::Sar, (-8i64) as u64, 2).value, (-2i64) as u64);
    }

    #[test]
    fn division_semantics() {
        assert_eq!(alu(AluOp::Div, 7, 2).value, 3);
        assert_eq!(alu(AluOp::Div, (-7i64) as u64, 2).value, (-3i64) as u64);
        assert_eq!(alu(AluOp::Rem, 7, 2).value, 1);
        assert!(alu(AluOp::Div, 1, 0).div_by_zero);
        assert!(alu(AluOp::Rem, 1, 0).div_by_zero);
        // INT_MIN / -1 wraps instead of trapping (documented choice).
        let r = alu(AluOp::Div, i64::MIN as u64, -1i64 as u64);
        assert!(!r.div_by_zero);
        assert_eq!(r.value, i64::MIN as u64);
    }

    #[test]
    fn cc_eval_covers_all_codes() {
        let eq = cmp_flags(3, 3);
        let lt = cmp_flags(2, 3);
        let gt = cmp_flags(4, 3);
        assert!(eq.eval(Cc::E) && eq.eval(Cc::Le) && eq.eval(Cc::Ge));
        assert!(lt.eval(Cc::L) && lt.eval(Cc::Ne) && lt.eval(Cc::B));
        assert!(gt.eval(Cc::G) && gt.eval(Cc::A) && gt.eval(Cc::Ae));
        assert!(lt.eval(Cc::S));
        assert!(gt.eval(Cc::Ns));
    }

    #[test]
    fn cpu_register_access() {
        let mut cpu = Cpu::default();
        cpu.set(Reg::SP, 0x7ffe_0000);
        assert_eq!(cpu.get(Reg::SP), 0x7ffe_0000);
        assert_eq!(cpu.get(Reg::R0), 0);
    }
}
