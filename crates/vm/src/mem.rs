//! Sparse paged guest memory.
//!
//! The full 64-bit address space is backed lazily by 4 KiB pages, which is
//! what makes the paper's high-half layouts (Tables 1–2) practical:
//! the heap at `0x6000_0000_0000` and the input staging area at
//! `0x7000_0000_0000` cost only the pages actually touched.
//!
//! Access control is page-granular (like a real MMU): loads and stores to
//! unmapped pages fault, and stores to read-only pages fault. Byte-accurate
//! out-of-bounds detection is ASan's job, not the MMU's.

use teapot_rt::FxHashMap;

/// Page size in bytes (must be a power of two).
pub const PAGE_SIZE: u64 = 4096;

/// Memory access fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// Access to an unmapped page.
    Unmapped { addr: u64 },
    /// Write to a read-only page.
    ReadOnly { addr: u64 },
}

#[derive(Clone)]
struct Page {
    bytes: Box<[u8; PAGE_SIZE as usize]>,
    writable: bool,
    /// Written to since the last [`PagedMem::reset_to`] (or creation).
    /// Lets a reusable execution context restore only the pages a run
    /// touched instead of rebuilding the whole image.
    dirty: bool,
}

/// Sparse paged memory with page-granular permissions.
#[derive(Clone, Default)]
pub struct PagedMem {
    pages: FxHashMap<u64, Page>,
}

impl std::fmt::Debug for PagedMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedMem")
            .field("mapped_pages", &self.pages.len())
            .finish()
    }
}

impl PagedMem {
    /// Creates an empty address space.
    pub fn new() -> PagedMem {
        PagedMem::default()
    }

    /// Maps (or re-maps) `[start, start+size)`, zero-filled, with the given
    /// writability. Partial pages at the edges are mapped whole.
    pub fn map_region(&mut self, start: u64, size: u64, writable: bool) {
        if size == 0 {
            return;
        }
        let first = start / PAGE_SIZE;
        let last = (start + size - 1) / PAGE_SIZE;
        for p in first..=last {
            self.pages
                .entry(p)
                .or_insert_with(|| Page {
                    bytes: Box::new([0; PAGE_SIZE as usize]),
                    writable,
                    dirty: true,
                })
                .writable |= writable;
        }
    }

    /// Marks the current contents as the pristine baseline: clears every
    /// dirty flag. Called once after the loader builds the initial image.
    pub fn seal_pristine(&mut self) {
        for p in self.pages.values_mut() {
            p.dirty = false;
        }
    }

    /// Restores this address space to `pristine` in place, reusing page
    /// allocations: pages the last run wrote are byte-copied back from
    /// `pristine`, pages the run created (heap) are dropped, untouched
    /// pages are left alone.
    ///
    /// `self` must have started as a clone of `pristine` (pages are never
    /// unmapped during a run, so `self`'s page set is always a superset).
    pub fn reset_to(&mut self, pristine: &PagedMem) {
        self.pages.retain(|id, page| match pristine.pages.get(id) {
            Some(p) => {
                if page.dirty {
                    page.bytes.copy_from_slice(&p.bytes[..]);
                    page.dirty = false;
                }
                page.writable = p.writable;
                true
            }
            None => false,
        });
    }

    /// Whether every byte of `[addr, addr+len)` is mapped.
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let Some(end) = addr.checked_add(len - 1) else {
            return false;
        };
        let first = addr / PAGE_SIZE;
        let last = end / PAGE_SIZE;
        (first..=last).all(|p| self.pages.contains_key(&p))
    }

    /// Number of mapped pages (for diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Writes bytes without fault checks, mapping pages as needed.
    /// Used by the loader and runtime (not by guest instructions).
    pub fn write_forced(&mut self, addr: u64, data: &[u8]) {
        self.map_region(addr, data.len() as u64, true);
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            let page = self.pages.get_mut(&(a / PAGE_SIZE)).expect("mapped");
            page.bytes[(a % PAGE_SIZE) as usize] = b;
            page.dirty = true;
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        let page = self
            .pages
            .get(&(addr / PAGE_SIZE))
            .ok_or(MemFault::Unmapped { addr })?;
        Ok(page.bytes[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped or read-only.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), MemFault> {
        let page = self
            .pages
            .get_mut(&(addr / PAGE_SIZE))
            .ok_or(MemFault::Unmapped { addr })?;
        if !page.writable {
            return Err(MemFault::ReadOnly { addr });
        }
        page.bytes[(addr % PAGE_SIZE) as usize] = value;
        page.dirty = true;
        Ok(())
    }

    /// Reads `n ≤ 8` bytes little-endian into a `u64`.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn read_uint(&self, addr: u64, n: u64) -> Result<u64, MemFault> {
        debug_assert!(n <= 8);
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr.wrapping_add(i))? as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes the low `n ≤ 8` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped or read-only. Bytes preceding a
    /// faulting byte may already be written (like a real partial store
    /// across a page boundary).
    pub fn write_uint(&mut self, addr: u64, value: u64, n: u64) -> Result<(), MemFault> {
        debug_assert!(n <= 8);
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Reads `len` bytes into a vector.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            out.push(self.read_u8(addr.wrapping_add(i))?);
        }
        Ok(out)
    }

    /// Writes one byte bypassing write permissions. Used by the loader
    /// (read-only section images) and by rollback replay; never by guest
    /// instructions. Creates the page (non-writable) if unmapped.
    pub fn poke(&mut self, addr: u64, value: u8) {
        let page = self.pages.entry(addr / PAGE_SIZE).or_insert_with(|| Page {
            bytes: Box::new([0; PAGE_SIZE as usize]),
            writable: false,
            dirty: true,
        });
        page.bytes[(addr % PAGE_SIZE) as usize] = value;
        page.dirty = true;
    }

    /// Reads up to `max` bytes for instruction decoding, stopping at an
    /// unmapped page (the decoder will report truncation).
    pub fn read_for_decode(&self, addr: u64, max: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(max);
        for i in 0..max as u64 {
            match self.read_u8(addr.wrapping_add(i)) {
                Ok(b) => out.push(b),
                Err(_) => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_faults() {
        let mut m = PagedMem::new();
        assert_eq!(m.read_u8(0x1000), Err(MemFault::Unmapped { addr: 0x1000 }));
        assert_eq!(
            m.write_u8(0x1000, 1),
            Err(MemFault::Unmapped { addr: 0x1000 })
        );
        m.map_region(0x1000, 16, true);
        assert_eq!(m.read_u8(0x1000), Ok(0));
        assert!(m.write_u8(0x1000, 7).is_ok());
        assert_eq!(m.read_u8(0x1000), Ok(7));
    }

    #[test]
    fn read_only_pages_reject_writes() {
        let mut m = PagedMem::new();
        m.map_region(0x2000, 64, false);
        assert_eq!(m.read_u8(0x2000), Ok(0));
        assert_eq!(
            m.write_u8(0x2010, 1),
            Err(MemFault::ReadOnly { addr: 0x2010 })
        );
        // Remapping with write permission upgrades.
        m.map_region(0x2000, 64, true);
        assert!(m.write_u8(0x2010, 1).is_ok());
    }

    #[test]
    fn multibyte_little_endian() {
        let mut m = PagedMem::new();
        m.map_region(0x3000, 32, true);
        m.write_uint(0x3000, 0x1122_3344_5566_7788, 8).unwrap();
        assert_eq!(m.read_uint(0x3000, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read_uint(0x3000, 4).unwrap(), 0x5566_7788);
        assert_eq!(m.read_u8(0x3007).unwrap(), 0x11);
    }

    #[test]
    fn cross_page_access() {
        let mut m = PagedMem::new();
        m.map_region(PAGE_SIZE - 4, 8, true);
        m.write_uint(PAGE_SIZE - 4, u64::MAX, 8).unwrap();
        assert_eq!(m.read_uint(PAGE_SIZE - 4, 8).unwrap(), u64::MAX);
        // Second page unmapped -> partial fault.
        let mut m2 = PagedMem::new();
        m2.map_region(0, PAGE_SIZE, true);
        assert!(m2.write_uint(PAGE_SIZE - 4, 1, 8).is_err());
    }

    #[test]
    fn high_half_addresses_work() {
        let mut m = PagedMem::new();
        let heap = teapot_rt::layout::HEAP_BASE;
        m.map_region(heap, 128, true);
        m.write_uint(heap + 64, 0xdead_beef, 4).unwrap();
        assert_eq!(m.read_uint(heap + 64, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.mapped_pages(), 1);
    }

    #[test]
    fn is_mapped_ranges() {
        let mut m = PagedMem::new();
        m.map_region(0x5000, 0x1000, true);
        assert!(m.is_mapped(0x5000, 0x1000));
        assert!(m.is_mapped(0x5fff, 1));
        assert!(!m.is_mapped(0x5fff, 2));
        assert!(!m.is_mapped(u64::MAX, 2));
        assert!(m.is_mapped(0x1234, 0));
    }

    #[test]
    fn reset_to_restores_the_pristine_image() {
        let mut pristine = PagedMem::new();
        pristine.map_region(0x1000, 64, true);
        pristine.write_forced(0x1000, &[1, 2, 3, 4]);
        pristine.map_region(0x4000, 16, false);
        pristine.poke(0x4000, 0xAA);
        pristine.seal_pristine();

        let mut live = pristine.clone();
        // Dirty an existing page, create a fresh one (heap-like).
        live.write_u8(0x1002, 0xFF).unwrap();
        live.map_region(0x9000, 32, true);
        live.write_u8(0x9000, 0x55).unwrap();
        assert_eq!(live.mapped_pages(), pristine.mapped_pages() + 1);

        live.reset_to(&pristine);
        assert_eq!(live.mapped_pages(), pristine.mapped_pages());
        assert_eq!(live.read_u8(0x1002).unwrap(), 3);
        assert_eq!(live.read_u8(0x4000).unwrap(), 0xAA);
        assert!(!live.is_mapped(0x9000, 1));
        // Read-only permission restored too.
        assert!(live.write_u8(0x4000, 1).is_err());

        // A second run over the reset memory behaves like a first run.
        live.write_u8(0x1002, 0x77).unwrap();
        live.reset_to(&pristine);
        assert_eq!(live.read_u8(0x1002).unwrap(), 3);
    }

    #[test]
    fn read_for_decode_stops_at_hole() {
        let mut m = PagedMem::new();
        m.map_region(0, PAGE_SIZE, true);
        m.write_forced(PAGE_SIZE - 2, &[0xAA, 0xBB]);
        let got = m.read_for_decode(PAGE_SIZE - 2, 12);
        assert_eq!(got, vec![0xAA, 0xBB]);
    }
}
