//! Flat region-backed guest memory.
//!
//! The full 64-bit address space is backed lazily by 4 KiB pages, which is
//! what makes the paper's high-half layouts (Tables 1–2) practical:
//! the heap at `0x6000_0000_0000` and the input staging area at
//! `0x7000_0000_0000` cost only the pages actually touched.
//!
//! Access control is page-granular (like a real MMU): loads and stores to
//! unmapped pages fault, and stores to read-only pages fault. Byte-accurate
//! out-of-bounds detection is ASan's job, not the MMU's.
//!
//! Pages live in a contiguous, address-ordered slab indexed by a small
//! sorted region table with an inline software TLB in front (see
//! [`slab`](crate::slab)); per-page writability and dirtiness are
//! per-region bitsets riding alongside the slots. Multi-byte accesses
//! are **chunked**: they split only at page boundaries and copy page
//! slices, never bytes — replacing the seed's one-hashmap-probe-per-byte
//! hot path while keeping its observable semantics bit-for-bit
//! (fault addresses, partial cross-page stores, dirty-page reset).

use crate::slab::{for_page_chunks, lane_mask, BitVec, PageSlab};

pub use crate::slab::PAGE_SIZE;

/// Memory access fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// Access to an unmapped page.
    Unmapped { addr: u64 },
    /// Write to a read-only page.
    ReadOnly { addr: u64 },
}

/// Region-backed paged memory with page-granular permissions.
#[derive(Clone, Default)]
pub struct PagedMem {
    slab: PageSlab,
    /// Per-slot writability.
    writable: BitVec,
    /// Per-slot dirty bits: written to since the last
    /// [`PagedMem::reset_to`] (or creation). Lets a reusable execution
    /// context restore only the pages a run touched instead of
    /// rebuilding the whole image.
    dirty: BitVec,
}

impl std::fmt::Debug for PagedMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedMem")
            .field("mapped_pages", &self.slab.num_slots())
            .finish()
    }
}

impl PagedMem {
    /// Creates an empty address space.
    pub fn new() -> PagedMem {
        PagedMem::default()
    }

    /// Maps (or re-maps) `[start, start+size)`, zero-filled, with the given
    /// writability. Partial pages at the edges are mapped whole.
    pub fn map_region(&mut self, start: u64, size: u64, writable: bool) {
        if size == 0 {
            return;
        }
        let first = start / PAGE_SIZE;
        let last = (start + size - 1) / PAGE_SIZE;
        for p in first..=last {
            let (slot, created) = self.slab.ensure(p);
            if created {
                self.writable.insert(slot as usize, writable);
                self.dirty.insert(slot as usize, true);
            } else if writable {
                self.writable.set(slot as usize, true);
            }
        }
    }

    /// Marks the current contents as the pristine baseline: clears every
    /// dirty flag. Called once after the loader builds the initial image.
    pub fn seal_pristine(&mut self) {
        self.dirty.zero();
    }

    /// Restores this address space to `pristine` in place, reusing the
    /// slab allocation: pages the last run wrote are byte-copied back
    /// from `pristine`, pages the run created (heap) are dropped,
    /// untouched pages are left alone.
    ///
    /// `self` must have started as a clone of `pristine` (pages are never
    /// unmapped during a run, so `self`'s page set is always a superset).
    pub fn reset_to(&mut self, pristine: &PagedMem) {
        let dirty = std::mem::take(&mut self.dirty);
        let writable = &mut self.writable;
        self.slab.reset_to(
            &pristine.slab,
            |slot| dirty.get(slot as usize),
            |_, new_slot, p_slot| {
                writable.set(new_slot as usize, pristine.writable.get(p_slot as usize));
            },
        );
        let kept = pristine.slab.num_slots();
        self.writable.truncate(kept);
        self.dirty = dirty;
        self.dirty.truncate(kept);
        self.dirty.zero();
    }

    /// Whether every byte of `[addr, addr+len)` is mapped.
    #[inline]
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        if len <= PAGE_SIZE - addr % PAGE_SIZE {
            // Fast path: one page (every ≤8-byte `asan.check`).
            return self.slab.slot_of(addr / PAGE_SIZE).is_some();
        }
        let Some(end) = addr.checked_add(len - 1) else {
            return false;
        };
        let first = addr / PAGE_SIZE;
        let last = end / PAGE_SIZE;
        (first..=last).all(|p| self.slab.slot_of(p).is_some())
    }

    /// Whether every byte of `[addr, addr+len)` is mapped *read-only* —
    /// i.e. immutable for the lifetime of this address space's image
    /// (guest stores fault before touching such pages). Used to decide
    /// which live-decode results stay valid across runs.
    pub fn range_readonly(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let Some(end) = addr.checked_add(len - 1) else {
            return false;
        };
        let first = addr / PAGE_SIZE;
        let last = end / PAGE_SIZE;
        (first..=last).all(|p| {
            self.slab
                .slot_of(p)
                .is_some_and(|s| !self.writable.get(s as usize))
        })
    }

    /// Number of mapped pages (for diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.slab.num_slots()
    }

    /// Telemetry snapshot of the backing slab:
    /// `(tlb_hits, tlb_misses, pages_allocated)`.
    pub(crate) fn telemetry_counts(&self) -> (u64, u64, u64) {
        self.slab.telemetry_counts()
    }

    /// Writes bytes without fault checks, mapping pages as needed.
    /// Used by the loader and runtime (not by guest instructions).
    pub fn write_forced(&mut self, addr: u64, data: &[u8]) {
        self.map_region(addr, data.len() as u64, true);
        let mut done = 0usize;
        for_page_chunks(addr, data.len() as u64, |a, chunk| {
            let slot = self.slab.slot_of(a / PAGE_SIZE).expect("mapped");
            let off = (a % PAGE_SIZE) as usize;
            self.slab.page_mut(slot)[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            self.dirty.set(slot as usize, true);
            done += chunk;
            true
        });
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        let slot = self
            .slab
            .slot_of(addr / PAGE_SIZE)
            .ok_or(MemFault::Unmapped { addr })?;
        Ok(self.slab.page(slot)[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped or read-only.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), MemFault> {
        let slot = self
            .slab
            .slot_of(addr / PAGE_SIZE)
            .ok_or(MemFault::Unmapped { addr })?;
        if !self.writable.get(slot as usize) {
            return Err(MemFault::ReadOnly { addr });
        }
        self.slab.page_mut(slot)[(addr % PAGE_SIZE) as usize] = value;
        self.dirty.set(slot as usize, true);
        Ok(())
    }

    /// Reads `n ≤ 8` bytes little-endian into a `u64`.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    #[inline(always)]
    pub fn read_uint(&self, addr: u64, n: u64) -> Result<u64, MemFault> {
        debug_assert!((1..=8).contains(&n));
        let off = (addr % PAGE_SIZE) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            // Fast path: a full 8-byte window fits on the page, so the
            // value is one fixed-width load masked down to `n` bytes —
            // no length-dependent copy (which compiles to a `memcpy`
            // call for runtime lengths). Kept small and `inline(always)`
            // so the load folds into the interpreter loops; the edge
            // cases live out of line.
            let slot = self
                .slab
                .slot_of(addr / PAGE_SIZE)
                .ok_or(MemFault::Unmapped { addr })?;
            let w: [u8; 8] = self.slab.page(slot)[off..off + 8]
                .try_into()
                .expect("8-byte window");
            return Ok(u64::from_le_bytes(w) & lane_mask(n));
        }
        self.read_uint_edge(addr, n)
    }

    /// Page-edge tail of [`PagedMem::read_uint`] (the last 7 bytes of a
    /// page, or a page-crossing access).
    #[cold]
    #[inline(never)]
    fn read_uint_edge(&self, addr: u64, n: u64) -> Result<u64, MemFault> {
        let off = (addr % PAGE_SIZE) as usize;
        let mut buf = [0u8; 8];
        if off + n as usize <= PAGE_SIZE as usize {
            // Near the page edge but still on one page.
            let slot = self
                .slab
                .slot_of(addr / PAGE_SIZE)
                .ok_or(MemFault::Unmapped { addr })?;
            buf[..n as usize].copy_from_slice(&self.slab.page(slot)[off..off + n as usize]);
        } else {
            self.read_n(addr, &mut buf[..n as usize])?;
        }
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `n ≤ 8` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped or read-only. Bytes preceding a
    /// faulting byte may already be written (like a real partial store
    /// across a page boundary).
    #[inline(always)]
    pub fn write_uint(&mut self, addr: u64, value: u64, n: u64) -> Result<(), MemFault> {
        debug_assert!((1..=8).contains(&n));
        let off = (addr % PAGE_SIZE) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            // Fast path: splice the low `n` bytes into a full 8-byte
            // window with one fixed-width read-modify-write. The bytes
            // above `n` are written back unchanged, which is invisible
            // (single-threaded machine, same page, same dirty bit) and
            // avoids a length-dependent copy. Kept small and
            // `inline(always)`; the edge cases live out of line.
            let slot = self
                .slab
                .slot_of(addr / PAGE_SIZE)
                .ok_or(MemFault::Unmapped { addr })?;
            if !self.writable.get(slot as usize) {
                return Err(MemFault::ReadOnly { addr });
            }
            let win = &mut self.slab.page_mut(slot)[off..off + 8];
            let old = u64::from_le_bytes(win.try_into().expect("8-byte window"));
            let mask = lane_mask(n);
            let merged = (old & !mask) | (value & mask);
            win.copy_from_slice(&merged.to_le_bytes());
            self.dirty.set(slot as usize, true);
            return Ok(());
        }
        self.write_uint_edge(addr, value, n)
    }

    /// Page-edge tail of [`PagedMem::write_uint`].
    #[cold]
    #[inline(never)]
    fn write_uint_edge(&mut self, addr: u64, value: u64, n: u64) -> Result<(), MemFault> {
        let bytes = value.to_le_bytes();
        let off = (addr % PAGE_SIZE) as usize;
        if off + n as usize <= PAGE_SIZE as usize {
            // Near the page edge but still on one page.
            let slot = self
                .slab
                .slot_of(addr / PAGE_SIZE)
                .ok_or(MemFault::Unmapped { addr })?;
            if !self.writable.get(slot as usize) {
                return Err(MemFault::ReadOnly { addr });
            }
            self.slab.page_mut(slot)[off..off + n as usize].copy_from_slice(&bytes[..n as usize]);
            self.dirty.set(slot as usize, true);
            return Ok(());
        }
        self.write_n(addr, &bytes[..n as usize])
    }

    /// Reads `[addr, addr+out.len())` into `out`, splitting only at page
    /// boundaries.
    ///
    /// # Errors
    ///
    /// Faults at the first unmapped byte (earlier chunks are already
    /// copied, exactly like the per-byte loop it replaces).
    pub fn read_n(&self, addr: u64, out: &mut [u8]) -> Result<(), MemFault> {
        if out.is_empty() {
            return Ok(());
        }
        let off = (addr % PAGE_SIZE) as usize;
        if out.len() <= PAGE_SIZE as usize - off {
            // Fast path: one page (memory-log capture, ≤8-byte loads).
            let slot = self
                .slab
                .slot_of(addr / PAGE_SIZE)
                .ok_or(MemFault::Unmapped { addr })?;
            out.copy_from_slice(&self.slab.page(slot)[off..off + out.len()]);
            return Ok(());
        }
        let mut done = 0usize;
        let mut fault = None;
        for_page_chunks(addr, out.len() as u64, |a, chunk| {
            let Some(slot) = self.slab.slot_of(a / PAGE_SIZE) else {
                fault = Some(MemFault::Unmapped { addr: a });
                return false;
            };
            let off = (a % PAGE_SIZE) as usize;
            out[done..done + chunk].copy_from_slice(&self.slab.page(slot)[off..off + chunk]);
            done += chunk;
            true
        });
        match fault {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// Writes `data` at `addr`, splitting only at page boundaries.
    ///
    /// # Errors
    ///
    /// Faults at the first unmapped or read-only byte; preceding chunks
    /// are already written (real partial-store semantics, identical to
    /// the per-byte loop it replaces).
    pub fn write_n(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        if data.is_empty() {
            return Ok(());
        }
        let off = (addr % PAGE_SIZE) as usize;
        if data.len() <= PAGE_SIZE as usize - off {
            // Fast path: one page (≤8-byte stores).
            let slot = self
                .slab
                .slot_of(addr / PAGE_SIZE)
                .ok_or(MemFault::Unmapped { addr })?;
            if !self.writable.get(slot as usize) {
                return Err(MemFault::ReadOnly { addr });
            }
            self.slab.page_mut(slot)[off..off + data.len()].copy_from_slice(data);
            self.dirty.set(slot as usize, true);
            return Ok(());
        }
        let mut done = 0usize;
        let mut fault = None;
        for_page_chunks(addr, data.len() as u64, |a, chunk| {
            let Some(slot) = self.slab.slot_of(a / PAGE_SIZE) else {
                fault = Some(MemFault::Unmapped { addr: a });
                return false;
            };
            if !self.writable.get(slot as usize) {
                fault = Some(MemFault::ReadOnly { addr: a });
                return false;
            }
            let off = (a % PAGE_SIZE) as usize;
            self.slab.page_mut(slot)[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            self.dirty.set(slot as usize, true);
            done += chunk;
            true
        });
        match fault {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// Reads `len` bytes into a vector.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        let mut out = vec![0u8; len as usize];
        self.read_n(addr, &mut out)?;
        Ok(out)
    }

    /// Appends `len` bytes at `addr` to `out` (no intermediate buffer).
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped; `out` is unchanged on fault.
    pub fn read_append(&self, addr: u64, len: u64, out: &mut Vec<u8>) -> Result<(), MemFault> {
        let start = out.len();
        out.resize(start + len as usize, 0);
        match self.read_n(addr, &mut out[start..]) {
            Ok(()) => Ok(()),
            Err(f) => {
                out.truncate(start);
                Err(f)
            }
        }
    }

    /// Writes one byte bypassing write permissions. Used by the loader
    /// (read-only section images) and by rollback replay; never by guest
    /// instructions. Creates the page (non-writable) if unmapped.
    pub fn poke(&mut self, addr: u64, value: u8) {
        let (slot, created) = self.slab.ensure(addr / PAGE_SIZE);
        if created {
            self.writable.insert(slot as usize, false);
            self.dirty.insert(slot as usize, true);
        } else {
            self.dirty.set(slot as usize, true);
        }
        self.slab.page_mut(slot)[(addr % PAGE_SIZE) as usize] = value;
    }

    /// Bulk [`PagedMem::poke`]: writes `data` at `addr` bypassing write
    /// permissions, creating pages (non-writable) as needed.
    pub fn poke_n(&mut self, addr: u64, data: &[u8]) {
        let off = (addr % PAGE_SIZE) as usize;
        if data.len() <= PAGE_SIZE as usize - off {
            // Fast path: one page, already mapped (rollback replay).
            if let Some(slot) = self.slab.slot_of(addr / PAGE_SIZE) {
                self.slab.page_mut(slot)[off..off + data.len()].copy_from_slice(data);
                self.dirty.set(slot as usize, true);
                return;
            }
        }
        let mut done = 0usize;
        for_page_chunks(addr, data.len() as u64, |a, chunk| {
            let (slot, created) = self.slab.ensure(a / PAGE_SIZE);
            if created {
                self.writable.insert(slot as usize, false);
                self.dirty.insert(slot as usize, true);
            } else {
                self.dirty.set(slot as usize, true);
            }
            let off = (a % PAGE_SIZE) as usize;
            self.slab.page_mut(slot)[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
            true
        });
    }

    /// Fills `[addr, addr+len)` with `value`, bypassing write
    /// permissions and creating pages (non-writable) as needed — the
    /// bulk twin of [`PagedMem::poke`] for runtime pattern fills.
    pub fn poke_fill(&mut self, addr: u64, len: u64, value: u8) {
        for_page_chunks(addr, len, |a, chunk| {
            let (slot, created) = self.slab.ensure(a / PAGE_SIZE);
            if created {
                self.writable.insert(slot as usize, false);
                self.dirty.insert(slot as usize, true);
            } else {
                self.dirty.set(slot as usize, true);
            }
            let off = (a % PAGE_SIZE) as usize;
            self.slab.page_mut(slot)[off..off + chunk].fill(value);
            true
        });
    }

    /// Reads up to `max` bytes for instruction decoding, stopping at an
    /// unmapped page (the decoder will report truncation).
    pub fn read_for_decode(&self, addr: u64, max: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(max);
        self.read_for_decode_into(addr, max, &mut out);
        out
    }

    /// [`PagedMem::read_for_decode`] into a reusable buffer (cleared
    /// first), so hot live-decode paths stop allocating per fetch.
    pub fn read_for_decode_into(&self, addr: u64, max: usize, out: &mut Vec<u8>) {
        out.clear();
        for_page_chunks(addr, max as u64, |a, chunk| {
            let Some(slot) = self.slab.slot_of(a / PAGE_SIZE) else {
                return false;
            };
            let off = (a % PAGE_SIZE) as usize;
            out.extend_from_slice(&self.slab.page(slot)[off..off + chunk]);
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_faults() {
        let mut m = PagedMem::new();
        assert_eq!(m.read_u8(0x1000), Err(MemFault::Unmapped { addr: 0x1000 }));
        assert_eq!(
            m.write_u8(0x1000, 1),
            Err(MemFault::Unmapped { addr: 0x1000 })
        );
        m.map_region(0x1000, 16, true);
        assert_eq!(m.read_u8(0x1000), Ok(0));
        assert!(m.write_u8(0x1000, 7).is_ok());
        assert_eq!(m.read_u8(0x1000), Ok(7));
    }

    #[test]
    fn read_only_pages_reject_writes() {
        let mut m = PagedMem::new();
        m.map_region(0x2000, 64, false);
        assert_eq!(m.read_u8(0x2000), Ok(0));
        assert_eq!(
            m.write_u8(0x2010, 1),
            Err(MemFault::ReadOnly { addr: 0x2010 })
        );
        // Remapping with write permission upgrades.
        m.map_region(0x2000, 64, true);
        assert!(m.write_u8(0x2010, 1).is_ok());
    }

    #[test]
    fn multibyte_little_endian() {
        let mut m = PagedMem::new();
        m.map_region(0x3000, 32, true);
        m.write_uint(0x3000, 0x1122_3344_5566_7788, 8).unwrap();
        assert_eq!(m.read_uint(0x3000, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read_uint(0x3000, 4).unwrap(), 0x5566_7788);
        assert_eq!(m.read_u8(0x3007).unwrap(), 0x11);
    }

    #[test]
    fn cross_page_access() {
        let mut m = PagedMem::new();
        m.map_region(PAGE_SIZE - 4, 8, true);
        m.write_uint(PAGE_SIZE - 4, u64::MAX, 8).unwrap();
        assert_eq!(m.read_uint(PAGE_SIZE - 4, 8).unwrap(), u64::MAX);
        // Second page unmapped -> partial fault.
        let mut m2 = PagedMem::new();
        m2.map_region(0, PAGE_SIZE, true);
        assert!(m2.write_uint(PAGE_SIZE - 4, 1, 8).is_err());
    }

    #[test]
    fn partial_cross_page_write_faults_at_boundary() {
        // The chunked path must keep the seed's per-byte semantics: the
        // first page's bytes land, the fault names the first bad byte.
        let mut m = PagedMem::new();
        m.map_region(0, PAGE_SIZE, true);
        let err = m.write_n(PAGE_SIZE - 2, &[1, 2, 3, 4]).unwrap_err();
        assert_eq!(err, MemFault::Unmapped { addr: PAGE_SIZE });
        assert_eq!(m.read_u8(PAGE_SIZE - 2).unwrap(), 1);
        assert_eq!(m.read_u8(PAGE_SIZE - 1).unwrap(), 2);

        let mut m2 = PagedMem::new();
        m2.map_region(0, PAGE_SIZE, true);
        m2.map_region(PAGE_SIZE, PAGE_SIZE, false);
        let err = m2.write_n(PAGE_SIZE - 2, &[1, 2, 3, 4]).unwrap_err();
        assert_eq!(err, MemFault::ReadOnly { addr: PAGE_SIZE });
        assert_eq!(m2.read_u8(PAGE_SIZE - 1).unwrap(), 2);
        assert_eq!(m2.read_u8(PAGE_SIZE).unwrap(), 0);
    }

    #[test]
    fn high_half_addresses_work() {
        let mut m = PagedMem::new();
        let heap = teapot_rt::layout::HEAP_BASE;
        m.map_region(heap, 128, true);
        m.write_uint(heap + 64, 0xdead_beef, 4).unwrap();
        assert_eq!(m.read_uint(heap + 64, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.mapped_pages(), 1);
    }

    #[test]
    fn is_mapped_ranges() {
        let mut m = PagedMem::new();
        m.map_region(0x5000, 0x1000, true);
        assert!(m.is_mapped(0x5000, 0x1000));
        assert!(m.is_mapped(0x5fff, 1));
        assert!(!m.is_mapped(0x5fff, 2));
        assert!(!m.is_mapped(u64::MAX, 2));
        assert!(m.is_mapped(0x1234, 0));
    }

    #[test]
    fn range_readonly_tracks_permissions() {
        let mut m = PagedMem::new();
        m.map_region(0x5000, 0x1000, false);
        m.map_region(0x6000, 0x1000, true);
        assert!(m.range_readonly(0x5000, 0x1000));
        assert!(!m.range_readonly(0x5800, 0x1000)); // crosses into RW
        assert!(!m.range_readonly(0x7000, 1)); // unmapped
        m.map_region(0x5000, 0x1000, true); // upgrade
        assert!(!m.range_readonly(0x5000, 1));
    }

    #[test]
    fn reset_to_restores_the_pristine_image() {
        let mut pristine = PagedMem::new();
        pristine.map_region(0x1000, 64, true);
        pristine.write_forced(0x1000, &[1, 2, 3, 4]);
        pristine.map_region(0x4000, 16, false);
        pristine.poke(0x4000, 0xAA);
        pristine.seal_pristine();

        let mut live = pristine.clone();
        // Dirty an existing page, create a fresh one (heap-like).
        live.write_u8(0x1002, 0xFF).unwrap();
        live.map_region(0x9000, 32, true);
        live.write_u8(0x9000, 0x55).unwrap();
        assert_eq!(live.mapped_pages(), pristine.mapped_pages() + 1);

        live.reset_to(&pristine);
        assert_eq!(live.mapped_pages(), pristine.mapped_pages());
        assert_eq!(live.read_u8(0x1002).unwrap(), 3);
        assert_eq!(live.read_u8(0x4000).unwrap(), 0xAA);
        assert!(!live.is_mapped(0x9000, 1));
        // Read-only permission restored too.
        assert!(live.write_u8(0x4000, 1).is_err());

        // A second run over the reset memory behaves like a first run.
        live.write_u8(0x1002, 0x77).unwrap();
        live.reset_to(&pristine);
        assert_eq!(live.read_u8(0x1002).unwrap(), 3);
    }

    #[test]
    fn reset_to_drops_interleaved_run_created_pages() {
        // A run-created page *between* pristine pages (not just past
        // them) must also be dropped, with pristine data intact.
        let mut pristine = PagedMem::new();
        pristine.map_region(0x1000, 8, true);
        pristine.write_forced(0x1000, &[9]);
        pristine.map_region(0x8000, 8, false);
        pristine.poke(0x8000, 0xBB);
        pristine.seal_pristine();

        let mut live = pristine.clone();
        live.map_region(0x4000, 8, true); // interleaved
        live.write_u8(0x4000, 1).unwrap();
        live.write_u8(0x1000, 0xFF).unwrap();
        live.reset_to(&pristine);
        assert!(!live.is_mapped(0x4000, 1));
        assert_eq!(live.read_u8(0x1000).unwrap(), 9);
        assert_eq!(live.read_u8(0x8000).unwrap(), 0xBB);
        assert_eq!(live.mapped_pages(), pristine.mapped_pages());
    }

    #[test]
    fn read_for_decode_stops_at_hole() {
        let mut m = PagedMem::new();
        m.map_region(0, PAGE_SIZE, true);
        m.write_forced(PAGE_SIZE - 2, &[0xAA, 0xBB]);
        let got = m.read_for_decode(PAGE_SIZE - 2, 12);
        assert_eq!(got, vec![0xAA, 0xBB]);
    }

    #[test]
    fn bulk_round_trip_across_pages() {
        let mut m = PagedMem::new();
        m.map_region(0, 3 * PAGE_SIZE, true);
        let data: Vec<u8> = (0..600).map(|i| (i * 7) as u8).collect();
        m.write_n(PAGE_SIZE - 300, &data).unwrap();
        let mut back = vec![0u8; 600];
        m.read_n(PAGE_SIZE - 300, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(m.read_bytes(PAGE_SIZE - 300, 600).unwrap(), data);
        let mut appended = vec![0xEE];
        m.read_append(PAGE_SIZE - 300, 600, &mut appended).unwrap();
        assert_eq!(&appended[1..], &data[..]);
        assert!(m.read_append(4 * PAGE_SIZE, 8, &mut appended).is_err());
        assert_eq!(appended.len(), 601); // unchanged on fault
    }
}
