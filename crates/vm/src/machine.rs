//! The TEA-64 virtual machine: interpreter, speculation-simulation
//! runtime (checkpoint / memory log / rollback), detection policies, and
//! deterministic cost accounting.
//!
//! One [`Machine`] executes one program run. Fetch + decode dispatches
//! over a binary-wide predecoded [`Program`] (built once per binary and
//! shareable across threads via `Arc`), and the heavy per-run resources
//! — the paged address space, checkpoint stack, memory log, coverage
//! maps — live in a reusable [`ExecContext`] that a fuzzing loop resets
//! between iterations instead of reallocating:
//!
//! ```text
//! Binary ──decode once──► Program (Arc, immutable)
//!                            │
//!            ┌───────────────┴─────────────┐
//!            ▼                             ▼
//!      ExecContext (pooled)   ...one per shard/worker...
//!            │ reset per run
//!            ▼
//!        Machine (per-run guest state) ──► RunOutcome / RunStats
//! ```
//!
//! The one-shot [`Machine::new`] + [`Machine::run`] path builds a
//! private program and context per call (the seed crate's API); hot
//! loops use [`Program::shared`] + [`Machine::with_context`].

use crate::asan::AsanEngine;
use crate::cpu::{alu, cmp_flags, test_flags, Cpu, Flags};
use crate::heuristics::SpecHeuristics;
use crate::mem::{MemFault, PagedMem};
use crate::program::{
    OpKind, Program, Region, F_ALWAYS_CHARGE, F_INSTR, F_IN_REAL, F_LIVE, F_NOP, NO_SITE,
    STL_NO_CONT,
};
use crate::taint::{OriginEngine, TaintEngine};
use std::sync::Arc;
use teapot_isa::{
    decode_at, sys, AccessSize, AluOp, IndKind, Inst, MemRef, Operand, Reg, INST_MAX_LEN,
};
use teapot_obj::Binary;
use teapot_rt::layout::STACK_TOP;
use teapot_rt::{
    cost, Channel, Controllability, CovMap, DetectorConfig, FxHashSet, GadgetKey, GadgetReport,
    OriginSpan, SpecModel, SpecModelSet, Tag, TraceEvent, MAX_TRACE_EVENTS,
};
use teapot_specmodel::{RSB_DEPTH, STL_WINDOW};
use teapot_telemetry::{BlockProfile, VmCounters};

/// Execution style of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmuStyle {
    /// Run the binary natively: speculation simulation is driven by the
    /// instrumentation the rewriter inserted (Teapot, SpecFuzz-style).
    #[default]
    Native,
    /// SpecTaint-style full-system emulation of an *uninstrumented*
    /// binary: the emulator itself forces a misprediction at every
    /// conditional branch (DFS, five entries per branch), tracks taint,
    /// and pays [`cost::EMU_PER_INST`] per guest instruction.
    SpecTaint,
}

/// Execution tier of the dispatch loop. All three tiers share the
/// single-source exec helpers and are observably identical — the
/// differential suite runs every workload through each of them. The
/// default is the fastest tier; `TEAPOT_DISPATCH_TIER`
/// (`compiled` / `slice` / `step`) forces one process-wide (the CI
/// dispatch-matrix job), [`Machine::set_dispatch_tier`] per machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchTier {
    /// Template-compiled records with pre-resolved operands, streamed
    /// per precomputed fall-through window (the fastest tier).
    #[default]
    Compiled,
    /// Block-slice superinstruction dispatch over the decoded
    /// instruction table (hoisted checks, per-instruction decode).
    Slice,
    /// Per-instruction dispatch with full per-step checks.
    Step,
}

/// Process-wide dispatch-tier override from `TEAPOT_DISPATCH_TIER`,
/// read once (machines are assembled per run; the environment cannot
/// change meaningfully mid-process).
fn forced_tier() -> Option<DispatchTier> {
    static TIER: std::sync::OnceLock<Option<DispatchTier>> = std::sync::OnceLock::new();
    *TIER.get_or_init(
        || match std::env::var("TEAPOT_DISPATCH_TIER").ok().as_deref() {
            Some("compiled") => Some(DispatchTier::Compiled),
            Some("slice") => Some(DispatchTier::Slice),
            Some("step") => Some(DispatchTier::Step),
            _ => None,
        },
    )
}

/// How a load's STL-bypass prerequisites reach [`Machine::try_stl_bypass`]:
/// resolved at runtime (interpreter tiers) or pre-resolved at compile
/// time into the load's [`CompiledOp`] record (compiled tier). Both
/// carry the same information, so the bypass body stays single-source.
///
/// [`CompiledOp`]: crate::program::CompiledOp
#[derive(Debug, Clone, Copy)]
enum StlPre {
    /// Compute the Shadow-Copy continuation and dense site id now.
    Runtime,
    /// Use the values baked at compile time ([`STL_NO_CONT`] /
    /// [`NO_SITE`] when absent). Valid only when `cpu.pc` sits exactly
    /// past the load — which compiled dispatch guarantees.
    Baked { cont: u64, sid: u32 },
}

/// Machine faults (exceptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Memory access fault.
    Mem(MemFault),
    /// Integer division by zero.
    DivByZero { pc: u64 },
    /// Undecodable instruction.
    BadInst { pc: u64 },
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// `exit(code)` syscall.
    Exit(i64),
    /// `halt` instruction.
    Halt,
    /// `abort()` syscall.
    Abort,
    /// Unhandled fault in normal execution (a crash; faults during
    /// speculation simulation roll back instead, paper §6.1).
    Fault(Fault),
    /// The cost budget (fuel) was exhausted.
    OutOfFuel,
}

impl ExitStatus {
    /// Whether the program terminated normally.
    pub fn is_clean(&self) -> bool {
        matches!(self, ExitStatus::Exit(0) | ExitStatus::Halt)
    }
}

/// Options for one run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Fuzz input served by `read_input`.
    pub input: Vec<u8>,
    /// Cost budget; the run stops with [`ExitStatus::OutOfFuel`] beyond it.
    pub fuel: u64,
    /// Detector configuration.
    pub config: DetectorConfig,
    /// Execution style.
    pub emu: EmuStyle,
    /// Active speculation models. The default ([`SpecModelSet::PHT_ONLY`])
    /// reproduces the pre-specmodel pipeline exactly: conditional-branch
    /// misprediction only, no shadow return stack, no store buffer.
    pub models: SpecModelSet,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            input: Vec::new(),
            fuel: 200_000_000,
            config: DetectorConfig::default(),
            emu: EmuStyle::Native,
            models: SpecModelSet::PHT_ONLY,
        }
    }
}

/// Everything a run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Termination status.
    pub status: ExitStatus,
    /// Accumulated host-cost units (the "run time" of Figures 1 and 7).
    pub cost: u64,
    /// Executed instruction count (architectural + instrumentation).
    pub insts: u64,
    /// Deduplicated gadget reports.
    pub gadgets: Vec<GadgetReport>,
    /// Normal-execution coverage (paper §6.3).
    pub cov_normal: CovMap,
    /// Speculation-simulation coverage (paper §6.3).
    pub cov_spec: CovMap,
    /// Bytes written by the program.
    pub output: Vec<u8>,
    /// Number of speculation-simulation entries.
    pub sim_entries: u64,
    /// Number of rollbacks (= simulations that ended).
    pub rollbacks: u64,
    /// Control-flow escapes caught by the safety net (should stay 0 for
    /// correctly rewritten binaries).
    pub escapes: u64,
}

/// The per-run counters of a pooled run (see [`Machine::run_stats`]).
/// Coverage, gadget reports and program output stay in the
/// [`ExecContext`], where the caller reads or drains them without the
/// per-run allocations a [`RunOutcome`] would cost.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Termination status.
    pub status: ExitStatus,
    /// Accumulated host-cost units.
    pub cost: u64,
    /// Executed instruction count.
    pub insts: u64,
    /// Number of speculation-simulation entries.
    pub sim_entries: u64,
    /// Number of rollbacks.
    pub rollbacks: u64,
    /// Control-flow escapes caught by the safety net.
    pub escapes: u64,
}

/// A snapshot taken by `sim.start` (paper §6.1 "Checkpoint") or by an
/// RSB / STL model misprediction.
#[derive(Debug, Clone)]
struct Checkpoint {
    regs: [u64; 16],
    flags: Flags,
    resume_pc: u64,
    reg_tags: [Tag; 16],
    flags_tag: Tag,
    /// Register/FLAGS origin folds at entry (all [`OriginSpan::NONE`]
    /// unless the origin shadow is on): squashed like register tags.
    reg_origins: [OriginSpan; 16],
    flags_origin: OriginSpan,
    memlog_mark: usize,
    covnote_mark: usize,
    /// Start of the shared speculation window (the reorder buffer is one
    /// resource: nested levels inherit the outermost window's start, so
    /// the total in-flight budget stays at `rob_budget` — hardware-like).
    insts_at_entry: u64,
    /// Program-instruction counter at this level's entry, for the
    /// squashed-path refund on rollback.
    prog_snapshot: u64,
    branch_pc_orig: u64,
    /// SpecTaint emulation: the resume PC is the branch itself and must
    /// not re-enter simulation on resumption.
    resume_is_branch: bool,
    /// Which misprediction source opened this level.
    model: SpecModel,
    /// Shadow return stack at entry (`rsb_len` live entries; all zero
    /// unless the RSB model is active): wrong-path calls and returns
    /// mutate the RSB, and the squash must restore it like any other
    /// predictor-visible state. A fixed array keeps checkpoint pushes
    /// allocation-free on the fuzzing hot path.
    rsb_snapshot: [u64; RSB_DEPTH],
    rsb_len: u8,
    /// Store-buffer sequence watermark at entry (STL model): wrong-path
    /// stores never architecturally retire, so the squash drops every
    /// entry recorded after this mark — a squashed store must not later
    /// serve as a "youngest overlapping store" to bypass.
    store_seq_mark: u64,
    /// ASan verdict pending at entry. Only an STL checkpoint resumes
    /// *at* the guarded access itself (whose `asan.check` does not
    /// re-execute), so only it restores the verdict; every other
    /// checkpoint clears it on rollback, as before.
    resume_pending_oob: Option<PendingOob>,
}

/// One memory-log entry: previous bytes and tags of a store target.
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    addr: u64,
    len: u8,
    old_bytes: [u8; 8],
    old_tags: [u8; 8],
}

/// One provenance-log entry: the previous origin bytes of a store
/// target. Pushed 1:1 with [`LogEntry`] on provenance replays, so the
/// checkpoints' `memlog_mark` indexes both logs and rollback replays
/// them in lockstep. Empty whenever the origin shadow is off.
#[derive(Debug, Clone, Copy)]
struct OriginLogEntry {
    old_lo: [u8; 8],
    old_hi: [u8; 8],
}

/// One simulated store-buffer entry (STL model): the memory contents a
/// store *replaced*, which a younger load may speculatively forward
/// instead of the stored value (Spectre-V4).
#[derive(Debug, Clone, Copy)]
struct StlStore {
    addr: u64,
    len: u8,
    old_bytes: [u8; 8],
    old_tags: [u8; 8],
    /// Replaced origin bytes (all zero unless the origin shadow is on):
    /// a bypass forwards stale provenance with the stale taint.
    old_lo: [u8; 8],
    old_hi: [u8; 8],
    /// Monotonic store sequence number; the bypass picks the *youngest*
    /// overlapping entry.
    seq: u64,
}

/// Detection policy, derived from binary flags and emulation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// No detection (uninstrumented binary run natively).
    None,
    /// Teapot with the Kasper policy (paper §6.2, Fig. 6).
    Kasper,
    /// SpecFuzz: every speculative ASan violation is a gadget.
    SpecFuzz,
    /// SpecTaint: no program-level info — every user-controlled load
    /// yields a "secret"; transmission through a dereference is a gadget.
    SpecTaint,
}

/// An ASan verdict pending consumption by the access it guards.
#[derive(Debug, Clone, Copy)]
struct PendingOob {
    oob: bool,
}

/// The reusable per-run resources of the execution pipeline: the guest
/// address space, the sanitizer and taint shadows, the speculation
/// runtime buffers (checkpoint stack, memory log, lazy coverage notes)
/// and the per-run result accumulators (coverage maps, gadget reports,
/// program output).
///
/// Create one per worker with [`ExecContext::new`] and drive any number
/// of runs through it via [`Machine::with_context`]; each run resets the
/// context in place (dirty-page memory restore, shadow zeroing, buffer
/// clears) instead of reallocating everything, which is where the bulk
/// of the per-iteration fuzzing cost went in the seed implementation.
#[derive(Debug)]
pub struct ExecContext {
    mem: PagedMem,
    asan: AsanEngine,
    taint: TaintEngine,
    /// Input-byte origin shadow (taint provenance). Populated only
    /// while [`ExecContext::set_provenance`] is on — the campaign hot
    /// path never touches it.
    origin: OriginEngine,
    checkpoints: Vec<Checkpoint>,
    memlog: Vec<LogEntry>,
    /// Provenance twin of `memlog` (1:1 entries while the origin
    /// shadow is on; empty otherwise).
    provlog: Vec<OriginLogEntry>,
    covnotes: Vec<u32>,
    cov_normal: CovMap,
    cov_spec: CovMap,
    gadget_keys: FxHashSet<GadgetKey>,
    gadgets: Vec<GadgetReport>,
    output: Vec<u8>,
    /// Bounded per-run speculative trace (the witness recorder): filled
    /// only while [`ExecContext::set_witness_recording`] is on.
    trace: Vec<TraceEvent>,
    /// Whether the witness recorder is enabled. Configuration, not run
    /// state: it survives [`ExecContext::reset`] (recording never
    /// changes an execution's observable outcome — no cost is charged
    /// and nothing is read back during the run).
    record_witness: bool,
    /// Whether the origin (provenance) shadow is enabled. Configuration
    /// like `record_witness`: survives [`ExecContext::reset`], is
    /// consulted once per run at machine assembly, and never changes an
    /// execution's architectural outcome — origins are observation-only
    /// metadata carried beside the tags.
    record_provenance: bool,
    /// Identity of the [`Program`] whose pristine image this context's
    /// memory derives from. A dirty-page reset is only valid against
    /// that image; `reset` rebuilds from scratch on a mismatch.
    for_program: u64,
    /// Live-decode cache retained **across runs** (keyed by program
    /// identity: cleared when the context is rebound to a different
    /// program). Only decodes whose whole fetch window lies in
    /// read-only pages land here — those bytes are immutable between
    /// resets (guest stores fault first), so the cached instruction is
    /// exactly what a fresh context would decode.
    icache_ro: teapot_rt::FxHashMap<u64, (Inst<u64>, u8)>,
    /// Live-decode cache for addresses whose bytes are mutable (or
    /// whose fetch window could gain pages mid-run): valid for one run
    /// only, cleared on every reset — the seed's per-run icache.
    icache_run: teapot_rt::FxHashMap<u64, (Inst<u64>, u8)>,
    /// Scratch buffer for live-decode fetches, so `read_for_decode`
    /// stops allocating a fresh `Vec` per fetch.
    decode_scratch: Vec<u8>,
    /// Telemetry accumulator: per-run machine counters are folded in at
    /// the end of every [`Machine::run_stats`]. Like `record_witness`
    /// it is configuration/diagnostic state, survives
    /// [`ExecContext::reset`], and is never read back during a run.
    telemetry: VmCounters,
    /// Hot-site profiler (attributes executed cost to basic blocks of
    /// the bound program). `None` unless enabled; like the witness
    /// recorder, profiling never changes an execution's observable
    /// outcome.
    profile: Option<Box<BlockProfile>>,
}

impl ExecContext {
    /// Creates a context for `prog`: clones the pristine memory image
    /// once and allocates the run buffers.
    pub fn new(prog: &Program) -> ExecContext {
        ExecContext {
            mem: prog.pristine().clone(),
            asan: AsanEngine::new(),
            taint: TaintEngine::new(),
            origin: OriginEngine::new(),
            checkpoints: Vec::new(),
            memlog: Vec::new(),
            provlog: Vec::new(),
            covnotes: Vec::new(),
            cov_normal: CovMap::new(),
            cov_spec: CovMap::new(),
            gadget_keys: FxHashSet::default(),
            gadgets: Vec::new(),
            output: Vec::new(),
            trace: Vec::new(),
            record_witness: false,
            record_provenance: false,
            for_program: prog.uid,
            icache_ro: teapot_rt::FxHashMap::default(),
            icache_run: teapot_rt::FxHashMap::default(),
            decode_scratch: Vec::new(),
            telemetry: VmCounters::default(),
            profile: None,
        }
    }

    /// Restores the context to the observable state of a fresh
    /// [`ExecContext::new`] while reusing allocations: dirty memory
    /// pages are copied back from the pristine image, shadow pages are
    /// zeroed, and every buffer is cleared with capacity kept.
    ///
    /// A context created for a *different* program cannot be patched
    /// up page-by-page (untouched pages would keep the other binary's
    /// bytes), so the address space is re-cloned from `prog`'s pristine
    /// image — but the shadow engines and every run buffer still reset
    /// in place, which is what lets queue mode recycle one context per
    /// worker across a whole directory of binaries.
    pub fn reset(&mut self, prog: &Program) {
        if self.for_program != prog.uid {
            self.mem = prog.pristine().clone();
            self.for_program = prog.uid;
            // Rebind: retained decodes belong to the old program's image.
            self.icache_ro.clear();
            // A profile's block spans belong to the old program too.
            if self.profile.is_some() {
                self.profile = Some(Box::new(BlockProfile::new(prog.blocks())));
            }
        } else {
            self.mem.reset_to(prog.pristine());
        }
        self.icache_run.clear();
        self.asan.reset();
        self.taint.reset();
        self.origin.reset();
        self.checkpoints.clear();
        self.memlog.clear();
        self.provlog.clear();
        self.covnotes.clear();
        self.cov_normal.clear();
        self.cov_spec.clear();
        self.gadget_keys.clear();
        self.gadgets.clear();
        self.output.clear();
        self.trace.clear();
    }

    /// Normal-execution coverage of the last run.
    pub fn cov_normal(&self) -> &CovMap {
        &self.cov_normal
    }

    /// Speculation-simulation coverage of the last run.
    pub fn cov_spec(&self) -> &CovMap {
        &self.cov_spec
    }

    /// Gadget reports of the last run, in discovery order.
    pub fn gadgets(&self) -> &[GadgetReport] {
        &self.gadgets
    }

    /// Moves the last run's gadget reports out of the context.
    pub fn take_gadgets(&mut self) -> Vec<GadgetReport> {
        std::mem::take(&mut self.gadgets)
    }

    /// Bytes the last run wrote.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Enables or disables the witness recorder. While on, each run
    /// appends up to [`MAX_TRACE_EVENTS`] speculative-trace entries
    /// (simulation entries, DIFT-tainted accesses, rollbacks) readable
    /// via [`ExecContext::trace`] after the run. Recording never changes
    /// an execution's observable outcome.
    pub fn set_witness_recording(&mut self, on: bool) {
        self.record_witness = on;
    }

    /// Whether the witness recorder is enabled.
    pub fn witness_recording(&self) -> bool {
        self.record_witness
    }

    /// Enables or disables the origin (provenance) shadow for
    /// subsequent runs. While on, every DIFT tag flow also propagates
    /// the input-byte origin interval of the data, tainted-access trace
    /// events resolve their origin spans, and each first-seen gadget
    /// report appends a [`TraceEvent::LeakSite`] to the witness trace.
    /// Intended for triage provenance replays only: a machine assembled
    /// with provenance on avoids the slim compiled templates (which
    /// deliberately skip origin propagation) by degrading to the
    /// observably-identical block-slice tier. Origins are
    /// observation-only metadata — the architectural outcome of a run
    /// is unchanged.
    pub fn set_provenance(&mut self, on: bool) {
        self.record_provenance = on;
    }

    /// Whether the origin (provenance) shadow is enabled.
    pub fn provenance(&self) -> bool {
        self.record_provenance
    }

    /// Speculative trace of the last run (empty unless recording is on).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Enables or disables the hot-site profiler against `prog`'s block
    /// table. Idempotent: enabling keeps an existing (compatible)
    /// profile's accumulated counts. Profiling never changes an
    /// execution's observable outcome.
    pub fn set_profiling(&mut self, on: bool, prog: &Program) {
        if !on {
            self.profile = None;
            return;
        }
        let fresh = match &self.profile {
            Some(p) => !p.same_blocks(prog.blocks()),
            None => true,
        };
        if fresh {
            self.profile = Some(Box::new(BlockProfile::new(prog.blocks())));
        }
    }

    /// The accumulated hot-site profile, when profiling is enabled.
    pub fn profile(&self) -> Option<&BlockProfile> {
        self.profile.as_deref()
    }

    /// Machine-level telemetry counters accumulated over every run this
    /// context hosted (slab counters not included; see
    /// [`ExecContext::counters_snapshot`]).
    pub fn telemetry(&self) -> &VmCounters {
        &self.telemetry
    }

    /// Full telemetry snapshot: the machine-level accumulator plus the
    /// TLB/page counters of the three context-owned slabs (guest
    /// memory, ASan shadow, DIFT shadow). Deterministic for a
    /// deterministic workload: only context-owned state is read — never
    /// the `Arc`-shared pristine image.
    pub fn counters_snapshot(&self) -> VmCounters {
        let mut c = self.telemetry;
        for (h, m, p) in [
            self.mem.telemetry_counts(),
            self.asan.telemetry_counts(),
            self.taint.telemetry_counts(),
        ] {
            c.tlb_hits += h;
            c.tlb_misses += m;
            c.pages_allocated += p;
        }
        c
    }
}

/// Owned-or-borrowed execution context of one [`Machine`].
enum CtxSlot<'c> {
    Owned(Box<ExecContext>),
    Borrowed(&'c mut ExecContext),
}

impl std::ops::Deref for CtxSlot<'_> {
    type Target = ExecContext;
    #[inline]
    fn deref(&self) -> &ExecContext {
        match self {
            CtxSlot::Owned(c) => c,
            CtxSlot::Borrowed(c) => c,
        }
    }
}

impl std::ops::DerefMut for CtxSlot<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut ExecContext {
        match self {
            CtxSlot::Owned(c) => c,
            CtxSlot::Borrowed(c) => c,
        }
    }
}

/// The virtual machine.
pub struct Machine<'c> {
    /// Architectural state.
    pub cpu: Cpu,
    prog: Arc<Program>,
    ctx: CtxSlot<'c>,
    policy: Policy,
    dift_on: bool,
    asan_on: bool,
    nested_on: bool,
    single_copy: bool,
    /// Whether the origin (provenance) shadow is live for this run:
    /// the context's `record_provenance` flag, resolved once at
    /// assembly and requiring DIFT (origins without tags are
    /// meaningless). Off on the campaign hot path — every `prov_on`
    /// branch below is dead there.
    prov_on: bool,

    opts: RunOptions,
    /// Mirror of `ctx.checkpoints.len()`, maintained at every push and
    /// rollback: `in_sim()` is consulted several times per executed
    /// instruction, and the cached copy avoids a context dereference
    /// plus vector-length load on each of them.
    sim_depth: u32,
    pending_oob: Option<PendingOob>,
    invert_next_branch: bool,
    skip_sim_once: bool,

    /// Active speculation models, unpacked for the hot path. With the
    /// default PHT-only set every `rsb_on`/`stl_on` branch below is dead
    /// and the machine behaves exactly like the pre-specmodel build.
    pht_on: bool,
    rsb_on: bool,
    stl_on: bool,
    /// Simulated return-stack buffer (RSB model): predicted return
    /// targets, youngest last, bounded at [`RSB_DEPTH`].
    rsb: Vec<u64>,
    /// Simulated store buffer (STL model): the last [`STL_WINDOW`]
    /// stores with their pre-store contents, kept in ascending `seq`
    /// order (oldest drained first, newest last) so rollback can drop
    /// the wrong-path suffix with one truncate.
    store_buf: Vec<StlStore>,
    /// Monotonic store counter feeding [`StlStore::seq`].
    store_seq: u64,
    /// The load a rolled-back STL window resumes at must execute
    /// architecturally instead of re-mispredicting.
    skip_stl_once: bool,
    /// Per-run simulation entries per model id (policy budget
    /// [`SpecModel::run_entry_budget`]).
    model_run_entries: [u32; 3],
    /// Per-run *top-level* entries per model-tagged site (policy budget
    /// [`SpecModel::top_entries_per_site_per_run`]).
    model_site_entries: teapot_rt::FxHashMap<u64, u32>,

    /// Per-run telemetry counters (plain integers, no atomics): folded
    /// into the context's [`VmCounters`] accumulator at the end of
    /// [`Machine::run_stats`]. Counting is unconditional and the values
    /// are never read during the run, so telemetry cannot perturb
    /// execution.
    t_slice_insts: u64,
    t_compiled_insts: u64,
    t_compiled_exits: u64,
    t_icache_ro_hits: u64,
    t_icache_run_hits: u64,
    t_live_decodes: u64,
    t_checkpoints: [u64; 3],
    t_rollbacks: [u64; 3],
    t_rob_stops: [u64; 3],
    t_memlog_bytes: u64,
    t_prov_bytes: u64,
    t_prov_folds: u64,
    t_prov_leaks: u64,

    cost: u64,
    insts: u64,
    /// Program (non-instrumentation) instructions — what the reorder-
    /// buffer budget counts. Teapot distinguishes instrumentation from
    /// program code (it inserted it); single-copy SpecFuzz-style binaries
    /// cannot, so for them every instruction counts — reproducing the
    /// paper's §3.2 observation that frontend-ASan code is "counted as
    /// program instructions, rendering the length of transient execution
    /// simulation inaccurate".
    prog_insts: u64,
    sim_entries: u64,
    rollbacks: u64,
    escapes: u64,
    input_pos: usize,

    trace: bool,
    uncached_decode: bool,
    tier: DispatchTier,
}

impl std::fmt::Debug for Machine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cpu", &self.cpu)
            .field("policy", &self.policy)
            .field("cost", &self.cost)
            .field("insts", &self.insts)
            .finish()
    }
}

enum Step {
    Continue,
    Stop(ExitStatus),
}

/// Low-`n`-bytes mask for raw little-endian loads.
#[inline]
fn mask_for(n: u64) -> u64 {
    if n >= 8 {
        u64::MAX
    } else {
        (1u64 << (n * 8)) - 1
    }
}

/// Width extension of a raw loaded value — the single definition behind
/// both the architectural load path and the STL stale-value forward.
#[inline]
fn apply_sext(raw: u64, size: AccessSize, sext: bool) -> u64 {
    if !sext {
        return raw;
    }
    match size {
        AccessSize::B1 => raw as u8 as i8 as i64 as u64,
        AccessSize::B2 => raw as u16 as i16 as i64 as u64,
        AccessSize::B4 => raw as u32 as i32 as i64 as u64,
        AccessSize::B8 => raw,
    }
}

impl<'c> Machine<'c> {
    /// Loads `binary` and prepares a run with the given options.
    ///
    /// This one-shot entry point decodes the binary privately; loops
    /// that execute many runs should decode once with
    /// [`Program::shared`] and pool contexts via
    /// [`Machine::with_context`].
    ///
    /// # Panics
    ///
    /// Panics if an instrumented binary carries a malformed
    /// `.teapot.meta` section (a rewriter bug, not a runtime input).
    pub fn new(binary: &Binary, opts: RunOptions) -> Machine<'static> {
        let prog = Program::shared(binary);
        let ctx = Box::new(ExecContext::new(&prog));
        Machine::assemble(prog, CtxSlot::Owned(ctx), opts)
    }

    /// Prepares a run over a shared predecoded program with a private
    /// (owned) context.
    pub fn from_program(prog: Arc<Program>, opts: RunOptions) -> Machine<'static> {
        let ctx = Box::new(ExecContext::new(&prog));
        Machine::assemble(prog, CtxSlot::Owned(ctx), opts)
    }

    /// Prepares a run over a shared predecoded program and a pooled
    /// context. The context is reset in place; after the run the caller
    /// reads coverage, gadget reports and output back out of it.
    pub fn with_context(
        prog: &Arc<Program>,
        ctx: &'c mut ExecContext,
        opts: RunOptions,
    ) -> Machine<'c> {
        ctx.reset(prog);
        Machine::assemble(prog.clone(), CtxSlot::Borrowed(ctx), opts)
    }

    fn assemble(prog: Arc<Program>, ctx: CtxSlot<'c>, opts: RunOptions) -> Machine<'c> {
        let flags = prog.flags;
        let policy = match opts.emu {
            EmuStyle::SpecTaint => Policy::SpecTaint,
            EmuStyle::Native => {
                if flags.dift {
                    Policy::Kasper
                } else if flags.asan {
                    Policy::SpecFuzz
                } else {
                    Policy::None
                }
            }
        };
        let dift_on = flags.dift || matches!(opts.emu, EmuStyle::SpecTaint);
        let prov_on = ctx.record_provenance && dift_on;
        let models = opts.models;
        // The slim compiled templates deliberately carry no origin
        // propagation (the campaign hot path must stay untouched), so a
        // provenance run degrades to the observably-identical
        // block-slice tier — overriding even a forced compiled tier, so
        // provenance replays resolve identical origins under every
        // `TEAPOT_DISPATCH_TIER`.
        let mut tier = forced_tier().unwrap_or_default();
        if prov_on && tier == DispatchTier::Compiled {
            tier = DispatchTier::Slice;
        }

        let mut cpu = Cpu {
            pc: prog.entry,
            ..Cpu::default()
        };
        cpu.set(Reg::SP, STACK_TOP - 64);

        Machine {
            cpu,
            policy,
            dift_on,
            asan_on: flags.asan,
            nested_on: flags.nested_speculation,
            single_copy: flags.single_copy,
            prov_on,
            prog,
            ctx,
            opts,
            sim_depth: 0,
            pending_oob: None,
            invert_next_branch: false,
            skip_sim_once: false,
            pht_on: models.contains(SpecModel::Pht),
            rsb_on: models.contains(SpecModel::Rsb),
            stl_on: models.contains(SpecModel::Stl),
            rsb: Vec::new(),
            store_buf: Vec::new(),
            store_seq: 0,
            skip_stl_once: false,
            model_run_entries: [0; 3],
            model_site_entries: teapot_rt::FxHashMap::default(),
            t_slice_insts: 0,
            t_compiled_insts: 0,
            t_compiled_exits: 0,
            t_icache_ro_hits: 0,
            t_icache_run_hits: 0,
            t_live_decodes: 0,
            t_checkpoints: [0; 3],
            t_rollbacks: [0; 3],
            t_rob_stops: [0; 3],
            t_memlog_bytes: 0,
            t_prov_bytes: 0,
            t_prov_folds: 0,
            t_prov_leaks: 0,
            cost: 0,
            insts: 0,
            prog_insts: 0,
            sim_entries: 0,
            rollbacks: 0,
            escapes: 0,
            input_pos: 0,
            trace: std::env::var_os("TEAPOT_TRACE").is_some(),
            uncached_decode: false,
            tier,
        }
    }

    /// Forces the per-step live-decode path, bypassing the predecoded
    /// [`Program`] tables. Test hook for the differential decode suite;
    /// semantics must be identical either way.
    #[doc(hidden)]
    pub fn set_uncached_decode(&mut self, uncached: bool) {
        self.uncached_decode = uncached;
    }

    /// Forces a dispatch tier regardless of the default and the
    /// `TEAPOT_DISPATCH_TIER` override. Test/bench hook for the
    /// differential suite and the per-tier benchmark rows; semantics
    /// must be identical on every tier.
    #[doc(hidden)]
    pub fn set_dispatch_tier(&mut self, tier: DispatchTier) {
        self.tier = tier;
    }

    /// Disables every fused fast path, forcing per-instruction dispatch
    /// (kept as the historical spelling of
    /// `set_dispatch_tier(DispatchTier::Step)`).
    #[doc(hidden)]
    pub fn set_no_block_dispatch(&mut self, no_block: bool) {
        self.tier = if no_block {
            DispatchTier::Step
        } else {
            forced_tier().unwrap_or_default()
        };
    }

    /// The guest address space (borrowed from the execution context).
    pub fn mem(&self) -> &PagedMem {
        &self.ctx.mem
    }

    /// Runs to completion, threading persistent heuristics state.
    pub fn run(mut self, heur: &mut SpecHeuristics) -> RunOutcome {
        let stats = self.run_stats(heur);
        let ctx = &mut *self.ctx;
        RunOutcome {
            status: stats.status,
            cost: stats.cost,
            insts: stats.insts,
            gadgets: std::mem::take(&mut ctx.gadgets),
            cov_normal: std::mem::take(&mut ctx.cov_normal),
            cov_spec: std::mem::take(&mut ctx.cov_spec),
            output: std::mem::take(&mut ctx.output),
            sim_entries: stats.sim_entries,
            rollbacks: stats.rollbacks,
            escapes: stats.escapes,
        }
    }

    /// Runs to completion, leaving coverage, gadget reports and output
    /// in the [`ExecContext`] (no per-run allocations for them). This is
    /// the hot-loop twin of [`Machine::run`].
    pub fn run_stats(&mut self, heur: &mut SpecHeuristics) -> RunStats {
        heur.begin_run();
        // Bind the heuristics' dense-site table to this program, so
        // every speculation gate resolves its per-site slot through an
        // array read instead of a hash probe (rebinding to the same
        // program is free).
        heur.bind_sites(self.prog.uid, self.prog.site_count());
        // One refcount bump per run: the dispatch loop borrows the
        // predecoded region tables from this local clone, so the
        // per-instruction fetch needs no borrow of `self`.
        let regions = self.prog.regions_arc();
        let status = match self.ctx.profile.take() {
            // Profiled twin of the loop below: attribute the cost/inst
            // delta of each dispatch to the block the iteration started
            // in. The profile box is taken out of the context for the
            // loop so each iteration writes through an owned pointer
            // (no per-iteration Option test); the unprofiled path pays
            // nothing for the profiler.
            Some(mut p) => {
                let s = loop {
                    let pc0 = self.cpu.pc;
                    let cost0 = self.cost;
                    let insts0 = self.insts;
                    // chain=false: every window returns here so its
                    // cost/inst delta lands on the block it started in.
                    let step = self.dispatch(&regions, heur, false);
                    p.record(
                        pc0,
                        self.cost.saturating_sub(cost0),
                        self.insts.saturating_sub(insts0),
                    );
                    match step {
                        Step::Continue => {}
                        Step::Stop(s) => break s,
                    }
                };
                self.ctx.profile = Some(p);
                s
            }
            None => loop {
                match self.dispatch(&regions, heur, true) {
                    Step::Continue => {}
                    Step::Stop(s) => break s,
                }
            },
        };
        // Fold this run's plain telemetry counters into the context-owned
        // accumulator. Observation-only: nothing here is ever read back
        // during execution, so enabling telemetry cannot perturb results.
        {
            let run_insts = self.insts;
            let slice_insts = self.t_slice_insts;
            let compiled_insts = self.t_compiled_insts;
            let ctx = &mut *self.ctx;
            let t = &mut ctx.telemetry;
            t.compiled_insts += compiled_insts;
            t.compiled_exits += self.t_compiled_exits;
            t.slice_insts += slice_insts;
            t.step_insts += run_insts - slice_insts - compiled_insts;
            t.icache_ro_hits += self.t_icache_ro_hits;
            t.icache_run_hits += self.t_icache_run_hits;
            t.live_decodes += self.t_live_decodes;
            for m in 0..3 {
                t.checkpoints[m] += self.t_checkpoints[m];
                t.rollbacks[m] += self.t_rollbacks[m];
                t.rob_stops[m] += self.t_rob_stops[m];
            }
            t.memlog_bytes_replayed += self.t_memlog_bytes;
            t.prov_bytes += self.t_prov_bytes;
            t.prov_folds += self.t_prov_folds;
            t.prov_leaks += self.t_prov_leaks;
        }
        RunStats {
            status,
            cost: self.cost,
            insts: self.insts,
            sim_entries: self.sim_entries,
            rollbacks: self.rollbacks,
            escapes: self.escapes,
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    #[inline]
    fn in_sim(&self) -> bool {
        self.sim_depth > 0
    }

    /// Maps a rewritten PC back to original-binary coordinates
    /// (precomputed per predecoded byte; the binary search remains only
    /// for addresses outside every executable region).
    fn orig_pc(&self, pc: u64) -> u64 {
        if self.prog.meta().is_none() {
            return pc;
        }
        match self.prog.orig_of(pc) {
            Some(o) => o,
            None => self
                .prog
                .meta()
                .and_then(|m| m.to_original(pc))
                .unwrap_or(pc),
        }
    }

    fn ea(&self, m: &MemRef) -> u64 {
        let base = m.base.map(|r| self.cpu.get(r)).unwrap_or(0);
        let index = m.index.map(|r| self.cpu.get(r)).unwrap_or(0);
        base.wrapping_add(index.wrapping_mul(m.scale as u64))
            .wrapping_add(m.disp as i64 as u64)
    }

    fn ea_tag(&self, m: &MemRef) -> Tag {
        let mut t = Tag::CLEAN;
        if let Some(r) = m.base {
            t |= self.ctx.taint.reg(r);
        }
        if let Some(r) = m.index {
            t |= self.ctx.taint.reg(r);
        }
        t
    }

    fn operand(&self, o: &Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.cpu.get(*r),
            Operand::Imm(i) => *i as i64 as u64,
        }
    }

    fn operand_tag(&self, o: &Operand) -> Tag {
        match o {
            Operand::Reg(r) => self.ctx.taint.reg(*r),
            Operand::Imm(_) => Tag::CLEAN,
        }
    }

    /// Origin fold of the registers composing an effective address —
    /// the provenance twin of [`Machine::ea_tag`].
    fn ea_origin(&self, m: &MemRef) -> OriginSpan {
        let mut s = OriginSpan::NONE;
        if let Some(r) = m.base {
            s = s.join(self.ctx.origin.reg(r));
        }
        if let Some(r) = m.index {
            s = s.join(self.ctx.origin.reg(r));
        }
        s
    }

    fn operand_origin(&self, o: &Operand) -> OriginSpan {
        match o {
            Operand::Reg(r) => self.ctx.origin.reg(*r),
            Operand::Imm(_) => OriginSpan::NONE,
        }
    }

    fn report(
        &mut self,
        channel: Channel,
        tag: Tag,
        access_pc: u64,
        what: &str,
        origin: OriginSpan,
    ) {
        let flavors = [
            (Tag::SECRET_USER, Controllability::User),
            (Tag::SECRET_MASSAGE, Controllability::Massage),
        ];
        for (flavor, ctrl) in flavors {
            if !tag.contains(flavor) {
                continue;
            }
            let key = GadgetKey {
                pc: self.orig_pc(access_pc),
                channel,
                controllability: ctrl,
                model: self.window_model(),
            };
            if self.ctx.gadget_keys.insert(key) {
                if self.trace {
                    eprintln!("[trace] REPORT {channel:?} at {pc:#x}", pc = key.pc);
                }
                let branch_pc = self
                    .ctx
                    .checkpoints
                    .first()
                    .map(|c| c.branch_pc_orig)
                    .unwrap_or(0);
                let depth = self.ctx.checkpoints.len() as u32;
                let access_orig = self.orig_pc(access_pc);
                self.ctx.gadgets.push(GadgetReport {
                    key,
                    branch_pc,
                    access_pc: access_orig,
                    depth,
                    description: what.to_string(),
                });
                // Provenance replays append the leak-site event that
                // completes the causal chain; campaign-captured traces
                // (prov_on off) are unchanged.
                if self.prov_on {
                    self.t_prov_leaks += 1;
                    self.record_event(TraceEvent::LeakSite {
                        pc: key.pc,
                        depth,
                        model: key.model,
                        tag: tag.bits(),
                        origin,
                    });
                }
            }
        }
    }

    /// A SpecFuzz-style report (no taint: fixed User/MDS bucket).
    fn report_specfuzz(&mut self, access_pc: u64) {
        let key = GadgetKey {
            pc: self.orig_pc(access_pc),
            channel: Channel::Mds,
            controllability: Controllability::User,
            model: self.window_model(),
        };
        if self.ctx.gadget_keys.insert(key) {
            let branch_pc = self
                .ctx
                .checkpoints
                .first()
                .map(|c| c.branch_pc_orig)
                .unwrap_or(0);
            let depth = self.ctx.checkpoints.len() as u32;
            let access_orig = self.orig_pc(access_pc);
            self.ctx.gadgets.push(GadgetReport {
                key,
                branch_pc,
                access_pc: access_orig,
                depth,
                description: "speculative out-of-bounds access".to_string(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Speculation-simulation runtime
    // ------------------------------------------------------------------

    /// Appends a witness-trace event (no-op unless recording is on; the
    /// trace is bounded, so a pathological run cannot grow it without
    /// limit). Recording charges no cost and is never read back during
    /// the run — a recorded execution is observably identical to an
    /// unrecorded one.
    #[inline]
    fn record_event(&mut self, ev: TraceEvent) {
        let ctx = &mut *self.ctx;
        if ctx.record_witness && ctx.trace.len() < MAX_TRACE_EVENTS {
            ctx.trace.push(ev);
        }
    }

    fn push_checkpoint(
        &mut self,
        resume_pc: u64,
        branch_pc_orig: u64,
        resume_is_branch: bool,
        model: SpecModel,
    ) {
        let mut rsb_snapshot = [0u64; RSB_DEPTH];
        let rsb_len = if self.rsb_on {
            rsb_snapshot[..self.rsb.len()].copy_from_slice(&self.rsb);
            self.rsb.len() as u8
        } else {
            0
        };
        let ctx = &mut *self.ctx;
        let window_start = ctx
            .checkpoints
            .first()
            .map(|c| c.insts_at_entry)
            .unwrap_or(self.prog_insts);
        ctx.checkpoints.push(Checkpoint {
            regs: self.cpu.regs,
            flags: self.cpu.flags,
            resume_pc,
            reg_tags: ctx.taint.regs,
            flags_tag: ctx.taint.flags,
            reg_origins: ctx.origin.regs,
            flags_origin: ctx.origin.flags,
            memlog_mark: ctx.memlog.len(),
            covnote_mark: ctx.covnotes.len(),
            insts_at_entry: window_start,
            prog_snapshot: self.prog_insts,
            branch_pc_orig,
            resume_is_branch,
            model,
            rsb_snapshot,
            rsb_len,
            store_seq_mark: self.store_seq,
            resume_pending_oob: None,
        });
        self.sim_entries += 1;
        self.sim_depth += 1;
        self.t_checkpoints[model.id() as usize] += 1;
        let depth = self.ctx.checkpoints.len() as u32;
        self.record_event(TraceEvent::SpecBranch {
            pc: branch_pc_orig,
            depth,
            model,
        });
    }

    /// The speculation model of the current window: the model of the
    /// *outermost* misprediction (what a gadget report is attributed
    /// to), `Pht` outside simulation.
    #[inline]
    fn window_model(&self) -> SpecModel {
        self.ctx
            .checkpoints
            .first()
            .map(|c| c.model)
            .unwrap_or(SpecModel::Pht)
    }

    /// Rolls back the innermost simulation level (paper §6.1 "Rollback").
    fn rollback(&mut self) {
        let cp = self
            .ctx
            .checkpoints
            .pop()
            .expect("rollback without checkpoint");
        self.sim_depth -= 1;
        if self.trace {
            eprintln!(
                "[trace] rollback depth {} after {} prog insts, resume {:#x}",
                self.ctx.checkpoints.len() + 1,
                self.prog_insts - cp.insts_at_entry,
                cp.resume_pc
            );
        }
        // Replay the memory log in reverse (page-chunked, not per byte;
        // drained in place — a rollback allocates nothing).
        {
            let ctx = &mut *self.ctx;
            let entries = &ctx.memlog[cp.memlog_mark..];
            self.cost += cost::ROLLBACK_BASE + cost::ROLLBACK_PER_LOG * entries.len() as u64;
            for (i, e) in entries.iter().enumerate().rev() {
                self.t_memlog_bytes += e.len as u64;
                ctx.mem.poke_n(e.addr, &e.old_bytes[..e.len as usize]);
                if self.dift_on {
                    ctx.taint.write_tags(e.addr, &e.old_tags[..e.len as usize]);
                }
                if self.prov_on {
                    // The provenance log is 1:1 with the memory log, so
                    // the same index restores the squashed origins.
                    let p = &ctx.provlog[cp.memlog_mark + i];
                    let n = e.len as usize;
                    ctx.origin.write_raw(e.addr, &p.old_lo[..n], &p.old_hi[..n]);
                }
            }
            ctx.memlog.truncate(cp.memlog_mark);
            if self.prov_on {
                ctx.provlog.truncate(cp.memlog_mark);
            }
            // Lazy speculative-coverage flush (paper §6.3 optimization).
            let notes = &ctx.covnotes[cp.covnote_mark..];
            self.cost += cost::COV_FLUSH_PER_NOTE * notes.len() as u64;
            for &g in notes {
                ctx.cov_spec.hit(g);
            }
            ctx.covnotes.truncate(cp.covnote_mark);
        }
        // Restore architectural + taint state. The program-instruction
        // counter is part of the restored state: squashed wrong-path
        // instructions release their reorder-buffer entries, so they must
        // not consume the enclosing window's budget.
        self.prog_insts = cp.prog_snapshot;
        self.cpu.regs = cp.regs;
        self.cpu.flags = cp.flags;
        self.cpu.pc = cp.resume_pc;
        self.ctx.taint.regs = cp.reg_tags;
        self.ctx.taint.flags = cp.flags_tag;
        self.ctx.origin.regs = cp.reg_origins;
        self.ctx.origin.flags = cp.flags_origin;
        // Only an STL checkpoint carries a verdict to restore (its
        // resume point is the guarded access itself); everywhere else
        // this is the pre-existing `pending_oob = None`.
        self.pending_oob = cp.resume_pending_oob;
        self.invert_next_branch = false;
        if cp.resume_is_branch {
            self.skip_sim_once = true;
        }
        // Squash predictor-visible model state: the RSB is restored to
        // its entry snapshot; wrong-path store-buffer entries (stores
        // that never architecturally retired) are dropped; an STL
        // window resumes *at* the bypassed load, which must now execute
        // architecturally.
        if self.rsb_on {
            self.rsb.clear();
            self.rsb
                .extend_from_slice(&cp.rsb_snapshot[..cp.rsb_len as usize]);
        }
        if self.stl_on {
            let keep = self
                .store_buf
                .partition_point(|e| e.seq <= cp.store_seq_mark);
            self.store_buf.truncate(keep);
            self.store_seq = cp.store_seq_mark;
        }
        if cp.model == SpecModel::Stl {
            self.skip_stl_once = true;
        }
        self.rollbacks += 1;
        self.t_rollbacks[cp.model.id() as usize] += 1;
        let depth = self.ctx.checkpoints.len() as u32 + 1;
        self.record_event(TraceEvent::Rollback {
            pc: cp.branch_pc_orig,
            depth,
            model: cp.model,
        });
    }

    /// Handles a fault: rollback inside simulation (the paper's signal
    /// handler, §6.1 "Exceptions"), crash outside.
    fn fault(&mut self, f: Fault) -> Step {
        if self.in_sim() {
            if self.trace {
                eprintln!("[trace] speculative fault {f:?}");
            }
            self.rollback();
            Step::Continue
        } else {
            Step::Stop(ExitStatus::Fault(f))
        }
    }

    // ------------------------------------------------------------------
    // Model-driven misprediction (teapot-specmodel: RSB + STL)
    // ------------------------------------------------------------------

    /// Pushes a predicted return target onto the simulated RSB,
    /// recycling the oldest entry once the hardware depth is reached.
    fn rsb_push(&mut self, ret_target: u64) {
        if self.rsb.len() == RSB_DEPTH {
            self.rsb.remove(0);
        }
        self.rsb.push(ret_target);
    }

    /// Shared admission control for VM-driven (RSB/STL) simulation
    /// entries: the per-run model budget and per-site top-level cap
    /// (specmodel policy), then the persistent per-site speculation
    /// heuristics under the model-tagged site key — so RSB/STL sites
    /// accumulate their own cross-run counts without colliding with the
    /// PHT branch counts.
    fn model_gate(
        &mut self,
        model: SpecModel,
        site_pc: u64,
        sid: Option<u32>,
        heur: &mut SpecHeuristics,
    ) -> bool {
        let idx = model.id() as usize;
        if self.model_run_entries[idx] >= model.run_entry_budget() {
            return false;
        }
        let site = model.site_key(site_pc);
        let depth = self.ctx.checkpoints.len() as u32;
        let enter = if depth == 0 {
            let seen = self.model_site_entries.get(&site).copied().unwrap_or(0);
            if seen >= model.top_entries_per_site_per_run() {
                return false;
            }
            heur.enter_top_at(sid, site) && {
                self.model_site_entries.insert(site, seen + 1);
                true
            }
        } else if self.opts.emu == EmuStyle::Native && !self.nested_on {
            // The binary was instrumented without nested speculation:
            // the knob bounds VM-driven models exactly like `sim.start`
            // entries (SpecTaint emulation always nests, as for PHT).
            false
        } else {
            heur.enter_nested_at(
                sid,
                site,
                depth,
                self.opts.config.max_nesting,
                self.opts.config.full_depth_runs,
            )
        };
        if enter {
            self.model_run_entries[idx] += 1;
        }
        enter
    }

    /// RSB model: after an architectural `ret` to `actual`, consider a
    /// misprediction to the now-topmost (stale) shadow-stack entry — the
    /// target a clobbered or over/underflowed hardware RSB would hand
    /// the front end (Spectre-RSB / ret2spec). The mispredicted path
    /// runs one activation record up the stack with the *current*
    /// architectural state, exactly the wrong-frame return the attack
    /// exploits; the checkpoint resumes at the correct target.
    fn maybe_mispredict_return(&mut self, pc: u64, actual: u64, heur: &mut SpecHeuristics) {
        let Some(&stale) = self.rsb.last() else {
            return;
        };
        if stale == actual {
            return;
        }
        // In a rewritten binary speculation must run in the Shadow Copy
        // (paper §5.3): translate the stale Real-Copy target. Return
        // sites are indirect targets, so the rewriter registered them;
        // a target without a shadow mapping cannot be simulated.
        let spec_target = match self.prog.meta() {
            Some(m) if m.in_real(stale) => match m.shadow_of(stale) {
                Some(s) => s,
                None => return,
            },
            _ => stale,
        };
        let site_orig = self.orig_pc(pc);
        let sid = self.prog.site_id_of(pc);
        if !self.model_gate(SpecModel::Rsb, site_orig, sid, heur) {
            return;
        }
        if self.trace {
            eprintln!(
                "[trace] rsb mispredict at {pc:#x}: stale {stale:#x} (actual {actual:#x}) depth {}",
                self.ctx.checkpoints.len() + 1
            );
        }
        self.charge(cost::RSB_CHECKPOINT);
        // The `ret` completed architecturally (SP popped) before the
        // checkpoint, so the squash resumes cleanly at `actual`.
        self.push_checkpoint(actual, site_orig, false, SpecModel::Rsb);
        self.cpu.pc = spec_target;
    }

    /// Records a store into the simulated store buffer: address, width
    /// and the *replaced* contents a younger load may speculatively
    /// forward. Unreadable targets are skipped (the store itself is
    /// about to fault).
    fn stl_record_store(&mut self, addr: u64, n: u64) {
        let mut old_bytes = [0u8; 8];
        let mut old_tags = [0u8; 8];
        let mut old_lo = [0u8; 8];
        let mut old_hi = [0u8; 8];
        if self
            .ctx
            .mem
            .read_n(addr, &mut old_bytes[..n as usize])
            .is_err()
        {
            return;
        }
        self.ctx.taint.read_tags(addr, &mut old_tags[..n as usize]);
        if self.prov_on {
            self.ctx
                .origin
                .read_raw(addr, &mut old_lo[..n as usize], &mut old_hi[..n as usize]);
        }
        self.store_seq += 1;
        if self.store_buf.len() == STL_WINDOW {
            // Oldest entry drains (hardware store buffers retire in
            // order); the vector stays seq-sorted.
            self.store_buf.remove(0);
        }
        self.store_buf.push(StlStore {
            addr,
            len: n as u8,
            old_bytes,
            old_tags,
            old_lo,
            old_hi,
            seq: self.store_seq,
        });
    }

    /// The stale value a load of `[addr, addr+n)` would forward if it
    /// bypassed the youngest overlapping store still in the buffer:
    /// `Some((bytes, tags, origin))` when such a store fully covers the
    /// load (the origin span is the stale bytes' provenance fold,
    /// [`OriginSpan::NONE`] unless the origin shadow is on). Wild
    /// (wrapping) speculative addresses never match.
    fn stl_stale(&self, addr: u64, n: u64) -> Option<([u8; 8], [u8; 8], OriginSpan)> {
        let end = addr.checked_add(n)?;
        // Entries are seq-sorted, so the first match from the back is
        // the youngest overlapping store.
        self.store_buf
            .iter()
            .rev()
            .find(|e| e.addr <= addr && end <= e.addr + e.len as u64)
            .map(|e| {
                let off = (addr - e.addr) as usize;
                let mut bytes = [0u8; 8];
                let mut tags = [0u8; 8];
                bytes[..n as usize].copy_from_slice(&e.old_bytes[off..off + n as usize]);
                tags[..n as usize].copy_from_slice(&e.old_tags[off..off + n as usize]);
                let origin = if self.prov_on {
                    OriginEngine::fold_raw(
                        &e.old_lo[off..off + n as usize],
                        &e.old_hi[off..off + n as usize],
                    )
                } else {
                    OriginSpan::NONE
                };
                (bytes, tags, origin)
            })
    }

    /// STL model: before executing a load, consider a speculative
    /// store-to-load-bypass window (Spectre-V4) in which the load skips
    /// the youngest overlapping store and forwards the *pre-store*
    /// value — stale data, stale taint. Entered only when the stale and
    /// current contents actually differ (in bytes or tags); the
    /// checkpoint resumes at the load itself, which then executes
    /// architecturally ([`Machine::skip_stl_once`]). Returns whether the
    /// bypass was entered.
    #[allow(clippy::too_many_arguments)]
    fn try_stl_bypass(
        &mut self,
        dst: Reg,
        mem: &MemRef,
        size: AccessSize,
        sext: bool,
        pc: u64,
        pre: StlPre,
        heur: &mut SpecHeuristics,
    ) -> bool {
        if self.skip_stl_once {
            self.skip_stl_once = false;
            return false;
        }
        let addr = self.ea(mem);
        let n = size.bytes();
        let Some((stale_bytes, stale_tags, stale_origin)) = self.stl_stale(addr, n) else {
            return false;
        };
        // Compare against the current contents: an idempotent store (same
        // bytes, same tags) opens no observable window.
        let Ok(cur) = self.ctx.mem.read_uint(addr, n) else {
            return false;
        };
        let stale_raw = u64::from_le_bytes(stale_bytes) & mask_for(n);
        let mut stale_tag = Tag::CLEAN;
        for t in &stale_tags[..n as usize] {
            stale_tag |= Tag::from_bits(*t);
        }
        let cur_tag = self.ctx.taint.mem_range_tag(addr, n);
        if stale_raw == cur && stale_tag == cur_tag {
            return false;
        }
        // In a two-copy binary the wrong path must continue in the
        // Shadow Copy (the §5.3 safety net squashes Real-Copy
        // speculation): redirect to the shadow twin of the next copied
        // instruction. A load with no shadow continuation cannot be
        // simulated. The compiled tier hands this in pre-resolved;
        // checked *before* the gate so no budget is consumed either way.
        let (spec_cont, sid) = match pre {
            StlPre::Baked { cont, sid } => {
                if cont == STL_NO_CONT {
                    return false;
                }
                (cont, (sid != NO_SITE).then_some(sid))
            }
            StlPre::Runtime => {
                let cont = self.cpu.pc;
                let spec_cont = match self.prog.meta() {
                    Some(m) if !self.single_copy && m.in_real(cont) => {
                        let twin = m
                            .next_original_after(pc)
                            .and_then(|o| self.prog.shadow_twin(o));
                        match twin {
                            Some(t) => t,
                            None => return false,
                        }
                    }
                    _ => cont,
                };
                (spec_cont, self.prog.site_id_of(pc))
            }
        };
        let site_orig = self.orig_pc(pc);
        if !self.model_gate(SpecModel::Stl, site_orig, sid, heur) {
            return false;
        }
        if self.trace {
            eprintln!(
                "[trace] stl bypass at {pc:#x}: addr {addr:#x} stale {stale_raw:#x} \
                 (current {cur:#x}) depth {}",
                self.ctx.checkpoints.len() + 1
            );
        }
        self.charge(cost::STL_CHECKPOINT);
        // The pending ASan verdict belongs to the architectural
        // execution of this load; the forwarding path must not consume
        // it. Park it in the checkpoint — the preceding `asan.check`
        // does not re-execute when the squash resumes at the load, so
        // rollback hands the verdict back.
        let parked_oob = self.pending_oob.take();
        // Checkpoint *before* the forwarded value lands in `dst`; the
        // squash restores the pre-load registers and re-executes the
        // load architecturally.
        self.push_checkpoint(pc, site_orig, false, SpecModel::Stl);
        if let Some(cp) = self.ctx.checkpoints.last_mut() {
            cp.resume_pending_oob = parked_oob;
        }
        self.cpu.pc = spec_cont;
        let value = apply_sext(stale_raw, size, sext);
        self.cpu.set(dst, value);
        if self.dift_on {
            self.ctx.taint.set_reg(dst, stale_tag);
        }
        if self.prov_on {
            self.ctx.origin.set_reg(dst, stale_origin);
        }
        if self.ctx.record_witness && !stale_tag.is_clean() {
            self.record_event(TraceEvent::TaintedAccess {
                pc: site_orig,
                addr,
                width: n as u8,
                tag: stale_tag.bits(),
                origin: stale_origin,
            });
        }
        true
    }

    // ------------------------------------------------------------------
    // Memory access with policy hooks
    // ------------------------------------------------------------------

    fn do_load(
        &mut self,
        mem: &MemRef,
        size: AccessSize,
        sext: bool,
        pc: u64,
    ) -> Result<(u64, Tag, OriginSpan), Fault> {
        let addr = self.ea(mem);
        let n = size.bytes();
        // The pointer tag only feeds simulation policy and witness
        // recording; normal execution never observes it.
        let sim_dift = self.dift_on && self.in_sim();
        let ptr_tag = if sim_dift {
            self.ea_tag(mem)
        } else {
            Tag::CLEAN
        };
        // Provenance: the loaded value derives from the input bytes
        // that sourced the memory contents *and* the ones that composed
        // the address (an attacker-chosen index selects the value).
        let ptr_origin = if self.prov_on {
            self.ea_origin(mem)
        } else {
            OriginSpan::NONE
        };
        // Address-tag policy checks run BEFORE the access (paper §6.2.2):
        // a speculative load through a secret or massaged pointer is
        // reported even if the wild access then faults (hardware would
        // not fault speculatively; the simulation rolls back instead).
        if sim_dift {
            match self.policy {
                Policy::Kasper => {
                    if ptr_tag.is_secret() {
                        self.report(
                            Channel::Cache,
                            ptr_tag,
                            pc,
                            "secret used to compose a load address",
                            ptr_origin,
                        );
                    }
                    if ptr_tag.contains(Tag::MASSAGE) {
                        self.report(
                            Channel::Mds,
                            Tag::SECRET_MASSAGE,
                            pc,
                            "load through an attacker-indirect (massaged) pointer",
                            ptr_origin,
                        );
                    }
                }
                Policy::SpecTaint if ptr_tag.is_secret() => {
                    self.report(
                        Channel::Cache,
                        ptr_tag,
                        pc,
                        "tainted data reached a dereference (SpecTaint)",
                        ptr_origin,
                    );
                }
                _ => {}
            }
        }
        let raw = self.ctx.mem.read_uint(addr, n).map_err(Fault::Mem)?;
        let value = apply_sext(raw, size, sext);
        if !self.dift_on {
            // SpecFuzz policy consumes pending ASan verdicts without taint.
            self.pending_oob = None;
            return Ok((value, Tag::CLEAN, OriginSpan::NONE));
        }
        let mut val_tag = self.ctx.taint.mem_range_tag(addr, n);
        let origin = if self.prov_on {
            self.t_prov_folds += 1;
            ptr_origin.join(self.ctx.origin.mem_range(addr, n))
        } else {
            OriginSpan::NONE
        };
        if self.in_sim() {
            let pending = self.pending_oob.take();
            let oob = pending.map(|p| p.oob).unwrap_or(false);
            match self.policy {
                Policy::Kasper => {
                    if oob && self.opts.config.massage_policy {
                        // Taint source: outcome of a speculative OOB access
                        // is attacker-indirectly controlled (paper §6.2.2).
                        val_tag |= Tag::MASSAGE;
                    }
                    if oob && ptr_tag.contains(Tag::USER) {
                        val_tag |= Tag::SECRET_USER;
                    }
                    if ptr_tag.contains(Tag::MASSAGE) {
                        // Wild pointers violate program invariants: always
                        // promote (paper §6.2.2 "Taint Sinks").
                        val_tag |= Tag::SECRET_MASSAGE;
                    }
                    if val_tag.is_secret() {
                        self.report(
                            Channel::Mds,
                            val_tag,
                            pc,
                            "secret loaded into a register",
                            origin,
                        );
                    }
                }
                Policy::SpecTaint
                    // No program-level info: every user-controlled access
                    // loads a "secret" (paper §3.1).
                    if ptr_tag.contains(Tag::USER) => {
                        val_tag |= Tag::SECRET_USER;
                    }
                _ => {}
            }
            if self.ctx.record_witness && !(ptr_tag | val_tag).is_clean() {
                let access_orig = self.orig_pc(pc);
                self.record_event(TraceEvent::TaintedAccess {
                    pc: access_orig,
                    addr,
                    width: n as u8,
                    tag: (ptr_tag | val_tag).bits(),
                    origin,
                });
            }
        } else {
            self.pending_oob = None;
        }
        Ok((value, val_tag, origin))
    }

    fn do_store(
        &mut self,
        mem: &MemRef,
        size: AccessSize,
        value: u64,
        tag: Tag,
        origin: OriginSpan,
        pc: u64,
    ) -> Result<(), Fault> {
        let addr = self.ea(mem);
        // The pointer tag is only consumed by in-simulation policy.
        let ptr_tag = if self.dift_on && self.in_sim() {
            self.ea_tag(mem)
        } else {
            Tag::CLEAN
        };
        let ptr_origin = if self.prov_on {
            self.ea_origin(mem)
        } else {
            OriginSpan::NONE
        };
        self.store_at(addr, size, value, tag, ptr_tag, pc, origin, ptr_origin)
    }

    #[allow(clippy::too_many_arguments)]
    fn store_at(
        &mut self,
        addr: u64,
        size: AccessSize,
        value: u64,
        tag: Tag,
        ptr_tag: Tag,
        pc: u64,
        origin: OriginSpan,
        ptr_origin: OriginSpan,
    ) -> Result<(), Fault> {
        let n = size.bytes();
        if self.in_sim() {
            if self.dift_on && ptr_tag.is_secret() {
                self.report(
                    Channel::Cache,
                    ptr_tag,
                    pc,
                    "secret used to compose a store address",
                    ptr_origin,
                );
            }
            // Memory log: previous bytes + tags, for rollback (§6.1).
            let mut old_bytes = [0u8; 8];
            let mut old_tags = [0u8; 8];
            self.ctx
                .mem
                .read_n(addr, &mut old_bytes[..n as usize])
                .map_err(Fault::Mem)?;
            self.ctx.taint.read_tags(addr, &mut old_tags[..n as usize]);
            self.ctx.memlog.push(LogEntry {
                addr,
                len: n as u8,
                old_bytes,
                old_tags,
            });
            if self.prov_on {
                // Keep the provenance log 1:1 with the memory log.
                let mut old_lo = [0u8; 8];
                let mut old_hi = [0u8; 8];
                self.ctx.origin.read_raw(
                    addr,
                    &mut old_lo[..n as usize],
                    &mut old_hi[..n as usize],
                );
                self.ctx.provlog.push(OriginLogEntry { old_lo, old_hi });
            }
            let _ = self.pending_oob.take();
        }
        if self.stl_on {
            self.stl_record_store(addr, n);
        }
        self.ctx
            .mem
            .write_uint(addr, value, n)
            .map_err(Fault::Mem)?;
        if self.dift_on {
            self.ctx.taint.set_mem_range(addr, n, tag);
        }
        if self.prov_on {
            self.ctx.origin.set_mem_range(addr, n, origin);
            self.t_prov_bytes += n;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The interpreter
    // ------------------------------------------------------------------

    fn charge(&mut self, c: u64) {
        self.cost += c;
    }

    /// Block-slice superinstruction dispatch: when the PC lands on a
    /// precomputed fall-through run (see `Program`'s `run_len`), execute
    /// the whole slice with the fuel check, the §5.3 Real-Copy safety
    /// net and the ROB-budget check hoisted to slice entry — all three
    /// verified *conservatively over the whole run*, so per-instruction
    /// checking could not have fired mid-slice. Falls back to [`step`]
    /// whenever per-instruction precision is (or may be) required:
    /// SpecTaint emulation (per-instruction misprediction hooks and
    /// costs), forced live decoding, a disabled fast path, slices of
    /// one, or hoisted checks that cannot cover the run.
    ///
    /// [`step`]: Machine::step
    /// Routes one dispatch iteration to the selected tier. The compiled
    /// tier degrades to block-slice dispatch (and that to single-step)
    /// whenever its preconditions do not hold, so forcing a lower tier
    /// only removes fast paths — it can never change results.
    #[inline]
    /// Routes one dispatch to the active tier. `chain` lets the fast
    /// tiers keep streaming windows while the PC stays inside the same
    /// region (skipping the outer loop and the region binary search);
    /// the profiled run loop passes `false` so per-block attribution
    /// stays exact.
    fn dispatch(&mut self, regions: &[Region], heur: &mut SpecHeuristics, chain: bool) -> Step {
        match self.tier {
            DispatchTier::Compiled => self.step_compiled(regions, heur, chain),
            DispatchTier::Slice => self.step_block(regions, heur, chain),
            DispatchTier::Step => self.step(heur),
        }
    }

    fn step_block(&mut self, regions: &[Region], heur: &mut SpecHeuristics, chain: bool) -> Step {
        if self.opts.emu != EmuStyle::Native || self.uncached_decode {
            return self.step(heur);
        }
        let pc = self.cpu.pc;
        let Some((region, mut off)) = Program::region_of(regions, pc) else {
            return self.step(heur);
        };
        loop {
            let r0 = region.runs[off];
            if r0.run_len < 2 || self.cost + r0.run_cost as u64 >= self.opts.fuel {
                return self.step(heur);
            }
            if self.in_sim() {
                // Slices are F_IN_REAL-homogeneous, so one escape check
                // covers the run; the ROB window must fit it whole.
                if !self.single_copy && region.hot[off].flags & F_IN_REAL != 0 {
                    return self.step(heur);
                }
                let frame = self.ctx.checkpoints.last().expect("in_sim");
                let executed = self.prog_insts - frame.insts_at_entry;
                let budget = self.opts.config.rob_budget as u64;
                let limit = budget * frame.model.native_window_margin() as u64;
                let run_prog = if self.single_copy {
                    r0.run_len
                } else {
                    r0.run_prog
                };
                // Strict: the per-step check before the slice's last
                // instruction can see every preceding program instruction
                // retired, so the whole run must fit *below* the limit.
                if executed + run_prog as u64 >= limit {
                    return self.step(heur);
                }
            }
            let insts0 = self.insts;
            let r = self.exec_slice(region, off, r0.run_len, heur);
            self.t_slice_insts += self.insts - insts0;
            match r {
                Step::Continue => {}
                stop => return stop,
            }
            if !chain {
                return Step::Continue;
            }
            // Hot loops land the next slice in the same region: re-enter
            // the window guard directly, skipping the region search.
            let Some(o) = self.cpu.pc.checked_sub(region.start) else {
                return Step::Continue;
            };
            if o as usize >= region.runs.len() {
                return Step::Continue;
            }
            off = o as usize;
        }
    }

    /// Executes the `k`-instruction slice at `offset` of `region`
    /// without per-instruction fuel/safety-net/ROB checks (hoisted by
    /// [`Machine::step_block`]). Stops early the moment execution
    /// leaves the fall-through straight line or the simulation state
    /// the hoisted checks were computed against: a fault (rolled back
    /// or fatal), any change of PC (taken branch, `ret`, speculative
    /// redirect) or of checkpoint depth (`sim.start`/`sim.end`/model
    /// entry, rollback) — after which the outer loop re-enters with
    /// full per-step checks.
    fn exec_slice(
        &mut self,
        region: &Region,
        mut offset: usize,
        k: u8,
        heur: &mut SpecHeuristics,
    ) -> Step {
        let rstart = region.start;
        let hot = &region.hot[..];
        let depth = self.sim_depth;
        for _ in 0..k {
            let e = hot[offset];
            let pc = rstart + offset as u64;
            let next_pc = pc + e.len as u64;
            self.insts += 1;
            let is_instr = e.flags & F_INSTR != 0;
            if self.single_copy || !is_instr {
                self.prog_insts += 1;
            }
            let mut c = e.cost as u64;
            if self.single_copy && is_instr && e.flags & F_ALWAYS_CHARGE == 0 && !self.in_sim() {
                c = 0;
            }
            self.cost += c;
            self.cpu.pc = next_pc;
            if e.flags & F_NOP != 0 {
                // Pure cost marker: nothing to execute, nothing that
                // could divert control or simulation state; the
                // instruction payload is never even read.
                offset += e.len as usize;
                continue;
            }
            // Pre-dispatch the hottest opcodes through the same shared
            // helpers `exec`'s arms call — one early match instead of a
            // call into the interpreter's full opcode match. Semantics
            // are single-sourced; only the dispatch route differs.
            let r: Result<Step, Fault> = match region.insts[offset] {
                Inst::MovRR { dst, src } => {
                    self.exec_mov_rr(dst, src);
                    Ok(Step::Continue)
                }
                Inst::MovRI { dst, imm } => {
                    self.exec_mov_ri(dst, imm);
                    Ok(Step::Continue)
                }
                Inst::Load {
                    dst,
                    mem,
                    size,
                    sext,
                } => self
                    .exec_load(dst, &mem, size, sext, pc, heur)
                    .map(|_| Step::Continue),
                Inst::Store { src, mem, size } => self
                    .exec_store(src, &mem, size, pc)
                    .map(|()| Step::Continue),
                Inst::Push { src } => self.exec_push(src, pc).map(|()| Step::Continue),
                Inst::Pop { dst } => self.exec_pop(dst).map(|()| Step::Continue),
                Inst::Alu { op, dst, src } => {
                    self.exec_alu(op, dst, src, pc).map(|()| Step::Continue)
                }
                Inst::Cmp { lhs, rhs } => {
                    self.exec_cmp(lhs, rhs);
                    Ok(Step::Continue)
                }
                Inst::Jcc { cc, target } => {
                    self.exec_jcc(cc, target, pc);
                    Ok(Step::Continue)
                }
                Inst::StoreI { imm, mem, size } => self
                    .exec_storei(imm, &mem, size, pc)
                    .map(|()| Step::Continue),
                Inst::Lea { dst, mem } => {
                    self.exec_lea(dst, &mem);
                    Ok(Step::Continue)
                }
                Inst::Test { lhs, rhs } => {
                    self.exec_test(lhs, rhs);
                    Ok(Step::Continue)
                }
                Inst::Set { cc, dst } => {
                    self.exec_set(cc, dst);
                    Ok(Step::Continue)
                }
                Inst::SimCheck => {
                    self.exec_sim_check();
                    Ok(Step::Continue)
                }
                Inst::CovTrace { guard } => {
                    self.exec_cov_trace(guard);
                    Ok(Step::Continue)
                }
                Inst::CovNote { guard } => {
                    self.exec_cov_note(guard);
                    Ok(Step::Continue)
                }
                inst => self.exec(inst, pc, next_pc, heur),
            };
            match r {
                Ok(Step::Continue) => {}
                Ok(stop) => return stop,
                Err(f) => return self.fault(f),
            }
            if self.cpu.pc != next_pc || self.sim_depth != depth {
                return Step::Continue;
            }
            offset += e.len as usize;
        }
        Step::Continue
    }

    /// The compiled dispatch tier's window entry: the same hoisted
    /// fuel/safety-net/ROB reasoning as [`Machine::step_block`], but
    /// over the precomputed [`CRun`] window sums (records are
    /// F_IN_REAL-homogeneous and their conservative cost/prog totals
    /// are baked at compile time). Falls back to [`step`] whenever the
    /// hoisted checks cannot cover the window.
    ///
    /// [`CRun`]: crate::program::CRun
    /// [`step`]: Machine::step
    fn step_compiled(
        &mut self,
        regions: &[Region],
        heur: &mut SpecHeuristics,
        chain: bool,
    ) -> Step {
        if self.opts.emu != EmuStyle::Native || self.uncached_decode {
            return self.step(heur);
        }
        let pc = self.cpu.pc;
        let Some((region, mut off)) = Program::region_of(regions, pc) else {
            return self.step(heur);
        };
        loop {
            let cr = region.cruns[off];
            if cr.insts < 2 || self.cost + cr.cost as u64 >= self.opts.fuel {
                return self.step(heur);
            }
            if self.in_sim() {
                // Windows are F_IN_REAL-homogeneous, so one escape check
                // covers the run; the ROB window must fit it whole.
                if !self.single_copy && region.hot[off].flags & F_IN_REAL != 0 {
                    return self.step(heur);
                }
                let frame = self.ctx.checkpoints.last().expect("in_sim");
                let executed = self.prog_insts - frame.insts_at_entry;
                let budget = self.opts.config.rob_budget as u64;
                let limit = budget * frame.model.native_window_margin() as u64;
                // Strict: the per-step check before the window's last
                // instruction can see every preceding program instruction
                // retired, so the whole window must fit *below* the limit.
                if executed + cr.prog as u64 >= limit {
                    return self.step(heur);
                }
            }
            let insts0 = self.insts;
            let r = self.exec_compiled(region, off, cr.recs, heur);
            self.t_compiled_insts += self.insts - insts0;
            match r {
                Step::Continue => {}
                stop => return stop,
            }
            if !chain {
                return Step::Continue;
            }
            // Hot loops land the next window in the same region: re-enter
            // the window guard directly, skipping the region search.
            let Some(o) = self.cpu.pc.checked_sub(region.start) else {
                return Step::Continue;
            };
            if o as usize >= region.cruns.len() {
                return Step::Continue;
            }
            off = o as usize;
        }
    }

    /// Streams the `recs`-record compiled window at `offset` of
    /// `region`: uniform [`CompiledOp`] records with pre-resolved
    /// operands dispatched straight to the single-source exec helpers —
    /// zero per-pass decode or operand work. Exits (counted in
    /// `t_compiled_exits`) the moment execution leaves the fall-through
    /// straight line or the simulation state the hoisted checks were
    /// computed against, after which the outer loop re-enters with full
    /// per-step checks.
    ///
    /// [`CompiledOp`]: crate::program::CompiledOp
    fn exec_compiled(
        &mut self,
        region: &Region,
        mut offset: usize,
        recs: u8,
        heur: &mut SpecHeuristics,
    ) -> Step {
        let rstart = region.start;
        let ops = &region.ops[..];
        let depth = self.sim_depth;
        // Divergence exits the window before the next record, so the
        // entry depth decides sim-vs-normal cost for every record here.
        let sim = depth > 0;
        for _ in 0..recs {
            // By reference: a record is a whole cache line; the match
            // below only reads the payload of the variant it hits.
            let op = &ops[offset];
            let pc = rstart + offset as u64;
            let next_pc = pc + op.len as u64;
            self.insts += op.insts as u64;
            self.prog_insts += op.prog as u64;
            self.cost += if sim { op.cost_sim } else { op.cost_norm } as u64;
            self.cpu.pc = next_pc;
            let r: Result<Step, Fault> = match op.kind {
                OpKind::Skip => Ok(Step::Continue),
                OpKind::MovRR { dst, src } => {
                    self.exec_mov_rr(dst, src);
                    Ok(Step::Continue)
                }
                OpKind::MovRI { dst, imm } => {
                    self.exec_mov_ri(dst, imm);
                    Ok(Step::Continue)
                }
                OpKind::Load {
                    dst,
                    mem,
                    size,
                    sext,
                    stl_cont,
                    sid,
                } => {
                    let pre = StlPre::Baked {
                        cont: stl_cont,
                        sid,
                    };
                    if sim {
                        self.exec_load_at(dst, &mem, size, sext, pc, pre, heur)
                            .map(|_| Step::Continue)
                    } else {
                        self.exec_load_norm(dst, &mem, size, sext, pc, pre, heur)
                            .map(|()| Step::Continue)
                    }
                }
                OpKind::LoadChecked {
                    chk,
                    chk_size,
                    acc_off,
                    dst,
                    mem,
                    size,
                    sext,
                    stl_cont,
                    sid,
                } => {
                    let pre = StlPre::Baked {
                        cont: stl_cont,
                        sid,
                    };
                    let apc = pc + acc_off as u64;
                    if sim {
                        // Fused superinstruction: probe with the check's
                        // pc, access with its own — the same fault,
                        // report and STL ordering as the two-record slow
                        // path.
                        self.asan_probe(&chk, chk_size, pc);
                        self.exec_load_at(dst, &mem, size, sext, apc, pre, heur)
                            .map(|_| Step::Continue)
                    } else {
                        // asan_probe is a no-op outside simulation.
                        self.exec_load_norm(dst, &mem, size, sext, apc, pre, heur)
                            .map(|()| Step::Continue)
                    }
                }
                OpKind::Store { src, mem, size } => if sim {
                    self.exec_store(src, &mem, size, pc)
                } else {
                    self.exec_store_norm(src, &mem, size, pc)
                }
                .map(|()| Step::Continue),
                OpKind::StoreChecked {
                    chk,
                    chk_size,
                    acc_off,
                    src,
                    mem,
                    size,
                } => {
                    let apc = pc + acc_off as u64;
                    if sim {
                        self.asan_probe(&chk, chk_size, pc);
                        self.exec_store(src, &mem, size, apc)
                    } else {
                        self.exec_store_norm(src, &mem, size, apc)
                    }
                    .map(|()| Step::Continue)
                }
                OpKind::StoreI { imm, mem, size } => if sim {
                    self.exec_storei(imm, &mem, size, pc)
                } else {
                    self.exec_storei_norm(imm, &mem, size, pc)
                }
                .map(|()| Step::Continue),
                OpKind::Lea { dst, mem } => {
                    self.exec_lea(dst, &mem);
                    Ok(Step::Continue)
                }
                OpKind::Push { src } => if sim {
                    self.exec_push(src, pc)
                } else {
                    self.exec_push_norm(src)
                }
                .map(|()| Step::Continue),
                OpKind::Pop { dst } => self.exec_pop(dst).map(|()| Step::Continue),
                OpKind::Alu { op, dst, src } => {
                    self.exec_alu(op, dst, src, pc).map(|()| Step::Continue)
                }
                OpKind::Cmp { lhs, rhs } => {
                    self.exec_cmp(lhs, rhs);
                    Ok(Step::Continue)
                }
                OpKind::Test { lhs, rhs } => {
                    self.exec_test(lhs, rhs);
                    Ok(Step::Continue)
                }
                OpKind::Set { cc, dst } => {
                    self.exec_set(cc, dst);
                    Ok(Step::Continue)
                }
                OpKind::Jcc { cc, target } => {
                    self.exec_jcc(cc, target, pc);
                    Ok(Step::Continue)
                }
                OpKind::SimStart {
                    tramp,
                    branch_orig,
                    sid,
                } => {
                    self.exec_sim_start(
                        tramp,
                        branch_orig,
                        (sid != NO_SITE).then_some(sid),
                        pc,
                        next_pc,
                        heur,
                    );
                    Ok(Step::Continue)
                }
                OpKind::SimCheck => {
                    self.exec_sim_check();
                    Ok(Step::Continue)
                }
                OpKind::CovTrace { guard } => {
                    self.exec_cov_trace(guard);
                    Ok(Step::Continue)
                }
                OpKind::CovNote { guard } => {
                    self.exec_cov_note(guard);
                    Ok(Step::Continue)
                }
                OpKind::Other => self.exec(region.insts[offset], pc, next_pc, heur),
            };
            match r {
                Ok(Step::Continue) => {}
                Ok(stop) => return stop,
                Err(f) => {
                    self.t_compiled_exits += 1;
                    return self.fault(f);
                }
            }
            if self.cpu.pc != next_pc || self.sim_depth != depth {
                self.t_compiled_exits += 1;
                return Step::Continue;
            }
            offset += op.len as usize;
        }
        Step::Continue
    }

    fn step(&mut self, heur: &mut SpecHeuristics) -> Step {
        if self.cost >= self.opts.fuel {
            return Step::Stop(ExitStatus::OutOfFuel);
        }
        let pc = self.cpu.pc;

        // Fetch from the predecoded table (one index into an immutable,
        // Arc-shared structure built once per binary — side-effect-free,
        // so it can precede the safety-net and ROB checks). The live
        // decoder remains for addresses outside executable sections —
        // wild speculative control flow into data or the stack — and for
        // the differential-test fallback.
        let fetched = if self.uncached_decode {
            None
        } else {
            self.prog.fetch(pc)
        };

        // Safety net: speculation must never run Real Copy code without a
        // redirect (paper §5.3). Counted and rolled back — checked before
        // any decode outcome, so an undecodable Real-Copy address is an
        // escape, not an invalid-instruction fault.
        if self.in_sim() && !self.single_copy {
            let in_real = match &fetched {
                Some((_, h)) => h.flags & F_IN_REAL != 0,
                None => self.prog.meta().is_some_and(|m| m.in_real(pc)),
            };
            if in_real {
                self.escapes += 1;
                self.rollback();
                return Step::Continue;
            }
        }

        // ROB budget enforcement for emulator-style runs plus a hard
        // safety margin for instrumented runs (conditional restore points
        // normally fire first). The margin is per-model: PHT windows keep
        // the generous ×4 (their `sim.check` restore points fire first),
        // while VM-driven RSB/STL windows get a tighter leash.
        if self.in_sim() {
            let frame = self.ctx.checkpoints.last().expect("in_sim");
            let executed = self.prog_insts - frame.insts_at_entry;
            let budget = self.opts.config.rob_budget as u64;
            let limit = match self.opts.emu {
                EmuStyle::SpecTaint => budget,
                EmuStyle::Native => budget * frame.model.native_window_margin() as u64,
            };
            let model_idx = frame.model.id() as usize;
            if executed >= limit {
                self.t_rob_stops[model_idx] += 1;
                self.rollback();
                return Step::Continue;
            }
        }

        // Entries flagged F_LIVE froze only address metadata (their
        // bytes border writable pages): decode those live, like
        // addresses outside the table.
        let fetched = fetched.filter(|(_, h)| h.flags & F_LIVE == 0);
        let (inst, len, is_instr, base_cost, always_charge) = match fetched {
            Some((_, h)) if h.len == 0 => return self.fault(Fault::BadInst { pc }),
            Some((inst, h)) => (
                inst,
                h.len,
                h.flags & F_INSTR != 0,
                h.cost as u64,
                h.flags & F_ALWAYS_CHARGE != 0,
            ),
            None => match self.decode_live(pc) {
                Some(t) => t,
                None => return self.fault(Fault::BadInst { pc }),
            },
        };

        let next_pc = pc + len as u64;
        self.insts += 1;
        if self.single_copy || !is_instr {
            self.prog_insts += 1;
        }

        // SpecTaint-style emulation drives misprediction at branches
        // (PHT model; other models hook the relevant instructions in
        // `exec` for both execution styles).
        if self.opts.emu == EmuStyle::SpecTaint {
            self.charge(cost::EMU_PER_INST);
            if let Inst::Jcc { .. } = inst {
                if self.skip_sim_once {
                    self.skip_sim_once = false;
                } else if self.pht_on {
                    let depth = self.ctx.checkpoints.len() as u32;
                    let sid = self.prog.site_id_of(pc);
                    let enter = if depth == 0 {
                        heur.enter_top_at(sid, pc)
                    } else {
                        heur.enter_nested_at(
                            sid,
                            pc,
                            depth,
                            self.opts.config.max_nesting,
                            self.opts.config.full_depth_runs,
                        )
                    };
                    if enter {
                        self.charge(cost::EMU_CHECKPOINT);
                        self.push_checkpoint(pc, pc, true, SpecModel::Pht);
                        self.invert_next_branch = true;
                    }
                }
            }
        } else {
            let mut c = base_cost;
            // Single-copy (SpecFuzz-style) binaries guard every
            // instrumentation with `if (in_simulation)` (paper Listing 3):
            // in normal mode the guard (charged via its own opcode) skips
            // the instrumentation body, so the body costs nothing — but
            // the guards themselves run everywhere, which is exactly the
            // overhead Speculation Shadows eliminates.
            if self.single_copy && !self.in_sim() && is_instr && !always_charge {
                c = 0;
            }
            self.charge(c);
        }

        // Execute.
        self.cpu.pc = next_pc;
        match self.exec(inst, pc, next_pc, heur) {
            Ok(Step::Continue) => Step::Continue,
            Ok(stop) => stop,
            Err(f) => self.fault(f),
        }
    }

    /// Live fetch + decode from guest memory — the seed's lazy icache,
    /// now reached only for addresses the shared table cannot freeze.
    /// Returns `None` when the bytes at `pc` do not decode.
    ///
    /// The cache is two-tier and lives in the [`ExecContext`], so a
    /// pooled context stops rebuilding it every run: decodes whose
    /// whole fetch window is mapped read-only are retained across runs
    /// (those bytes cannot change between resets — stores fault first,
    /// and no page in the window can appear mid-run to alter
    /// truncation), everything else is valid for the current run only.
    fn decode_live(&mut self, pc: u64) -> Option<(Inst<u64>, u8, bool, u64, bool)> {
        let ctx = &mut *self.ctx;
        let hit = match ctx.icache_ro.get(&pc) {
            Some(&e) => {
                self.t_icache_ro_hits += 1;
                Some(e)
            }
            None => match ctx.icache_run.get(&pc) {
                Some(&e) => {
                    self.t_icache_run_hits += 1;
                    Some(e)
                }
                None => None,
            },
        };
        let (i, l) = match hit {
            Some((i, l)) => (i, l),
            None => {
                ctx.mem
                    .read_for_decode_into(pc, INST_MAX_LEN, &mut ctx.decode_scratch);
                match decode_at(&ctx.decode_scratch, pc) {
                    Ok((i, l)) => {
                        self.t_live_decodes += 1;
                        if ctx.mem.range_readonly(pc, INST_MAX_LEN as u64) {
                            ctx.icache_ro.insert(pc, (i, l as u8));
                        } else {
                            ctx.icache_run.insert(pc, (i, l as u8));
                        }
                        (i, l as u8)
                    }
                    Err(_) => return None,
                }
            }
        };
        let (is_instr, always_charge, cost) = crate::program::inst_meta(&i);
        Some((i, l, is_instr, cost, always_charge))
    }

    // --- Hot-arm helpers -------------------------------------------------
    // Shared, single-source bodies for the most frequent opcodes: the
    // slice dispatcher pre-dispatches these directly (skipping the call
    // into the full `exec` match), and `exec`'s arms call the very same
    // functions, so the two dispatch tiers cannot diverge.

    #[inline]
    fn exec_mov_rr(&mut self, dst: Reg, src: Reg) {
        self.cpu.set(dst, self.cpu.get(src));
        if self.dift_on {
            let t = self.ctx.taint.reg(src);
            self.ctx.taint.set_reg(dst, t);
        }
        if self.prov_on {
            let s = self.ctx.origin.reg(src);
            self.ctx.origin.set_reg(dst, s);
        }
    }

    #[inline]
    fn exec_mov_ri(&mut self, dst: Reg, imm: i64) {
        self.cpu.set(dst, imm as u64);
        if self.dift_on {
            self.ctx.taint.set_reg(dst, Tag::CLEAN);
        }
        if self.prov_on {
            self.ctx.origin.set_reg(dst, OriginSpan::NONE);
        }
    }

    #[inline]
    fn exec_load(
        &mut self,
        dst: Reg,
        mem: &MemRef,
        size: AccessSize,
        sext: bool,
        pc: u64,
        heur: &mut SpecHeuristics,
    ) -> Result<bool, Fault> {
        self.exec_load_at(dst, mem, size, sext, pc, StlPre::Runtime, heur)
    }

    /// [`Machine::exec_load`] with the STL-bypass prerequisites supplied
    /// by the caller — the compiled tier passes the values baked into
    /// the load's record.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn exec_load_at(
        &mut self,
        dst: Reg,
        mem: &MemRef,
        size: AccessSize,
        sext: bool,
        pc: u64,
        pre: StlPre,
        heur: &mut SpecHeuristics,
    ) -> Result<bool, Fault> {
        if self.stl_on && self.try_stl_bypass(dst, mem, size, sext, pc, pre, heur) {
            // Store-to-load bypass entered: the stale pre-store value
            // was forwarded into `dst` and a checkpoint resumes at this
            // load after the squash.
            return Ok(true);
        }
        let (v, t, o) = self.do_load(mem, size, sext, pc)?;
        self.cpu.set(dst, v);
        if self.dift_on {
            self.ctx.taint.set_reg(dst, t);
        }
        if self.prov_on {
            self.ctx.origin.set_reg(dst, o);
        }
        Ok(false)
    }

    /// Slim load template for compiled windows entered *outside*
    /// simulation: every `do_load` branch that is conditional on
    /// `in_sim()` is statically dead there (a window exits before the
    /// record after any depth change), so this inlines the remaining
    /// straight line — STL probe, EA, slab read, sign-extend, tag fold,
    /// register writeback — with no policy or witness tests. Observably
    /// identical to [`Machine::exec_load_at`] out of simulation.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn exec_load_norm(
        &mut self,
        dst: Reg,
        mem: &MemRef,
        size: AccessSize,
        sext: bool,
        pc: u64,
        pre: StlPre,
        heur: &mut SpecHeuristics,
    ) -> Result<(), Fault> {
        if self.stl_on && self.try_stl_bypass(dst, mem, size, sext, pc, pre, heur) {
            return Ok(());
        }
        let addr = self.ea(mem);
        let n = size.bytes();
        let raw = self.ctx.mem.read_uint(addr, n).map_err(Fault::Mem)?;
        let value = apply_sext(raw, size, sext);
        self.pending_oob = None;
        self.cpu.set(dst, value);
        if self.dift_on {
            let t = self.ctx.taint.mem_range_tag(addr, n);
            self.ctx.taint.set_reg(dst, t);
        }
        Ok(())
    }

    /// Slim store template for compiled windows entered outside
    /// simulation — the memory-log capture and address-tag policy of
    /// [`Machine::store_at`] are statically dead there. Observably
    /// identical to [`Machine::exec_store`] out of simulation.
    #[inline(always)]
    fn exec_store_norm(
        &mut self,
        src: Reg,
        mem: &MemRef,
        size: AccessSize,
        _pc: u64,
    ) -> Result<(), Fault> {
        let addr = self.ea(mem);
        let n = size.bytes();
        if self.stl_on {
            self.stl_record_store(addr, n);
        }
        self.ctx
            .mem
            .write_uint(addr, self.cpu.get(src), n)
            .map_err(Fault::Mem)?;
        if self.dift_on {
            let tag = self.ctx.taint.reg(src);
            self.ctx.taint.set_mem_range(addr, n, tag);
        }
        Ok(())
    }

    /// [`Machine::exec_store_norm`] with an immediate payload
    /// (observably identical to [`Machine::exec_storei`] out of
    /// simulation: an immediate stores `Tag::CLEAN`).
    #[inline(always)]
    fn exec_storei_norm(
        &mut self,
        imm: i32,
        mem: &MemRef,
        size: AccessSize,
        _pc: u64,
    ) -> Result<(), Fault> {
        let addr = self.ea(mem);
        let n = size.bytes();
        if self.stl_on {
            self.stl_record_store(addr, n);
        }
        self.ctx
            .mem
            .write_uint(addr, imm as i64 as u64, n)
            .map_err(Fault::Mem)?;
        if self.dift_on {
            self.ctx.taint.set_mem_range(addr, n, Tag::CLEAN);
        }
        Ok(())
    }

    #[inline]
    fn exec_store(
        &mut self,
        src: Reg,
        mem: &MemRef,
        size: AccessSize,
        pc: u64,
    ) -> Result<(), Fault> {
        let tag = if self.dift_on {
            self.ctx.taint.reg(src)
        } else {
            Tag::CLEAN
        };
        let origin = if self.prov_on {
            self.ctx.origin.reg(src)
        } else {
            OriginSpan::NONE
        };
        self.do_store(mem, size, self.cpu.get(src), tag, origin, pc)
    }

    #[inline]
    fn exec_push(&mut self, src: Reg, pc: u64) -> Result<(), Fault> {
        let sp = self.cpu.get(Reg::SP).wrapping_sub(8);
        let tag = if self.dift_on {
            self.ctx.taint.reg(src)
        } else {
            Tag::CLEAN
        };
        let origin = if self.prov_on {
            self.ctx.origin.reg(src)
        } else {
            OriginSpan::NONE
        };
        self.store_at(
            sp,
            AccessSize::B8,
            self.cpu.get(src),
            tag,
            Tag::CLEAN,
            pc,
            origin,
            OriginSpan::NONE,
        )?;
        self.cpu.set(Reg::SP, sp);
        Ok(())
    }

    /// Slim push template for compiled windows entered outside
    /// simulation (the memory-log branch of [`Machine::store_at`] is
    /// statically dead there). Observably identical to
    /// [`Machine::exec_push`] out of simulation.
    #[inline(always)]
    fn exec_push_norm(&mut self, src: Reg) -> Result<(), Fault> {
        let sp = self.cpu.get(Reg::SP).wrapping_sub(8);
        if self.stl_on {
            self.stl_record_store(sp, 8);
        }
        self.ctx
            .mem
            .write_uint(sp, self.cpu.get(src), 8)
            .map_err(Fault::Mem)?;
        if self.dift_on {
            let tag = self.ctx.taint.reg(src);
            self.ctx.taint.set_mem_range(sp, 8, tag);
        }
        self.cpu.set(Reg::SP, sp);
        Ok(())
    }

    #[inline]
    fn exec_pop(&mut self, dst: Reg) -> Result<(), Fault> {
        let sp = self.cpu.get(Reg::SP);
        let v = self.ctx.mem.read_uint(sp, 8).map_err(Fault::Mem)?;
        if self.dift_on {
            let t = self.ctx.taint.mem_range_tag(sp, 8);
            self.ctx.taint.set_reg(dst, t);
        }
        if self.prov_on {
            self.t_prov_folds += 1;
            let o = self.ctx.origin.mem_range(sp, 8);
            self.ctx.origin.set_reg(dst, o);
        }
        self.cpu.set(dst, v);
        self.cpu.set(Reg::SP, sp.wrapping_add(8));
        Ok(())
    }

    #[inline]
    fn exec_alu(&mut self, op: AluOp, dst: Reg, src: Operand, pc: u64) -> Result<(), Fault> {
        let a = self.cpu.get(dst);
        let b = self.operand(&src);
        let r = alu(op, a, b);
        if r.div_by_zero {
            return Err(Fault::DivByZero { pc });
        }
        self.cpu.set(dst, r.value);
        self.cpu.flags = r.flags;
        if self.dift_on {
            // x86 zeroing idioms break the dependency.
            let zeroing = matches!(op, AluOp::Xor | AluOp::Sub) && src == Operand::Reg(dst);
            let t = if zeroing {
                Tag::CLEAN
            } else {
                self.ctx.taint.reg(dst) | self.operand_tag(&src)
            };
            self.ctx.taint.set_reg(dst, t);
            self.ctx.taint.flags = t;
            if self.prov_on {
                let s = if zeroing {
                    OriginSpan::NONE
                } else {
                    self.ctx.origin.reg(dst).join(self.operand_origin(&src))
                };
                self.ctx.origin.set_reg(dst, s);
                self.ctx.origin.flags = s;
            }
        }
        Ok(())
    }

    #[inline]
    fn exec_cmp(&mut self, lhs: Reg, rhs: Operand) {
        self.cpu.flags = cmp_flags(self.cpu.get(lhs), self.operand(&rhs));
        if self.dift_on {
            self.ctx.taint.flags = self.ctx.taint.reg(lhs) | self.operand_tag(&rhs);
            if self.prov_on {
                self.ctx.origin.flags = self.ctx.origin.reg(lhs).join(self.operand_origin(&rhs));
            }
        }
    }

    #[inline]
    fn exec_jcc(&mut self, cc: teapot_isa::Cc, target: u64, pc: u64) {
        // Port-contention sink: a secret deciding a branch (§6.2.2).
        if self.in_sim()
            && self.dift_on
            && self.policy == Policy::Kasper
            && self.ctx.taint.flags.is_secret()
        {
            let t = self.ctx.taint.flags;
            let o = self.ctx.origin.flags;
            self.report(
                Channel::Port,
                t,
                pc,
                "secret influences a conditional branch",
                o,
            );
        }
        let mut taken = self.cpu.flags.eval(cc);
        if self.invert_next_branch {
            taken = !taken;
            self.invert_next_branch = false;
        }
        if taken {
            self.cpu.pc = target;
        }
    }

    #[inline]
    fn exec_storei(
        &mut self,
        imm: i32,
        mem: &MemRef,
        size: AccessSize,
        pc: u64,
    ) -> Result<(), Fault> {
        self.do_store(
            mem,
            size,
            imm as i64 as u64,
            Tag::CLEAN,
            OriginSpan::NONE,
            pc,
        )
    }

    #[inline]
    fn exec_lea(&mut self, dst: Reg, mem: &MemRef) {
        let a = self.ea(mem);
        self.cpu.set(dst, a);
        if self.dift_on {
            let t = self.ea_tag(mem);
            self.ctx.taint.set_reg(dst, t);
        }
        if self.prov_on {
            let s = self.ea_origin(mem);
            self.ctx.origin.set_reg(dst, s);
        }
    }

    #[inline]
    fn exec_test(&mut self, lhs: Reg, rhs: Operand) {
        self.cpu.flags = test_flags(self.cpu.get(lhs), self.operand(&rhs));
        if self.dift_on {
            self.ctx.taint.flags = self.ctx.taint.reg(lhs) | self.operand_tag(&rhs);
            if self.prov_on {
                self.ctx.origin.flags = self.ctx.origin.reg(lhs).join(self.operand_origin(&rhs));
            }
        }
    }

    #[inline]
    fn exec_set(&mut self, cc: teapot_isa::Cc, dst: Reg) {
        let v = self.cpu.flags.eval(cc) as u64;
        self.cpu.set(dst, v);
        if self.dift_on {
            let t = self.ctx.taint.flags;
            self.ctx.taint.set_reg(dst, t);
        }
        if self.prov_on {
            let s = self.ctx.origin.flags;
            self.ctx.origin.set_reg(dst, s);
        }
    }

    #[inline]
    fn exec_sim_check(&mut self) {
        if self.in_sim() {
            let frame = self.ctx.checkpoints.last().expect("in_sim");
            let executed = self.prog_insts - frame.insts_at_entry;
            if executed >= self.opts.config.rob_budget as u64 {
                self.rollback();
            }
        }
    }

    #[inline]
    fn exec_cov_trace(&mut self, guard: u32) {
        if self.in_sim() {
            self.ctx.cov_spec.hit(guard);
        } else {
            self.ctx.cov_normal.hit(guard);
        }
    }

    #[inline]
    fn exec_cov_note(&mut self, guard: u32) {
        if self.in_sim() {
            self.ctx.covnotes.push(guard);
        } else {
            self.ctx.cov_normal.hit(guard);
        }
    }

    /// `sim.start` body: the PHT speculation gate and checkpoint entry.
    /// `branch_orig` and `sid` are pure functions of the instruction's
    /// address, so the interpreter resolves them per execution while the
    /// compiled tier hands in the values baked into the record.
    #[inline]
    fn exec_sim_start(
        &mut self,
        tramp: u64,
        branch_orig: u64,
        sid: Option<u32>,
        pc: u64,
        next_pc: u64,
        heur: &mut SpecHeuristics,
    ) {
        let depth = self.ctx.checkpoints.len() as u32;
        let enter = if !self.pht_on {
            // Conditional-branch misprediction is not part of the
            // active model set: the instrumentation stays inert.
            false
        } else if depth == 0 {
            heur.enter_top_at(sid, branch_orig)
        } else if self.nested_on {
            heur.enter_nested_at(
                sid,
                branch_orig,
                depth,
                self.opts.config.max_nesting,
                self.opts.config.full_depth_runs,
            )
        } else {
            false
        };
        if self.trace {
            eprintln!(
                "[trace] sim.start at {pc:#x} (orig {branch_orig:#x}) depth {depth} -> {}",
                if enter { "ENTER" } else { "skip" }
            );
        }
        if enter {
            self.push_checkpoint(next_pc, branch_orig, false, SpecModel::Pht);
            self.cpu.pc = tramp;
        }
    }

    /// `asan.check` body: the shadow probe whose verdict the next
    /// guarded access consumes. The verdict is only consumed during
    /// simulation; outside it the probe is a pure read with no
    /// observer — skip.
    #[inline]
    fn asan_probe(&mut self, mem: &MemRef, size: AccessSize, pc: u64) {
        if self.in_sim() {
            let addr = self.ea(mem);
            let n = size.bytes();
            let oob = self.ctx.asan.is_poisoned(addr, n) || !self.ctx.mem.is_mapped(addr, n);
            if self.trace && oob {
                eprintln!(
                    "[trace] asan OOB at {pc:#x} addr {addr:#x} depth {}",
                    self.ctx.checkpoints.len()
                );
            }
            self.pending_oob = Some(PendingOob { oob });
            if oob && self.policy == Policy::SpecFuzz {
                self.report_specfuzz(pc);
            }
        }
    }

    fn exec(
        &mut self,
        inst: Inst<u64>,
        pc: u64,
        next_pc: u64,
        heur: &mut SpecHeuristics,
    ) -> Result<Step, Fault> {
        match inst {
            Inst::Nop | Inst::MarkerNop => {}
            Inst::Halt => return Ok(Step::Stop(ExitStatus::Halt)),
            Inst::MovRR { dst, src } => self.exec_mov_rr(dst, src),
            Inst::MovRI { dst, imm } => self.exec_mov_ri(dst, imm),
            Inst::Load {
                dst,
                mem,
                size,
                sext,
            } => {
                if self.exec_load(dst, &mem, size, sext, pc, heur)? {
                    return Ok(Step::Continue);
                }
            }
            Inst::Store { src, mem, size } => self.exec_store(src, &mem, size, pc)?,
            Inst::StoreI { imm, mem, size } => self.exec_storei(imm, &mem, size, pc)?,
            Inst::Lea { dst, mem } => self.exec_lea(dst, &mem),
            Inst::Push { src } => self.exec_push(src, pc)?,
            Inst::Pop { dst } => self.exec_pop(dst)?,
            Inst::Alu { op, dst, src } => self.exec_alu(op, dst, src, pc)?,
            Inst::Neg { dst } => {
                let a = self.cpu.get(dst);
                let (r, cf, of) = crate::cpu::sub_flags(0, a);
                self.cpu.set(dst, r);
                self.cpu.flags = Flags {
                    zf: r == 0,
                    sf: (r as i64) < 0,
                    cf,
                    of,
                };
                if self.dift_on {
                    self.ctx.taint.flags = self.ctx.taint.reg(dst);
                }
                if self.prov_on {
                    self.ctx.origin.flags = self.ctx.origin.reg(dst);
                }
            }
            Inst::Not { dst } => {
                let v = !self.cpu.get(dst);
                self.cpu.set(dst, v);
            }
            Inst::Cmp { lhs, rhs } => self.exec_cmp(lhs, rhs),
            Inst::Test { lhs, rhs } => self.exec_test(lhs, rhs),
            Inst::Set { cc, dst } => self.exec_set(cc, dst),
            Inst::Cmov { cc, dst, src } => {
                // cmov is NOT speculated (paper Appendix A.1): it executes
                // architecturally in both modes with no misprediction hook.
                if self.cpu.flags.eval(cc) {
                    self.cpu.set(dst, self.cpu.get(src));
                    if self.dift_on {
                        let t = self.ctx.taint.reg(src) | self.ctx.taint.flags;
                        self.ctx.taint.set_reg(dst, t);
                    }
                    if self.prov_on {
                        let s = self.ctx.origin.reg(src).join(self.ctx.origin.flags);
                        self.ctx.origin.set_reg(dst, s);
                    }
                }
            }
            Inst::Jmp { target } => self.cpu.pc = target,
            Inst::Jcc { cc, target } => self.exec_jcc(cc, target, pc),
            Inst::Call { target } => {
                let sp = self.cpu.get(Reg::SP).wrapping_sub(8);
                self.store_at(
                    sp,
                    AccessSize::B8,
                    next_pc,
                    Tag::CLEAN,
                    Tag::CLEAN,
                    pc,
                    OriginSpan::NONE,
                    OriginSpan::NONE,
                )?;
                self.cpu.set(Reg::SP, sp);
                if self.asan_on && !self.in_sim() {
                    self.ctx.asan.poison_ret_slot(sp);
                }
                self.cpu.pc = target;
                if self.rsb_on {
                    self.rsb_push(next_pc);
                }
            }
            Inst::CallInd { target } => {
                let t = self.cpu.get(target);
                let sp = self.cpu.get(Reg::SP).wrapping_sub(8);
                self.store_at(
                    sp,
                    AccessSize::B8,
                    next_pc,
                    Tag::CLEAN,
                    Tag::CLEAN,
                    pc,
                    OriginSpan::NONE,
                    OriginSpan::NONE,
                )?;
                self.cpu.set(Reg::SP, sp);
                if self.asan_on && !self.in_sim() {
                    self.ctx.asan.poison_ret_slot(sp);
                }
                self.cpu.pc = t;
                if self.rsb_on {
                    self.rsb_push(next_pc);
                }
            }
            Inst::JmpInd { target } => {
                self.cpu.pc = self.cpu.get(target);
            }
            Inst::Ret => {
                let sp = self.cpu.get(Reg::SP);
                let t = self.ctx.mem.read_uint(sp, 8).map_err(Fault::Mem)?;
                if self.asan_on && !self.in_sim() {
                    self.ctx.asan.unpoison_ret_slot(sp);
                }
                self.cpu.set(Reg::SP, sp.wrapping_add(8));
                self.cpu.pc = t;
                if self.rsb_on {
                    self.rsb.pop();
                    self.maybe_mispredict_return(pc, t, heur);
                }
            }
            Inst::Syscall { num } => {
                if self.in_sim() {
                    // External calls cannot be recovered: unconditional
                    // restore (paper §6.1). The rewriter inserts `sim.end`
                    // before these; this is the safety net.
                    self.rollback();
                    return Ok(Step::Continue);
                }
                return self.syscall(num);
            }
            Inst::Lfence | Inst::Cpuid => {
                // Serializing: speculation cannot pass (paper §6.1).
                if self.in_sim() {
                    self.rollback();
                    return Ok(Step::Continue);
                }
            }

            // ----------------------------------------------------------
            // Instrumentation
            // ----------------------------------------------------------
            Inst::SimStart { tramp } => {
                let branch_orig = self.orig_pc(pc);
                let sid = self.prog.site_id_of(pc);
                self.exec_sim_start(tramp, branch_orig, sid, pc, next_pc, heur);
            }
            Inst::SimCheck => self.exec_sim_check(),
            Inst::SimEnd => {
                if self.in_sim() {
                    self.rollback();
                }
            }
            Inst::AsanCheck {
                mem,
                size,
                is_write: _,
            } => self.asan_probe(&mem, size, pc),
            Inst::MemLog { .. } => {
                // Cost marker: semantic logging happens on the store
                // itself (DESIGN.md §3, "Semantic note").
            }
            Inst::TagProp | Inst::TagBlockProp { .. } => {
                // Cost markers: the taint engine is always precise.
            }
            Inst::IndCheck { kind } => {
                if self.in_sim() && !self.single_copy {
                    return self.ind_check(kind, pc);
                }
            }
            Inst::CovTrace { guard } => self.exec_cov_trace(guard),
            Inst::CovNote { guard } => self.exec_cov_note(guard),
            Inst::Guard => {
                // The `if (in_simulation)` conditional of single-copy
                // instrumentation (paper Listing 3): pure overhead.
            }
        }
        Ok(Step::Continue)
    }

    /// Indirect-branch integrity check (paper §5.3, Listing 4).
    fn ind_check(&mut self, kind: IndKind, _pc: u64) -> Result<Step, Fault> {
        let target = match kind {
            IndKind::Ret => self
                .ctx
                .mem
                .read_uint(self.cpu.get(Reg::SP), 8)
                .map_err(Fault::Mem)?,
            IndKind::Call(r) | IndKind::Jmp(r) => self.cpu.get(r),
        };
        let meta = self.prog.meta().expect("ind.check requires metadata");
        if meta.in_shadow(target) {
            return Ok(Step::Continue);
        }
        let redirect = if meta.in_real(target) {
            // Probe for the special marker NOP at the target block (one
            // byte, no temporary buffer; an unmapped byte is no marker).
            let marked = match self.ctx.mem.read_u8(target) {
                Ok(b) => matches!(decode_at(&[b], target), Ok((Inst::MarkerNop, _))),
                Err(_) => false,
            };
            if marked {
                meta.shadow_of(target)
            } else {
                None
            }
        } else {
            None
        };
        match redirect {
            Some(shadow_target) => {
                // Redirect the pointer itself; register/memory effects are
                // undone at rollback.
                match kind {
                    IndKind::Ret => {
                        let sp = self.cpu.get(Reg::SP);
                        self.store_at(
                            sp,
                            AccessSize::B8,
                            shadow_target,
                            Tag::CLEAN,
                            Tag::CLEAN,
                            _pc,
                            OriginSpan::NONE,
                            OriginSpan::NONE,
                        )?;
                    }
                    IndKind::Call(r) | IndKind::Jmp(r) => {
                        self.cpu.set(r, shadow_target);
                    }
                }
                Ok(Step::Continue)
            }
            None => {
                // Unidentified target: forced rollback (paper §5.3).
                self.rollback();
                Ok(Step::Continue)
            }
        }
    }

    fn syscall(&mut self, num: u16) -> Result<Step, Fault> {
        match num {
            sys::EXIT => return Ok(Step::Stop(ExitStatus::Exit(self.cpu.get(Reg::R1) as i64))),
            sys::READ_INPUT => {
                let buf = self.cpu.get(Reg::R1);
                let len = self.cpu.get(Reg::R2) as usize;
                let avail = self.opts.input.len().saturating_sub(self.input_pos);
                let n = len.min(avail);
                {
                    let ctx = &mut *self.ctx;
                    ctx.mem
                        .write_n(buf, &self.opts.input[self.input_pos..self.input_pos + n])
                        .map_err(Fault::Mem)?;
                }
                if self.dift_on && self.opts.config.taint_input_sources && n > 0 {
                    self.ctx.taint.set_mem_range(buf, n as u64, Tag::USER);
                    if self.prov_on {
                        // Provenance ground truth: guest byte `buf + i`
                        // originates from input offset `input_pos + i`.
                        self.ctx
                            .origin
                            .set_input_range(buf, n as u64, self.input_pos);
                        self.t_prov_bytes += n as u64;
                    }
                }
                self.input_pos += n;
                self.cpu.set(Reg::R0, n as u64);
                if self.dift_on {
                    self.ctx.taint.set_reg(Reg::R0, Tag::CLEAN);
                }
                if self.prov_on {
                    self.ctx.origin.set_reg(Reg::R0, OriginSpan::NONE);
                }
            }
            sys::INPUT_SIZE => {
                self.cpu.set(Reg::R0, self.opts.input.len() as u64);
            }
            sys::WRITE => {
                let buf = self.cpu.get(Reg::R1);
                let len = self.cpu.get(Reg::R2);
                {
                    let ctx = &mut *self.ctx;
                    ctx.mem
                        .read_append(buf, len, &mut ctx.output)
                        .map_err(Fault::Mem)?;
                }
                self.cpu.set(Reg::R0, len);
            }
            sys::MALLOC => {
                let size = self.cpu.get(Reg::R1);
                let (base, map_start, map_len) = self.ctx.asan.malloc(size);
                self.ctx.mem.map_region(map_start, map_len, true);
                // Fill the redzones with ASan's classic 0xfa pattern:
                // speculative out-of-bounds reads observe non-zero
                // "heap garbage", as they would in a real process.
                self.ctx.mem.poke_fill(map_start, base - map_start, 0xfa);
                let tail = base + size.max(1);
                self.ctx
                    .mem
                    .poke_fill(tail, map_start + map_len - tail, 0xfa);
                self.cpu.set(Reg::R0, base);
                if self.dift_on {
                    self.ctx.taint.set_reg(Reg::R0, Tag::CLEAN);
                }
                if self.prov_on {
                    self.ctx.origin.set_reg(Reg::R0, OriginSpan::NONE);
                }
            }
            sys::FREE => {
                let base = self.cpu.get(Reg::R1);
                self.ctx.asan.free(base);
            }
            sys::PRINT_INT => {
                let v = self.cpu.get(Reg::R1) as i64;
                self.ctx
                    .output
                    .extend_from_slice(format!("{v}\n").as_bytes());
            }
            sys::ABORT => return Ok(Step::Stop(ExitStatus::Abort)),
            sys::MARK_USER => {
                let buf = self.cpu.get(Reg::R1);
                let len = self.cpu.get(Reg::R2);
                if self.dift_on {
                    // No origin-shadow write: `mark_user` taint is not
                    // input-derived, so it contributes no input-byte
                    // provenance (see the taint-module header).
                    self.ctx.taint.union_mem_range(buf, len, Tag::USER);
                }
            }
            _ => return Ok(Step::Stop(ExitStatus::Abort)),
        }
        Ok(Step::Continue)
    }
}
