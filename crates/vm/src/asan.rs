//! Binary ASan: shadow poisoning and the redzone heap allocator
//! (paper §6.2.1).
//!
//! * **Heap** — `malloc` is hooked (it is an external-library service):
//!   every allocation gets left/right redzones whose shadow is poisoned;
//!   `free` poisons the body and quarantines the chunk (no reuse), so
//!   use-after-free accesses stay poisoned.
//! * **Stack** — protected at stack-frame granularity: the return-address
//!   slot's shadow is poisoned on `call` and unpoisoned on `ret`.
//! * **Globals** — left unprotected, reproducing the paper's documented
//!   limitation ("protecting global objects with binary rewriting is
//!   impractical").
//!
//! The shadow is byte-granular here (one shadow bit of state per data
//! byte, stored as a whole byte) rather than ASan's packed 1:8 encoding;
//! `teapot-rt::layout` defines and tests the paper's 1:8 address mapping,
//! which the cost model's `asan.check` weight reflects.
//!
//! Shadow storage is a [`ShadowMem`](crate::slab) (region-table + TLB
//! page slab, shared with the DIFT shadow), and [`AsanEngine::is_poisoned`]
//! scans page-bounded chunks instead of probing a map per byte. The two
//! poison-region boundaries ([`HEAP_BASE`](teapot_rt::layout::HEAP_BASE)
//! and [`INPUT_STAGING`](teapot_rt::layout::INPUT_STAGING)) are
//! page-aligned, so a chunk never straddles a poison-default change.

use crate::slab::ShadowMem;
use teapot_rt::FxHashMap;

/// Redzone size on each side of a heap allocation.
pub const REDZONE: u64 = 16;

/// Poison classes (diagnostic only; any poison byte is a violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poison {
    /// Explicitly addressable.
    None,
    /// Heap left/right redzone.
    HeapRedzone,
    /// Freed heap memory.
    HeapFreed,
    /// Return-address slot.
    RetSlot,
}

impl Poison {
    fn to_byte(self) -> u8 {
        match self {
            Poison::None => 1, // explicitly addressable
            Poison::HeapRedzone => 0xfa,
            Poison::HeapFreed => 0xfd,
            Poison::RetSlot => 0xf5,
        }
    }
}

/// The ASan engine: poison shadow + heap allocator state.
#[derive(Clone)]
pub struct AsanEngine {
    shadow: ShadowMem,
    next_chunk: u64,
    /// Live allocations: base → size.
    live: FxHashMap<u64, u64>,
    /// Quarantined (freed) allocations: base → size.
    quarantine: FxHashMap<u64, u64>,
}

impl std::fmt::Debug for AsanEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsanEngine")
            .field("live", &self.live.len())
            .field("quarantined", &self.quarantine.len())
            .finish()
    }
}

impl Default for AsanEngine {
    fn default() -> Self {
        AsanEngine::new()
    }
}

impl AsanEngine {
    /// Creates an engine with an empty heap starting at the layout's heap
    /// base (paper Table 2 HighMem).
    pub fn new() -> AsanEngine {
        AsanEngine {
            shadow: ShadowMem::default(),
            next_chunk: teapot_rt::layout::HEAP_BASE,
            live: FxHashMap::default(),
            quarantine: FxHashMap::default(),
        }
    }

    /// Makes the engine observably identical to a fresh one while
    /// keeping the shadow-page allocations for reuse across runs: shadow
    /// pages are zeroed (a zeroed page reads exactly like an absent
    /// one), the allocator bump pointer rewinds to the heap base, and
    /// the live/quarantine books are cleared.
    pub fn reset(&mut self) {
        self.shadow.reset();
        self.next_chunk = teapot_rt::layout::HEAP_BASE;
        self.live.clear();
        self.quarantine.clear();
    }

    /// Telemetry snapshot of the poison shadow's slab:
    /// `(tlb_hits, tlb_misses, pages_allocated)`.
    pub(crate) fn telemetry_counts(&self) -> (u64, u64, u64) {
        self.shadow.telemetry_counts()
    }

    fn set_shadow(&mut self, addr: u64, len: u64, p: Poison) {
        self.shadow.fill(addr, len, p.to_byte());
    }

    /// Whether any byte of `[addr, addr+len)` is poisoned.
    ///
    /// The heap arena defaults to *poisoned* (only bytes `malloc` marked
    /// addressable are legal — like real ASan's shadow for the allocator
    /// region); everywhere else defaults to addressable, with explicit
    /// poison for redzones, freed chunks and return-address slots. In
    /// particular **global objects are unprotected**, reproducing the
    /// paper's documented limitation (§6.2.1, §7.3).
    pub fn is_poisoned(&self, addr: u64, len: u64) -> bool {
        use teapot_rt::layout::{HEAP_BASE, INPUT_STAGING};
        let mut a = addr;
        let mut rem = len;
        while rem > 0 {
            // Both region boundaries are page-aligned, so a page-bounded
            // chunk has one poison default throughout.
            let in_heap = (HEAP_BASE..INPUT_STAGING).contains(&a);
            let (chunk, slice) = self.shadow.chunk_at(a, rem);
            match slice {
                Some(s) if in_heap && s.iter().any(|&b| b != 1) => return true,
                Some(s) if !in_heap && s.iter().any(|&b| b >= 0xf0) => return true,
                Some(_) => {}
                // Absent shadow reads 0: poisoned inside the heap arena,
                // addressable everywhere else.
                None if in_heap => return true,
                None => {}
            }
            a = a.wrapping_add(chunk as u64);
            rem -= chunk as u64;
        }
        false
    }

    /// Poisons the return-address slot at `sp` (on `call`).
    pub fn poison_ret_slot(&mut self, sp: u64) {
        self.set_shadow(sp, 8, Poison::RetSlot);
    }

    /// Unpoisons the return-address slot at `sp` (on `ret`).
    pub fn unpoison_ret_slot(&mut self, sp: u64) {
        self.set_shadow(sp, 8, Poison::None);
    }

    /// Allocates `size` bytes with poisoned redzones. Returns the base of
    /// the user region and the range to map `(map_start, map_len)`.
    pub fn malloc(&mut self, size: u64) -> (u64, u64, u64) {
        let size = size.max(1);
        let aligned = (size + 15) & !15;
        let map_start = self.next_chunk;
        let base = map_start + REDZONE;
        let map_len = REDZONE + aligned + REDZONE;
        self.next_chunk += map_len + 32; // gap between chunks
        self.set_shadow(map_start, REDZONE, Poison::HeapRedzone);
        self.set_shadow(base, size, Poison::None);
        // Poison the alignment slack too: accesses past `size` are OOB.
        self.set_shadow(base + size, aligned - size + REDZONE, Poison::HeapRedzone);
        self.live.insert(base, size);
        (base, map_start, map_len)
    }

    /// Frees an allocation: poisons the body and quarantines the chunk.
    /// Unknown pointers are ignored (like a tolerant allocator; invalid
    /// frees are out of the threat model).
    pub fn free(&mut self, base: u64) {
        if let Some(size) = self.live.remove(&base) {
            self.set_shadow(base, size, Poison::HeapFreed);
            self.quarantine.insert(base, size);
        }
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_bodies_are_clean_redzones_poisoned() {
        let mut a = AsanEngine::new();
        let (base, map_start, map_len) = a.malloc(24);
        assert_eq!(base, map_start + REDZONE);
        assert!(map_len >= 24 + 2 * REDZONE);
        assert!(!a.is_poisoned(base, 24));
        assert!(a.is_poisoned(base - 1, 1)); // left redzone
        assert!(a.is_poisoned(base + 24, 1)); // right redzone
        assert!(a.is_poisoned(base - REDZONE, REDZONE));
    }

    #[test]
    fn alignment_slack_is_poisoned() {
        let mut a = AsanEngine::new();
        let (base, _, _) = a.malloc(10);
        assert!(!a.is_poisoned(base, 10));
        assert!(a.is_poisoned(base + 10, 1));
    }

    #[test]
    fn freed_memory_stays_poisoned() {
        let mut a = AsanEngine::new();
        let (base, _, _) = a.malloc(32);
        a.free(base);
        assert!(a.is_poisoned(base, 1));
        assert!(a.is_poisoned(base + 31, 1));
        assert_eq!(a.live_count(), 0);
        // Quarantine: a new allocation never reuses the freed range.
        let (base2, _, _) = a.malloc(32);
        assert_ne!(base, base2);
        assert!(base2 > base);
    }

    #[test]
    fn double_free_is_tolerated() {
        let mut a = AsanEngine::new();
        let (base, _, _) = a.malloc(8);
        a.free(base);
        a.free(base); // no panic
        a.free(0xdead_beef); // unknown pointer ignored
    }

    #[test]
    fn ret_slot_poisoning_round_trip() {
        let mut a = AsanEngine::new();
        let sp = 0x7ffd_0000;
        a.poison_ret_slot(sp);
        assert!(a.is_poisoned(sp, 8));
        assert!(a.is_poisoned(sp + 7, 1));
        assert!(!a.is_poisoned(sp + 8, 1));
        a.unpoison_ret_slot(sp);
        assert!(!a.is_poisoned(sp, 8));
    }

    #[test]
    fn heap_arena_defaults_to_poisoned_across_chunk_boundaries() {
        use teapot_rt::layout::{HEAP_BASE, INPUT_STAGING};
        let a = AsanEngine::new();
        // Absent shadow: poisoned inside the arena, addressable outside.
        assert!(a.is_poisoned(HEAP_BASE, 1));
        assert!(a.is_poisoned(HEAP_BASE + 123_456, 64));
        assert!(!a.is_poisoned(INPUT_STAGING, 64));
        assert!(!a.is_poisoned(0x1000, 64));
        // A range crossing into the arena trips on the arena part.
        assert!(a.is_poisoned(HEAP_BASE - 32, 64));
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let mut a = AsanEngine::new();
        let (base, _, _) = a.malloc(24);
        a.free(base);
        a.poison_ret_slot(0x7ffd_0000);
        a.reset();
        assert_eq!(a.live_count(), 0);
        assert!(!a.is_poisoned(0x7ffd_0000, 8));
        // Allocation addresses restart from the heap base, exactly as on
        // a fresh engine.
        let fresh_base = AsanEngine::new().malloc(24).0;
        assert_eq!(a.malloc(24).0, fresh_base);
    }

    #[test]
    fn chunks_do_not_overlap() {
        let mut a = AsanEngine::new();
        let mut prev_end = 0;
        for _ in 0..100 {
            let (base, map_start, map_len) = a.malloc(40);
            assert!(map_start >= prev_end);
            assert!(base + 40 <= map_start + map_len);
            prev_end = map_start + map_len;
        }
    }
}
