//! The dynamic information flow tracking (DIFT) engine.
//!
//! Byte-granular memory tags live in a sparse shadow keyed by the data
//! address (conceptually at `addr ^ (1 << 45)` per the paper's Table 2 —
//! the mapping itself is defined and tested in `teapot-rt::layout`);
//! register tags are per-register folds. The engine is *always precise*:
//! tags propagate for every executed instruction. The inserted
//! `tag.prop`/`tag.blockprop` instrumentation opcodes carry the cost model
//! (see DESIGN.md §3, "Semantic note").
//!
//! The shadow is a [`ShadowMem`](crate::slab) — the same region-table +
//! software-TLB page slab as guest memory — and every range operation is
//! chunked at page granularity instead of probing a map per byte. A
//! clean (`Tag::CLEAN`) range store over absent shadow pages allocates
//! nothing: a zeroed page reads exactly like an absent one, and most
//! stores move untainted data.
//!
//! # Origin shadow (taint provenance)
//!
//! Beside the tag shadow sits an *opt-in* byte-granular **origin
//! shadow** ([`OriginEngine`]) answering the follow-up question a tag
//! cannot: *which input bytes* sourced a tainted value. Each data byte
//! maps to an inclusive interval of input-byte offsets, stored as two
//! shadow bytes (interval lo / hi) in the [`OriginSpan`] encoding —
//! `offset + 1` per bound, `0` = no origin, saturating at offset 254,
//! so the zero-default slab semantics ("absent page reads as none")
//! carry over unchanged. Register origins are per-register interval
//! folds, like register tags. Origins propagate along exactly the same
//! flows as tags (`tag.prop`/`tag.blockprop` semantics), join being
//! interval union; the taint source `read_input` writes exact per-byte
//! offsets, `mark_user` contributes no origin (its taint is not
//! input-derived). The engine is enabled only on triage provenance
//! replays — the campaign hot path and the compiled dispatch tier never
//! touch it, keeping the zero-perturbation invariant intact.

use crate::slab::ShadowMem;
use teapot_rt::{OriginSpan, Tag};

/// Sparse byte-tag shadow plus register/FLAGS tags.
#[derive(Clone, Default)]
pub struct TaintEngine {
    mem: ShadowMem,
    /// Per-register tag folds.
    pub regs: [Tag; 16],
    /// Tags of the operands of the last FLAGS-writing instruction
    /// (consumed by the Port-contention policy).
    pub flags: Tag,
}

impl std::fmt::Debug for TaintEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaintEngine")
            .field("tag_pages", &self.mem.num_pages())
            .finish()
    }
}

impl TaintEngine {
    /// Creates a clean engine.
    pub fn new() -> TaintEngine {
        TaintEngine::default()
    }

    /// Tag of one memory byte.
    #[inline]
    pub fn mem_tag(&self, addr: u64) -> Tag {
        Tag::from_bits(self.mem.get(addr))
    }

    /// Telemetry snapshot of the tag shadow's slab:
    /// `(tlb_hits, tlb_misses, pages_allocated)`.
    pub(crate) fn telemetry_counts(&self) -> (u64, u64, u64) {
        self.mem.telemetry_counts()
    }

    /// Union of the tags of `[addr, addr+len)`.
    #[inline]
    pub fn mem_range_tag(&self, addr: u64, len: u64) -> Tag {
        Tag::from_bits(self.mem.fold_or(addr, len))
    }

    /// Sets the tag of one memory byte, returning the previous tag.
    #[inline]
    pub fn set_mem_tag(&mut self, addr: u64, tag: Tag) -> Tag {
        Tag::from_bits(self.mem.set(addr, tag.bits()))
    }

    /// Tags every byte of `[addr, addr+len)`, ignoring previous tags.
    #[inline]
    pub fn set_mem_range(&mut self, addr: u64, len: u64, tag: Tag) {
        self.mem.fill(addr, len, tag.bits());
    }

    /// Unions `tag` into every byte of `[addr, addr+len)`.
    pub fn union_mem_range(&mut self, addr: u64, len: u64, tag: Tag) {
        self.mem.or_fill(addr, len, tag.bits());
    }

    /// Copies the raw tag bytes of `[addr, addr+out.len())` into `out`
    /// (absent shadow reads as `Tag::CLEAN`) — the bulk read behind
    /// memory-log capture and store-buffer recording.
    #[inline]
    pub(crate) fn read_tags(&self, addr: u64, out: &mut [u8]) {
        self.mem.read_into(addr, out);
    }

    /// Writes raw tag bytes at `addr` — the bulk restore behind
    /// rollback replay. All-zero chunks skip absent pages.
    #[inline]
    pub(crate) fn write_tags(&mut self, addr: u64, tags: &[u8]) {
        self.mem.write_from(addr, tags);
    }

    /// Register tag accessor.
    #[inline]
    pub fn reg(&self, r: teapot_isa::Reg) -> Tag {
        self.regs[r.index()]
    }

    /// Register tag setter.
    #[inline]
    pub fn set_reg(&mut self, r: teapot_isa::Reg, t: Tag) {
        self.regs[r.index()] = t;
    }

    /// Clears all register and FLAGS tags (memory tags persist).
    pub fn clear_regs(&mut self) {
        self.regs = [Tag::CLEAN; 16];
        self.flags = Tag::CLEAN;
    }

    /// Makes the engine observably identical to a fresh one while
    /// keeping the shadow-page allocations for reuse across runs: every
    /// shadow page is zeroed (a zeroed page reads exactly like an absent
    /// one) and all register/FLAGS tags are cleared.
    pub fn reset(&mut self) {
        self.mem.reset();
        self.clear_regs();
    }
}

/// Byte-granular input-origin shadow plus register/FLAGS origin folds —
/// the provenance twin of [`TaintEngine`] (see the module header for
/// the encoding). Two slabs hold the interval bounds per data byte;
/// both inherit the zero-default semantics, so an untouched engine
/// costs no shadow pages.
#[derive(Clone, Default)]
pub struct OriginEngine {
    lo: ShadowMem,
    hi: ShadowMem,
    /// Per-register origin folds.
    pub regs: [OriginSpan; 16],
    /// Origin fold of the operands of the last FLAGS-writing
    /// instruction.
    pub flags: OriginSpan,
}

impl std::fmt::Debug for OriginEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OriginEngine")
            .field("origin_pages", &(self.lo.num_pages() + self.hi.num_pages()))
            .finish()
    }
}

impl OriginEngine {
    /// Creates an engine with no recorded origins.
    pub fn new() -> OriginEngine {
        OriginEngine::default()
    }

    /// Join of the origin spans of `[addr, addr+len)`. Access-sized
    /// ranges only (a per-byte walk; the VM folds at most 8 bytes).
    #[inline]
    pub fn mem_range(&self, addr: u64, len: u64) -> OriginSpan {
        let mut s = OriginSpan::NONE;
        for i in 0..len {
            let a = addr.wrapping_add(i);
            s = s.join(OriginSpan::from_raw(self.lo.get(a), self.hi.get(a)));
        }
        s
    }

    /// Sets every byte of `[addr, addr+len)` to `span`, ignoring
    /// previous origins (mirrors [`TaintEngine::set_mem_range`]).
    #[inline]
    pub fn set_mem_range(&mut self, addr: u64, len: u64, span: OriginSpan) {
        let (lo, hi) = span.raw();
        self.lo.fill(addr, len, lo);
        self.hi.fill(addr, len, hi);
    }

    /// Taint-source write: byte `addr + i` originates from exactly
    /// input offset `base_offset + i` (the `read_input` contract).
    pub fn set_input_range(&mut self, addr: u64, len: u64, base_offset: usize) {
        for i in 0..len {
            let (lo, hi) = OriginSpan::from_offset(base_offset + i as usize).raw();
            let a = addr.wrapping_add(i);
            self.lo.set(a, lo);
            self.hi.set(a, hi);
        }
    }

    /// Copies the raw origin bytes of `[addr, addr+out.len())` into the
    /// two bound buffers — the bulk read behind memory-log capture and
    /// store-buffer recording on provenance replays.
    #[inline]
    pub(crate) fn read_raw(&self, addr: u64, out_lo: &mut [u8], out_hi: &mut [u8]) {
        self.lo.read_into(addr, out_lo);
        self.hi.read_into(addr, out_hi);
    }

    /// Writes raw origin bytes at `addr` — the bulk restore behind
    /// rollback replay. All-zero chunks skip absent pages.
    #[inline]
    pub(crate) fn write_raw(&mut self, addr: u64, lo: &[u8], hi: &[u8]) {
        self.lo.write_from(addr, lo);
        self.hi.write_from(addr, hi);
    }

    /// Join of the raw-encoded spans of `bytes_lo`/`bytes_hi` (a
    /// store-buffer stale-origin fold).
    pub(crate) fn fold_raw(bytes_lo: &[u8], bytes_hi: &[u8]) -> OriginSpan {
        let mut s = OriginSpan::NONE;
        for (&l, &h) in bytes_lo.iter().zip(bytes_hi) {
            s = s.join(OriginSpan::from_raw(l, h));
        }
        s
    }

    /// Register origin accessor.
    #[inline]
    pub fn reg(&self, r: teapot_isa::Reg) -> OriginSpan {
        self.regs[r.index()]
    }

    /// Register origin setter.
    #[inline]
    pub fn set_reg(&mut self, r: teapot_isa::Reg, s: OriginSpan) {
        self.regs[r.index()] = s;
    }

    /// Clears all register and FLAGS origins (memory origins persist).
    pub fn clear_regs(&mut self) {
        self.regs = [OriginSpan::NONE; 16];
        self.flags = OriginSpan::NONE;
    }

    /// Makes the engine observably identical to a fresh one while
    /// keeping shadow-page allocations (see [`TaintEngine::reset`]).
    pub fn reset(&mut self) {
        self.lo.reset();
        self.hi.reset();
        self.clear_regs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::PAGE_SIZE as PAGE;
    use teapot_isa::Reg;

    #[test]
    fn memory_tags_default_clean() {
        let t = TaintEngine::new();
        assert_eq!(t.mem_tag(0x1234), Tag::CLEAN);
        assert_eq!(t.mem_range_tag(0, 64), Tag::CLEAN);
    }

    #[test]
    fn range_union() {
        let mut t = TaintEngine::new();
        t.set_mem_range(100, 4, Tag::USER);
        assert_eq!(t.mem_range_tag(100, 4), Tag::USER);
        assert_eq!(t.mem_range_tag(98, 4), Tag::USER); // overlap
        assert_eq!(t.mem_range_tag(104, 4), Tag::CLEAN);
        t.union_mem_range(102, 4, Tag::SECRET_USER);
        assert_eq!(t.mem_tag(102), Tag::USER | Tag::SECRET_USER);
        assert_eq!(t.mem_tag(105), Tag::SECRET_USER);
    }

    #[test]
    fn set_returns_old() {
        let mut t = TaintEngine::new();
        assert_eq!(t.set_mem_tag(7, Tag::MASSAGE), Tag::CLEAN);
        assert_eq!(t.set_mem_tag(7, Tag::USER), Tag::MASSAGE);
    }

    #[test]
    fn clean_range_stores_allocate_no_shadow() {
        let mut t = TaintEngine::new();
        t.set_mem_range(0x7000, 64, Tag::CLEAN);
        assert_eq!(format!("{t:?}"), "TaintEngine { tag_pages: 0 }");
        assert_eq!(t.mem_range_tag(0x7000, 64), Tag::CLEAN);
    }

    #[test]
    fn bulk_tag_round_trip() {
        let mut t = TaintEngine::new();
        t.set_mem_range(PAGE - 2, 4, Tag::USER);
        let mut raw = [0u8; 6];
        t.read_tags(PAGE - 3, &mut raw);
        assert_eq!(raw[0], 0);
        assert_eq!(Tag::from_bits(raw[1]), Tag::USER);
        assert_eq!(Tag::from_bits(raw[4]), Tag::USER);
        assert_eq!(raw[5], 0);
        t.write_tags(PAGE - 3, &[0; 6]);
        assert_eq!(t.mem_range_tag(PAGE - 8, 16), Tag::CLEAN);
    }

    #[test]
    fn register_tags() {
        let mut t = TaintEngine::new();
        t.set_reg(Reg::R3, Tag::USER);
        assert_eq!(t.reg(Reg::R3), Tag::USER);
        t.clear_regs();
        assert_eq!(t.reg(Reg::R3), Tag::CLEAN);
    }

    #[test]
    fn reset_reads_like_fresh() {
        let mut t = TaintEngine::new();
        t.set_mem_range(100, 4, Tag::USER);
        t.set_reg(Reg::R1, Tag::SECRET_USER);
        t.flags = Tag::USER;
        t.reset();
        assert_eq!(t.mem_range_tag(0, 256), Tag::CLEAN);
        assert_eq!(t.reg(Reg::R1), Tag::CLEAN);
        assert_eq!(t.flags, Tag::CLEAN);
    }

    #[test]
    fn cross_page_tagging() {
        let mut t = TaintEngine::new();
        t.set_mem_range(PAGE - 2, 4, Tag::USER);
        assert_eq!(t.mem_tag(PAGE - 1), Tag::USER);
        assert_eq!(t.mem_tag(PAGE), Tag::USER);
        assert_eq!(t.mem_tag(PAGE + 2), Tag::CLEAN);
    }

    #[test]
    fn origin_default_none_and_input_source() {
        let mut o = OriginEngine::new();
        assert_eq!(o.mem_range(0x4000, 8), OriginSpan::NONE);
        // read_input contract: byte addr+i comes from offset base+i.
        o.set_input_range(0x4000, 4, 2);
        assert_eq!(o.mem_range(0x4000, 1).offsets(), Some((2, 2)));
        assert_eq!(o.mem_range(0x4003, 1).offsets(), Some((5, 5)));
        assert_eq!(o.mem_range(0x4000, 4).offsets(), Some((2, 5)));
        // Fold over a partially-sourced range joins only what's there.
        assert_eq!(o.mem_range(0x3ffe, 4).offsets(), Some((2, 3)));
    }

    #[test]
    fn origin_range_set_and_clear() {
        let mut o = OriginEngine::new();
        let s = OriginSpan::from_offset(0).join(OriginSpan::from_offset(3));
        o.set_mem_range(0x100, 8, s);
        assert_eq!(o.mem_range(0x100, 8), s);
        o.set_mem_range(0x100, 8, OriginSpan::NONE);
        assert_eq!(o.mem_range(0x100, 8), OriginSpan::NONE);
        // A none-span store over absent pages allocates nothing.
        let fresh = OriginEngine::new();
        assert_eq!(format!("{fresh:?}"), "OriginEngine { origin_pages: 0 }");
    }

    #[test]
    fn origin_raw_round_trip() {
        let mut o = OriginEngine::new();
        o.set_input_range(PAGE - 2, 4, 0);
        let (mut lo, mut hi) = ([0u8; 4], [0u8; 4]);
        o.read_raw(PAGE - 2, &mut lo, &mut hi);
        assert_eq!(OriginEngine::fold_raw(&lo, &hi).offsets(), Some((0, 3)));
        // Restore zeros: reads like untouched shadow again.
        o.write_raw(PAGE - 2, &[0; 4], &[0; 4]);
        assert_eq!(o.mem_range(PAGE - 8, 16), OriginSpan::NONE);
    }

    #[test]
    fn origin_registers_and_reset() {
        let mut o = OriginEngine::new();
        o.set_reg(Reg::R2, OriginSpan::from_offset(7));
        o.flags = OriginSpan::from_offset(1);
        assert_eq!(o.reg(Reg::R2).offsets(), Some((7, 7)));
        o.set_input_range(64, 2, 0);
        o.reset();
        assert_eq!(o.reg(Reg::R2), OriginSpan::NONE);
        assert_eq!(o.flags, OriginSpan::NONE);
        assert_eq!(o.mem_range(64, 2), OriginSpan::NONE);
    }
}
