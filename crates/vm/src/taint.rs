//! The dynamic information flow tracking (DIFT) engine.
//!
//! Byte-granular memory tags live in a sparse shadow keyed by the data
//! address (conceptually at `addr ^ (1 << 45)` per the paper's Table 2 —
//! the mapping itself is defined and tested in `teapot-rt::layout`);
//! register tags are per-register folds. The engine is *always precise*:
//! tags propagate for every executed instruction. The inserted
//! `tag.prop`/`tag.blockprop` instrumentation opcodes carry the cost model
//! (see DESIGN.md §3, "Semantic note").

use teapot_rt::{FxHashMap, Tag};

const PAGE: u64 = 4096;

/// Sparse byte-tag shadow plus register/FLAGS tags.
#[derive(Clone, Default)]
pub struct TaintEngine {
    mem: FxHashMap<u64, Box<[u8; PAGE as usize]>>,
    /// Per-register tag folds.
    pub regs: [Tag; 16],
    /// Tags of the operands of the last FLAGS-writing instruction
    /// (consumed by the Port-contention policy).
    pub flags: Tag,
}

impl std::fmt::Debug for TaintEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaintEngine")
            .field("tag_pages", &self.mem.len())
            .finish()
    }
}

impl TaintEngine {
    /// Creates a clean engine.
    pub fn new() -> TaintEngine {
        TaintEngine::default()
    }

    /// Tag of one memory byte.
    #[inline]
    pub fn mem_tag(&self, addr: u64) -> Tag {
        match self.mem.get(&(addr / PAGE)) {
            Some(p) => Tag::from_bits(p[(addr % PAGE) as usize]),
            None => Tag::CLEAN,
        }
    }

    /// Union of the tags of `[addr, addr+len)`.
    pub fn mem_range_tag(&self, addr: u64, len: u64) -> Tag {
        let mut t = Tag::CLEAN;
        for i in 0..len {
            t |= self.mem_tag(addr.wrapping_add(i));
        }
        t
    }

    /// Sets the tag of one memory byte, returning the previous tag.
    pub fn set_mem_tag(&mut self, addr: u64, tag: Tag) -> Tag {
        let page = self
            .mem
            .entry(addr / PAGE)
            .or_insert_with(|| Box::new([0; PAGE as usize]));
        let slot = &mut page[(addr % PAGE) as usize];
        let old = Tag::from_bits(*slot);
        *slot = tag.bits();
        old
    }

    /// Tags every byte of `[addr, addr+len)`, ignoring previous tags.
    pub fn set_mem_range(&mut self, addr: u64, len: u64, tag: Tag) {
        for i in 0..len {
            self.set_mem_tag(addr.wrapping_add(i), tag);
        }
    }

    /// Unions `tag` into every byte of `[addr, addr+len)`.
    pub fn union_mem_range(&mut self, addr: u64, len: u64, tag: Tag) {
        for i in 0..len {
            let a = addr.wrapping_add(i);
            let old = self.mem_tag(a);
            self.set_mem_tag(a, old | tag);
        }
    }

    /// Register tag accessor.
    #[inline]
    pub fn reg(&self, r: teapot_isa::Reg) -> Tag {
        self.regs[r.index()]
    }

    /// Register tag setter.
    #[inline]
    pub fn set_reg(&mut self, r: teapot_isa::Reg, t: Tag) {
        self.regs[r.index()] = t;
    }

    /// Clears all register and FLAGS tags (memory tags persist).
    pub fn clear_regs(&mut self) {
        self.regs = [Tag::CLEAN; 16];
        self.flags = Tag::CLEAN;
    }

    /// Makes the engine observably identical to a fresh one while
    /// keeping the shadow-page allocations for reuse across runs: every
    /// shadow page is zeroed (a zeroed page reads exactly like an absent
    /// one) and all register/FLAGS tags are cleared.
    pub fn reset(&mut self) {
        for page in self.mem.values_mut() {
            page.fill(0);
        }
        self.clear_regs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teapot_isa::Reg;

    #[test]
    fn memory_tags_default_clean() {
        let t = TaintEngine::new();
        assert_eq!(t.mem_tag(0x1234), Tag::CLEAN);
        assert_eq!(t.mem_range_tag(0, 64), Tag::CLEAN);
    }

    #[test]
    fn range_union() {
        let mut t = TaintEngine::new();
        t.set_mem_range(100, 4, Tag::USER);
        assert_eq!(t.mem_range_tag(100, 4), Tag::USER);
        assert_eq!(t.mem_range_tag(98, 4), Tag::USER); // overlap
        assert_eq!(t.mem_range_tag(104, 4), Tag::CLEAN);
        t.union_mem_range(102, 4, Tag::SECRET_USER);
        assert_eq!(t.mem_tag(102), Tag::USER | Tag::SECRET_USER);
        assert_eq!(t.mem_tag(105), Tag::SECRET_USER);
    }

    #[test]
    fn set_returns_old() {
        let mut t = TaintEngine::new();
        assert_eq!(t.set_mem_tag(7, Tag::MASSAGE), Tag::CLEAN);
        assert_eq!(t.set_mem_tag(7, Tag::USER), Tag::MASSAGE);
    }

    #[test]
    fn register_tags() {
        let mut t = TaintEngine::new();
        t.set_reg(Reg::R3, Tag::USER);
        assert_eq!(t.reg(Reg::R3), Tag::USER);
        t.clear_regs();
        assert_eq!(t.reg(Reg::R3), Tag::CLEAN);
    }

    #[test]
    fn reset_reads_like_fresh() {
        let mut t = TaintEngine::new();
        t.set_mem_range(100, 4, Tag::USER);
        t.set_reg(Reg::R1, Tag::SECRET_USER);
        t.flags = Tag::USER;
        t.reset();
        assert_eq!(t.mem_range_tag(0, 256), Tag::CLEAN);
        assert_eq!(t.reg(Reg::R1), Tag::CLEAN);
        assert_eq!(t.flags, Tag::CLEAN);
    }

    #[test]
    fn cross_page_tagging() {
        let mut t = TaintEngine::new();
        t.set_mem_range(PAGE - 2, 4, Tag::USER);
        assert_eq!(t.mem_tag(PAGE - 1), Tag::USER);
        assert_eq!(t.mem_tag(PAGE), Tag::USER);
        assert_eq!(t.mem_tag(PAGE + 2), Tag::CLEAN);
    }
}
