//! The dynamic information flow tracking (DIFT) engine.
//!
//! Byte-granular memory tags live in a sparse shadow keyed by the data
//! address (conceptually at `addr ^ (1 << 45)` per the paper's Table 2 —
//! the mapping itself is defined and tested in `teapot-rt::layout`);
//! register tags are per-register folds. The engine is *always precise*:
//! tags propagate for every executed instruction. The inserted
//! `tag.prop`/`tag.blockprop` instrumentation opcodes carry the cost model
//! (see DESIGN.md §3, "Semantic note").
//!
//! The shadow is a [`ShadowMem`](crate::slab) — the same region-table +
//! software-TLB page slab as guest memory — and every range operation is
//! chunked at page granularity instead of probing a map per byte. A
//! clean (`Tag::CLEAN`) range store over absent shadow pages allocates
//! nothing: a zeroed page reads exactly like an absent one, and most
//! stores move untainted data.

use crate::slab::ShadowMem;
use teapot_rt::Tag;

/// Sparse byte-tag shadow plus register/FLAGS tags.
#[derive(Clone, Default)]
pub struct TaintEngine {
    mem: ShadowMem,
    /// Per-register tag folds.
    pub regs: [Tag; 16],
    /// Tags of the operands of the last FLAGS-writing instruction
    /// (consumed by the Port-contention policy).
    pub flags: Tag,
}

impl std::fmt::Debug for TaintEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaintEngine")
            .field("tag_pages", &self.mem.num_pages())
            .finish()
    }
}

impl TaintEngine {
    /// Creates a clean engine.
    pub fn new() -> TaintEngine {
        TaintEngine::default()
    }

    /// Tag of one memory byte.
    #[inline]
    pub fn mem_tag(&self, addr: u64) -> Tag {
        Tag::from_bits(self.mem.get(addr))
    }

    /// Telemetry snapshot of the tag shadow's slab:
    /// `(tlb_hits, tlb_misses, pages_allocated)`.
    pub(crate) fn telemetry_counts(&self) -> (u64, u64, u64) {
        self.mem.telemetry_counts()
    }

    /// Union of the tags of `[addr, addr+len)`.
    #[inline]
    pub fn mem_range_tag(&self, addr: u64, len: u64) -> Tag {
        Tag::from_bits(self.mem.fold_or(addr, len))
    }

    /// Sets the tag of one memory byte, returning the previous tag.
    #[inline]
    pub fn set_mem_tag(&mut self, addr: u64, tag: Tag) -> Tag {
        Tag::from_bits(self.mem.set(addr, tag.bits()))
    }

    /// Tags every byte of `[addr, addr+len)`, ignoring previous tags.
    #[inline]
    pub fn set_mem_range(&mut self, addr: u64, len: u64, tag: Tag) {
        self.mem.fill(addr, len, tag.bits());
    }

    /// Unions `tag` into every byte of `[addr, addr+len)`.
    pub fn union_mem_range(&mut self, addr: u64, len: u64, tag: Tag) {
        self.mem.or_fill(addr, len, tag.bits());
    }

    /// Copies the raw tag bytes of `[addr, addr+out.len())` into `out`
    /// (absent shadow reads as `Tag::CLEAN`) — the bulk read behind
    /// memory-log capture and store-buffer recording.
    #[inline]
    pub(crate) fn read_tags(&self, addr: u64, out: &mut [u8]) {
        self.mem.read_into(addr, out);
    }

    /// Writes raw tag bytes at `addr` — the bulk restore behind
    /// rollback replay. All-zero chunks skip absent pages.
    #[inline]
    pub(crate) fn write_tags(&mut self, addr: u64, tags: &[u8]) {
        self.mem.write_from(addr, tags);
    }

    /// Register tag accessor.
    #[inline]
    pub fn reg(&self, r: teapot_isa::Reg) -> Tag {
        self.regs[r.index()]
    }

    /// Register tag setter.
    #[inline]
    pub fn set_reg(&mut self, r: teapot_isa::Reg, t: Tag) {
        self.regs[r.index()] = t;
    }

    /// Clears all register and FLAGS tags (memory tags persist).
    pub fn clear_regs(&mut self) {
        self.regs = [Tag::CLEAN; 16];
        self.flags = Tag::CLEAN;
    }

    /// Makes the engine observably identical to a fresh one while
    /// keeping the shadow-page allocations for reuse across runs: every
    /// shadow page is zeroed (a zeroed page reads exactly like an absent
    /// one) and all register/FLAGS tags are cleared.
    pub fn reset(&mut self) {
        self.mem.reset();
        self.clear_regs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::PAGE_SIZE as PAGE;
    use teapot_isa::Reg;

    #[test]
    fn memory_tags_default_clean() {
        let t = TaintEngine::new();
        assert_eq!(t.mem_tag(0x1234), Tag::CLEAN);
        assert_eq!(t.mem_range_tag(0, 64), Tag::CLEAN);
    }

    #[test]
    fn range_union() {
        let mut t = TaintEngine::new();
        t.set_mem_range(100, 4, Tag::USER);
        assert_eq!(t.mem_range_tag(100, 4), Tag::USER);
        assert_eq!(t.mem_range_tag(98, 4), Tag::USER); // overlap
        assert_eq!(t.mem_range_tag(104, 4), Tag::CLEAN);
        t.union_mem_range(102, 4, Tag::SECRET_USER);
        assert_eq!(t.mem_tag(102), Tag::USER | Tag::SECRET_USER);
        assert_eq!(t.mem_tag(105), Tag::SECRET_USER);
    }

    #[test]
    fn set_returns_old() {
        let mut t = TaintEngine::new();
        assert_eq!(t.set_mem_tag(7, Tag::MASSAGE), Tag::CLEAN);
        assert_eq!(t.set_mem_tag(7, Tag::USER), Tag::MASSAGE);
    }

    #[test]
    fn clean_range_stores_allocate_no_shadow() {
        let mut t = TaintEngine::new();
        t.set_mem_range(0x7000, 64, Tag::CLEAN);
        assert_eq!(format!("{t:?}"), "TaintEngine { tag_pages: 0 }");
        assert_eq!(t.mem_range_tag(0x7000, 64), Tag::CLEAN);
    }

    #[test]
    fn bulk_tag_round_trip() {
        let mut t = TaintEngine::new();
        t.set_mem_range(PAGE - 2, 4, Tag::USER);
        let mut raw = [0u8; 6];
        t.read_tags(PAGE - 3, &mut raw);
        assert_eq!(raw[0], 0);
        assert_eq!(Tag::from_bits(raw[1]), Tag::USER);
        assert_eq!(Tag::from_bits(raw[4]), Tag::USER);
        assert_eq!(raw[5], 0);
        t.write_tags(PAGE - 3, &[0; 6]);
        assert_eq!(t.mem_range_tag(PAGE - 8, 16), Tag::CLEAN);
    }

    #[test]
    fn register_tags() {
        let mut t = TaintEngine::new();
        t.set_reg(Reg::R3, Tag::USER);
        assert_eq!(t.reg(Reg::R3), Tag::USER);
        t.clear_regs();
        assert_eq!(t.reg(Reg::R3), Tag::CLEAN);
    }

    #[test]
    fn reset_reads_like_fresh() {
        let mut t = TaintEngine::new();
        t.set_mem_range(100, 4, Tag::USER);
        t.set_reg(Reg::R1, Tag::SECRET_USER);
        t.flags = Tag::USER;
        t.reset();
        assert_eq!(t.mem_range_tag(0, 256), Tag::CLEAN);
        assert_eq!(t.reg(Reg::R1), Tag::CLEAN);
        assert_eq!(t.flags, Tag::CLEAN);
    }

    #[test]
    fn cross_page_tagging() {
        let mut t = TaintEngine::new();
        t.set_mem_range(PAGE - 2, 4, Tag::USER);
        assert_eq!(t.mem_tag(PAGE - 1), Tag::USER);
        assert_eq!(t.mem_tag(PAGE), Tag::USER);
        assert_eq!(t.mem_tag(PAGE + 2), Tag::CLEAN);
    }
}
