//! Per-branch speculation heuristics (paper §6.1 "Nested Speculation and
//! fuzzing heuristic").
//!
//! Three styles are modeled:
//!
//! * **Teapot hybrid** — a branch's first [`full_depth_runs`] simulations
//!   explore to the full nesting depth (6); afterwards the SpecFuzz
//!   gradual-deepening rule applies. Top-level simulation always happens.
//! * **SpecFuzz gradual** — allowed depth grows logarithmically with the
//!   branch's encounter count, up to the sixth order. Top-level simulation
//!   always happens.
//! * **SpecTaint five-tries** — each branch enters simulation at most five
//!   times *in total* (including top-level), the paper's explanation for
//!   SpecTaint's false negatives (§7.3).
//!
//! State persists across fuzzing runs: the fuzzer owns a
//! [`SpecHeuristics`] and threads it through every execution.
//!
//! Storage note: the gate runs for every `sim.start` reached inside a
//! speculation window — one of the hottest paths in the VM — so the
//! per-branch state lives in a dense vector behind a single
//! pc→index probe, and per-run accounting resets by bumping a run
//! generation instead of clearing maps. Observable behavior (decisions
//! and exported counts, including zero-count entries created by
//! rejected nested gates) is bit-identical to the original
//! three-hashmap design.
//!
//! [`full_depth_runs`]: teapot_rt::DetectorConfig::full_depth_runs

use teapot_rt::{FxHashMap, SpecModel};

/// Which tool's nested-speculation policy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HeurStyle {
    /// Teapot's hybrid policy (paper §6.1).
    #[default]
    TeapotHybrid,
    /// SpecFuzz's gradual deepening.
    SpecFuzzGradual,
    /// SpecTaint's five-entries-per-branch cap.
    SpecTaintFive,
}

/// Dense per-branch state (see module note).
#[derive(Debug, Clone)]
struct SiteState {
    /// The branch (site key) this slot tracks.
    pc: u64,
    /// Persistent simulation count.
    count: u32,
    /// Whether the original design's `counts` map would hold an entry
    /// for this branch (top-level entry, or a nested gate that reached
    /// the decision point) — zero-count entries are observable through
    /// [`SpecHeuristics::export_counts`] and must be reproduced.
    counted: bool,
    /// Run generation `opportunities`/`entered` are valid for.
    run_gen: u32,
    /// Nested opportunities seen this run.
    opportunities: u32,
    /// Nested entries taken this run.
    entered: u32,
}

/// Persistent per-branch simulation accounting.
#[derive(Debug, Clone, Default)]
pub struct SpecHeuristics {
    /// Active policy.
    pub style: HeurStyle,
    /// Branch → dense index into `sites`.
    index: FxHashMap<u64, u32>,
    sites: Vec<SiteState>,
    run_gen: u32,
    /// Identity of the `Program` the dense-site binding below belongs to.
    bound_uid: u64,
    /// Dense program site id → `sites` index + 1 (`0`: not yet
    /// interned). Gates that carry a predecoded site id resolve their
    /// slot through this array — the `pc → index` hash probe then runs
    /// at most once per site per binding, not once per decision. Purely
    /// an access path: slots are created at the same moments and with
    /// the same state as through the hash probe, so decisions and
    /// exported counts are bit-identical.
    bound: Vec<u32>,
}

/// Maximum nested-simulation entries per branch within one run. Without
/// this bound, loops executing under an outer simulation window re-enter
/// nested exploration on every iteration and the search space "grows
/// exponentially" (paper §6.1) — managing that explosion is exactly what
/// the per-branch heuristics are for.
pub const NESTED_PER_RUN_CAP: u32 = 6;

/// Phase-rotation cycle: a branch skips its first `count % CYCLE` nested
/// opportunities in each run, so successive fuzzing runs explore
/// *different* combinations of nested mispredictions (e.g., later loop
/// iterations) instead of greedily re-diving into the same early paths.
/// This is the "mixture" exploration strategy of paper §6.1, adapted to a
/// deterministic fuzzer.
pub const PHASE_CYCLE: u32 = 4;

impl SpecHeuristics {
    /// Creates fresh state for the given style.
    pub fn new(style: HeurStyle) -> SpecHeuristics {
        SpecHeuristics {
            style,
            ..SpecHeuristics::default()
        }
    }

    /// Resets per-run accounting (called at the start of each execution;
    /// the cross-run per-branch counts persist across the campaign).
    pub fn begin_run(&mut self) {
        self.run_gen = self.run_gen.wrapping_add(1);
        if self.run_gen == 0 {
            // Generation wrap: stale per-run state could alias the new
            // generation; clear it for real once every 2^32 runs.
            for s in &mut self.sites {
                s.run_gen = u32::MAX;
                s.opportunities = 0;
                s.entered = 0;
            }
            self.run_gen = 1;
        }
    }

    /// Binds the dense-site id table to a program: ids handed to
    /// [`SpecHeuristics::enter_top_at`] / `enter_nested_at` must come
    /// from that program's predecoded tables. Rebinding to the same
    /// program is free; a different program (queue mode) resets the
    /// binding, and the hash probes lazily refill it.
    pub(crate) fn bind_sites(&mut self, uid: u64, nsites: u32) {
        let n = nsites as usize;
        if self.bound_uid != uid || self.bound.len() != n {
            self.bound.clear();
            self.bound.resize(n, 0);
            self.bound_uid = uid;
        }
    }

    /// Dense index of `branch` in `sites`, created on first sight, with
    /// the per-run accounting refreshed — the hash-probe access path.
    #[inline]
    fn site_index(&mut self, branch: u64) -> usize {
        let idx = *self.index.entry(branch).or_insert_with(|| {
            self.sites.push(SiteState {
                pc: branch,
                count: 0,
                counted: false,
                run_gen: 0,
                opportunities: 0,
                entered: 0,
            });
            (self.sites.len() - 1) as u32
        }) as usize;
        let s = &mut self.sites[idx];
        if s.run_gen != self.run_gen {
            s.run_gen = self.run_gen;
            s.opportunities = 0;
            s.entered = 0;
        }
        idx
    }

    /// Dense index of the site keyed `key`, resolved through the bound
    /// program-site id when one is given (one array read after the
    /// first intern), the hash probe otherwise.
    #[inline]
    fn site_slot(&mut self, sid: Option<u32>, key: u64) -> usize {
        if let Some(sid) = sid {
            if let Some(&slot) = self.bound.get(sid as usize) {
                if slot != 0 {
                    let idx = (slot - 1) as usize;
                    let s = &mut self.sites[idx];
                    if s.run_gen != self.run_gen {
                        s.run_gen = self.run_gen;
                        s.opportunities = 0;
                        s.entered = 0;
                    }
                    return idx;
                }
                let idx = self.site_index(key);
                self.bound[sid as usize] = idx as u32 + 1;
                return idx;
            }
        }
        self.site_index(key)
    }

    /// Dense slot of `branch`, created on first sight.
    #[inline]
    fn site_mut(&mut self, branch: u64) -> &mut SiteState {
        let idx = self.site_index(branch);
        &mut self.sites[idx]
    }

    /// SpecFuzz gradual rule: allowed depth grows with the logarithm of
    /// the encounter count, capped at `max_nesting`.
    fn gradual_depth(count: u32, max_nesting: u32) -> u32 {
        let log = 32 - count.saturating_add(1).leading_zeros(); // ⌈log2⌉-ish
        log.clamp(1, max_nesting)
    }

    /// Should a *top-level* simulation be entered for `branch`?
    /// Increments the branch's simulation count when entering.
    pub fn enter_top(&mut self, branch: u64) -> bool {
        self.enter_top_at(None, branch)
    }

    /// [`SpecHeuristics::enter_top`] resolved through a bound dense
    /// site id (see [`SpecHeuristics::bind_sites`]) when available.
    pub(crate) fn enter_top_at(&mut self, sid: Option<u32>, branch: u64) -> bool {
        let style = self.style;
        let idx = self.site_slot(sid, branch);
        let s = &mut self.sites[idx];
        s.counted = true;
        match style {
            HeurStyle::TeapotHybrid | HeurStyle::SpecFuzzGradual => {
                s.count += 1;
                true
            }
            HeurStyle::SpecTaintFive => {
                if s.count >= 5 {
                    false
                } else {
                    s.count += 1;
                    true
                }
            }
        }
    }

    /// Should a *nested* simulation be entered for `branch` while already
    /// `depth` levels deep (depth ≥ 1)? Increments the count when entering.
    pub fn enter_nested(
        &mut self,
        branch: u64,
        depth: u32,
        max_nesting: u32,
        full_depth_runs: u32,
    ) -> bool {
        self.enter_nested_at(None, branch, depth, max_nesting, full_depth_runs)
    }

    /// [`SpecHeuristics::enter_nested`] resolved through a bound dense
    /// site id when available.
    pub(crate) fn enter_nested_at(
        &mut self,
        sid: Option<u32>,
        branch: u64,
        depth: u32,
        max_nesting: u32,
        full_depth_runs: u32,
    ) -> bool {
        if depth >= max_nesting {
            return false;
        }
        let style = self.style;
        let idx = self.site_slot(sid, branch);
        let s = &mut self.sites[idx];
        if !matches!(style, HeurStyle::SpecTaintFive) {
            // Phase rotation: skip this run's first `count % CYCLE`
            // opportunities so different runs nest at different points.
            let seen = s.opportunities;
            s.opportunities += 1;
            let effective = if s.counted { s.count } else { 0 };
            if seen < effective % PHASE_CYCLE {
                return false;
            }
            if s.entered >= NESTED_PER_RUN_CAP {
                return false;
            }
        }
        s.counted = true;
        let allow = match style {
            HeurStyle::TeapotHybrid => {
                if s.count < full_depth_runs {
                    true // full depth for the first runs of this branch
                } else {
                    depth < Self::gradual_depth(s.count, max_nesting)
                }
            }
            HeurStyle::SpecFuzzGradual => depth < Self::gradual_depth(s.count, max_nesting),
            HeurStyle::SpecTaintFive => s.count < 5,
        };
        if allow {
            s.count += 1;
            s.entered += 1;
        }
        allow
    }

    /// Exports the persistent per-branch simulation counts, sorted by
    /// branch address (the per-run accounting is transient and excluded).
    /// Together with [`SpecHeuristics::from_counts`] this supports
    /// campaign snapshots: heuristic state survives a kill/resume cycle.
    pub fn export_counts(&self) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        self.export_counts_into(&mut out);
        out
    }

    /// [`SpecHeuristics::export_counts`] into a caller-owned buffer,
    /// reusing its allocation.
    pub fn export_counts_into(&self, out: &mut Vec<(u64, u32)>) {
        self.export_counts_unsorted_into(out);
        out.sort_unstable();
    }

    /// Raw (unsorted) count snapshot into a caller-owned buffer — the
    /// witness recorder snapshots the counts before *every* fuzz run but
    /// only consumes a snapshot on rare first-seen gadgets, so the hot
    /// loop must neither allocate nor sort; callers sort at consumption
    /// time.
    pub fn export_counts_unsorted_into(&self, out: &mut Vec<(u64, u32)>) {
        out.clear();
        out.extend(
            self.sites
                .iter()
                .filter(|s| s.counted)
                .map(|s| (s.pc, s.count)),
        );
    }

    /// Rebuilds heuristic state from counts exported by
    /// [`SpecHeuristics::export_counts`].
    pub fn from_counts(style: HeurStyle, counts: &[(u64, u32)]) -> Self {
        let mut h = SpecHeuristics::new(style);
        for &(pc, count) in counts {
            let s = h.site_mut(pc);
            s.count = count;
            s.counted = true;
        }
        h
    }

    /// Times `branch` has entered simulation so far.
    pub fn count(&self, branch: u64) -> u32 {
        match self.index.get(&branch) {
            Some(&i) => self.sites[i as usize].count,
            None => 0,
        }
    }

    /// Number of distinct branches seen.
    pub fn branches_seen(&self) -> usize {
        self.sites.iter().filter(|s| s.counted).count()
    }

    /// Times the site `pc` has entered simulation under `model`. Sites
    /// are namespaced per model ([`SpecModel::site_key`]): a PHT branch
    /// and an RSB return at the same address keep independent counts
    /// (PHT keys are the raw PC, bit-compatible with old snapshots).
    pub fn count_for(&self, model: SpecModel, pc: u64) -> u32 {
        self.count(model.site_key(pc))
    }

    /// Number of distinct sites seen under `model`.
    pub fn sites_seen_for(&self, model: SpecModel) -> usize {
        self.sites
            .iter()
            .filter(|s| s.counted && SpecModel::of_site_key(s.pc) == model)
            .count()
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teapot_always_simulates_top_level() {
        let mut h = SpecHeuristics::new(HeurStyle::TeapotHybrid);
        for _ in 0..100 {
            assert!(h.enter_top(0x400100));
        }
        assert_eq!(h.count(0x400100), 100);
    }

    #[test]
    fn spectaint_caps_at_five_total() {
        let mut h = SpecHeuristics::new(HeurStyle::SpecTaintFive);
        let mut entered = 0;
        for _ in 0..20 {
            if h.enter_top(0x99) {
                entered += 1;
            }
        }
        assert_eq!(entered, 5);
        // Nested entries are also refused once exhausted.
        assert!(!h.enter_nested(0x99, 1, 6, 5));
    }

    #[test]
    fn teapot_hybrid_full_depth_first_five_runs() {
        let mut h = SpecHeuristics::new(HeurStyle::TeapotHybrid);
        // First five runs: any depth below max allowed.
        for _ in 0..5 {
            assert!(h.enter_nested(0x1, 5, 6, 5));
        }
        // Afterwards: gradual — depth 5 requires a large count.
        assert!(!h.enter_nested(0x1, 5, 6, 5));
        // Shallow nesting is still allowed.
        assert!(h.enter_nested(0x1, 1, 6, 5));
    }

    #[test]
    fn gradual_deepening_is_monotone_and_capped() {
        let mut prev = 0;
        for c in 0..10_000 {
            let d = SpecHeuristics::gradual_depth(c, 6);
            assert!(d >= prev);
            assert!((1..=6).contains(&d));
            prev = d;
        }
        assert_eq!(SpecHeuristics::gradual_depth(10_000, 6), 6);
        assert_eq!(SpecHeuristics::gradual_depth(0, 6), 1);
    }

    #[test]
    fn depth_never_exceeds_max_nesting() {
        let mut h = SpecHeuristics::new(HeurStyle::TeapotHybrid);
        assert!(!h.enter_nested(0x5, 6, 6, 5));
        assert!(!h.enter_nested(0x5, 7, 6, 5));
        let mut h = SpecHeuristics::new(HeurStyle::SpecFuzzGradual);
        assert!(!h.enter_nested(0x5, 6, 6, 5));
    }

    #[test]
    fn per_model_site_counts_are_independent_and_export_compatible() {
        let mut h = SpecHeuristics::new(HeurStyle::TeapotHybrid);
        let pc = 0x400100u64;
        // The same address entered under three different models keeps
        // three independent counters.
        assert!(h.enter_top(SpecModel::Pht.site_key(pc)));
        assert!(h.enter_top(SpecModel::Rsb.site_key(pc)));
        assert!(h.enter_top(SpecModel::Rsb.site_key(pc)));
        assert!(h.enter_top(SpecModel::Stl.site_key(pc)));
        assert_eq!(h.count_for(SpecModel::Pht, pc), 1);
        assert_eq!(h.count_for(SpecModel::Rsb, pc), 2);
        assert_eq!(h.count_for(SpecModel::Stl, pc), 1);
        assert_eq!(h.sites_seen_for(SpecModel::Rsb), 1);
        // The tagged keys round-trip through the witness/snapshot export
        // format unchanged (plain u64s), and PHT keys equal raw PCs.
        let counts = h.export_counts();
        assert!(counts.contains(&(pc, 1)));
        let back = SpecHeuristics::from_counts(HeurStyle::TeapotHybrid, &counts);
        assert_eq!(back.count_for(SpecModel::Rsb, pc), 2);
    }

    #[test]
    fn bound_site_ids_are_a_pure_access_path() {
        // The same decision sequence through the dense-id path and the
        // hash-probe path must produce identical decisions and exports,
        // including across a rebind to a different program.
        let mut a = SpecHeuristics::new(HeurStyle::TeapotHybrid);
        let mut b = SpecHeuristics::new(HeurStyle::TeapotHybrid);
        b.bind_sites(7, 4);
        let keys = [0x400100u64, 0x400200, 0x400300];
        for run in 0..10u32 {
            a.begin_run();
            b.begin_run();
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(a.enter_top(k), b.enter_top_at(Some(i as u32), k));
                assert_eq!(
                    a.enter_nested(k, 1 + run % 3, 6, 5),
                    b.enter_nested_at(Some(i as u32), k, 1 + run % 3, 6, 5)
                );
            }
            // An out-of-table site falls back to the hash probe.
            assert_eq!(a.enter_top(0xdead), b.enter_top_at(None, 0xdead));
        }
        assert_eq!(a.export_counts(), b.export_counts());
        // Rebinding resets the id table; decisions keep agreeing.
        b.bind_sites(9, 3);
        a.begin_run();
        b.begin_run();
        assert_eq!(a.enter_top(keys[2]), b.enter_top_at(Some(0), keys[2]));
        assert_eq!(a.export_counts(), b.export_counts());
    }

    #[test]
    fn specfuzz_gradual_deepens_with_encounters() {
        let mut h = SpecHeuristics::new(HeurStyle::SpecFuzzGradual);
        // Fresh branch: depth 1 refused at first (allowed depth is 1).
        assert!(!h.enter_nested(0x7, 1, 6, 5));
        for _ in 0..40 {
            h.enter_top(0x7);
        }
        // Now deeper nesting unlocks.
        assert!(h.enter_nested(0x7, 1, 6, 5));
        assert!(h.enter_nested(0x7, 2, 6, 5));
    }
}
