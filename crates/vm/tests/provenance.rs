//! Ground-truth taint provenance: on the planted Spectre workloads a
//! provenance replay resolves the *exact* attacker-controlled input
//! bytes that reach the leaking access — and no others — while a
//! provenance-off run of the same input reports identical gadgets with
//! no origins and no leak-site events (the zero-perturbation side).

use teapot_cc::{compile_to_binary, Options};
use teapot_core::{rewrite, RewriteOptions};
use teapot_obj::Binary;
use teapot_rt::{GadgetReport, SpecModelSet, TraceEvent};
use teapot_vm::{ExecContext, Machine, Program, RunOptions, SpecHeuristics};

fn instrumented(src: &str) -> Binary {
    let mut bin = compile_to_binary(src, &Options::gcc_like()).unwrap();
    bin.strip();
    rewrite(&bin, &RewriteOptions::default()).unwrap()
}

/// One recorded run: gadget reports plus the witness trace, with the
/// origin shadow on or off.
fn run_traced(
    bin: &Binary,
    input: &[u8],
    models: &str,
    provenance: bool,
) -> (Vec<GadgetReport>, Vec<TraceEvent>) {
    let prog = Program::shared(bin);
    let mut ctx = ExecContext::new(&prog);
    ctx.set_witness_recording(true);
    ctx.set_provenance(provenance);
    let mut heur = SpecHeuristics::default();
    let opts = RunOptions {
        input: input.to_vec(),
        models: SpecModelSet::parse(models).unwrap(),
        ..RunOptions::default()
    };
    Machine::with_context(&prog, &mut ctx, opts).run_stats(&mut heur);
    let trace = ctx.trace().to_vec();
    (ctx.take_gadgets(), trace)
}

/// The OOB-index trigger for both planted model workloads (index 20
/// lands in the 16-byte array's right redzone).
const TRIGGER: &[u8] = &[0x14, 0x00];

/// Every origin-carrying event must stay inside `0..=max_offset` — the
/// "fires for no other offsets" half of the ground truth.
fn assert_origins_within(trace: &[TraceEvent], max_offset: u32) {
    for ev in trace {
        if let Some((lo, hi)) = ev.origin().offsets() {
            assert!(
                hi <= max_offset && lo <= hi,
                "origin {lo}-{hi} outside the {}-byte input: {ev:?}",
                max_offset + 1
            );
        }
    }
}

#[test]
fn pht_gadget_leaks_exactly_input_byte_one() {
    // The classic Spectre-V1 shape: only `inbuf[1]` steers the OOB
    // access, so the leak's provenance is the single input byte 1.
    let bin = instrumented(
        "
        char bar[256]; int baz; char inbuf[16];
        int main() {
            char *foo = malloc(16);
            read_input(inbuf, 16);
            if (inbuf[1] < 10) { baz = bar[foo[inbuf[1]]]; }
            return 0;
        }",
    );
    let (gadgets, trace) = run_traced(&bin, &[0x00, 0x14], "pht", true);
    assert!(!gadgets.is_empty(), "planted V1 gadget fires");
    let leaks: Vec<_> = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::LeakSite { .. }))
        .collect();
    assert!(!leaks.is_empty(), "leak sites recorded: {trace:?}");
    for leak in &leaks {
        assert_eq!(
            leak.origin().offsets(),
            Some((1, 1)),
            "the leak traces to input byte 1 alone: {leak:?}"
        );
    }
}

#[test]
fn rsb_and_stl_leaks_trace_to_input_bytes_zero_and_one() {
    // Both planted workloads build the attacker index from
    // `in[0] + (in[1] << 8)`: the leaking access must resolve to the
    // input-byte interval 0-1, and nothing in the trace may name any
    // other offset.
    for (wl, models) in [
        (teapot_workloads::rsb_like(), "pht,rsb"),
        (teapot_workloads::stl_like(), "pht,stl"),
    ] {
        let bin = instrumented(wl.plain_source().as_str());
        let (gadgets, trace) = run_traced(&bin, TRIGGER, models, true);
        assert!(!gadgets.is_empty(), "{}: planted gadget fires", wl.name);
        assert_origins_within(&trace, 1);
        let leak = trace
            .iter()
            .find(|e| matches!(e, TraceEvent::LeakSite { .. }))
            .unwrap_or_else(|| panic!("{}: no leak site in {trace:?}", wl.name));
        assert_eq!(
            leak.origin().offsets(),
            Some((0, 1)),
            "{}: leak traces to input bytes 0-1: {leak:?}",
            wl.name
        );
    }
}

#[test]
fn provenance_off_is_origin_free_and_gadget_identical() {
    for (wl, models) in [
        (teapot_workloads::rsb_like(), "pht,rsb"),
        (teapot_workloads::stl_like(), "pht,stl"),
    ] {
        let bin = instrumented(wl.plain_source().as_str());
        let (on, _) = run_traced(&bin, TRIGGER, models, true);
        let (off, trace_off) = run_traced(&bin, TRIGGER, models, false);
        // The origin shadow observes; it never changes what is found.
        assert_eq!(on, off, "{}: same gadgets either way", wl.name);
        // Campaign-mode traces carry neither origins nor leak sites.
        for ev in &trace_off {
            assert!(ev.origin().is_none(), "{}: stray origin {ev:?}", wl.name);
            assert!(
                !matches!(ev, TraceEvent::LeakSite { .. }),
                "{}: stray leak site {ev:?}",
                wl.name
            );
        }
    }
}

#[test]
fn provenance_counters_count_only_provenance_runs() {
    let bin = instrumented(teapot_workloads::rsb_like().plain_source().as_str());
    let prog = Program::shared(&bin);
    let run = |provenance: bool| {
        let mut ctx = ExecContext::new(&prog);
        ctx.set_witness_recording(true);
        ctx.set_provenance(provenance);
        let mut heur = SpecHeuristics::default();
        let opts = RunOptions {
            input: TRIGGER.to_vec(),
            models: SpecModelSet::parse("pht,rsb").unwrap(),
            ..RunOptions::default()
        };
        Machine::with_context(&prog, &mut ctx, opts).run_stats(&mut heur);
        ctx.counters_snapshot()
    };
    let on = run(true);
    assert!(on.prov_bytes > 0, "origin bytes written: {on:?}");
    assert!(on.prov_folds > 0, "origin folds performed: {on:?}");
    assert!(on.prov_leaks > 0, "leak sites counted: {on:?}");
    let off = run(false);
    assert_eq!(off.prov_bytes, 0);
    assert_eq!(off.prov_folds, 0);
    assert_eq!(off.prov_leaks, 0);
}
