//! Property-based differential tests for the flat region-backed memory
//! subsystem: the new `PagedMem` / taint shadow / ASan shadow (page
//! slab + sorted region table + software TLB + chunked accessors) must
//! be observably identical to the seed's per-byte hashmap design. Each
//! property drives the real implementation and a deliberately naive
//! reference model (one `BTreeMap` entry per page, one loop iteration
//! per byte — the old code's semantics transcribed) through the same
//! random operation sequence and compares every outcome: read values,
//! fault kinds and addresses, partial cross-page writes, permission
//! upgrades, poison verdicts, tag folds, and the reset-equals-fresh
//! contract after a dirty-page restore.

use proptest::prelude::*;
use std::collections::BTreeMap;
use teapot_rt::layout::{HEAP_BASE, INPUT_STAGING};
use teapot_rt::Tag;
use teapot_vm::{AsanEngine, MemFault, PagedMem, TaintEngine, PAGE_SIZE};

/// The seed's paged memory, transcribed: byte-per-byte operations over
/// a `BTreeMap` of whole pages.
#[derive(Clone, Default)]
struct RefMem {
    pages: BTreeMap<u64, (Vec<u8>, bool, bool)>, // bytes, writable, dirty
}

impl RefMem {
    fn map_region(&mut self, start: u64, size: u64, writable: bool) {
        if size == 0 {
            return;
        }
        let first = start / PAGE_SIZE;
        let last = (start + size - 1) / PAGE_SIZE;
        for p in first..=last {
            let e = self
                .pages
                .entry(p)
                .or_insert_with(|| (vec![0; PAGE_SIZE as usize], writable, true));
            e.1 |= writable;
        }
    }

    fn seal_pristine(&mut self) {
        for e in self.pages.values_mut() {
            e.2 = false;
        }
    }

    fn reset_to(&mut self, pristine: &RefMem) {
        let keep: Vec<u64> = self
            .pages
            .keys()
            .copied()
            .filter(|p| pristine.pages.contains_key(p))
            .collect();
        self.pages.retain(|p, _| pristine.pages.contains_key(p));
        for p in keep {
            let src = &pristine.pages[&p];
            let dst = self.pages.get_mut(&p).unwrap();
            if dst.2 {
                dst.0.copy_from_slice(&src.0);
                dst.2 = false;
            }
            dst.1 = src.1;
        }
    }

    fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => Ok(p.0[(addr % PAGE_SIZE) as usize]),
            None => Err(MemFault::Unmapped { addr }),
        }
    }

    fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemFault> {
        match self.pages.get_mut(&(addr / PAGE_SIZE)) {
            Some(p) => {
                if !p.1 {
                    return Err(MemFault::ReadOnly { addr });
                }
                p.0[(addr % PAGE_SIZE) as usize] = v;
                p.2 = true;
                Ok(())
            }
            None => Err(MemFault::Unmapped { addr }),
        }
    }

    fn read_uint(&self, addr: u64, n: u64) -> Result<u64, MemFault> {
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr.wrapping_add(i))? as u64) << (8 * i);
        }
        Ok(v)
    }

    fn write_uint(&mut self, addr: u64, value: u64, n: u64) -> Result<(), MemFault> {
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    fn poke(&mut self, addr: u64, v: u8) {
        let e = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| (vec![0; PAGE_SIZE as usize], false, true));
        e.0[(addr % PAGE_SIZE) as usize] = v;
        e.2 = true;
    }

    fn is_mapped(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let Some(end) = addr.checked_add(len - 1) else {
            return false;
        };
        (addr / PAGE_SIZE..=end / PAGE_SIZE).all(|p| self.pages.contains_key(&p))
    }

    fn read_for_decode(&self, addr: u64, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            match self.read_u8(addr.wrapping_add(i)) {
                Ok(b) => out.push(b),
                Err(_) => break,
            }
        }
        out
    }
}

/// A random region layout: a handful of small regions near a few
/// interesting bases (page boundaries included).
fn layout_strategy() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    proptest::collection::vec(
        (
            0u64..6,
            0u64..3 * PAGE_SIZE,
            1u64..2 * PAGE_SIZE,
            any::<bool>(),
        ),
        1..6,
    )
    .prop_map(|specs| {
        let bases = [
            0,
            PAGE_SIZE,
            16 * PAGE_SIZE,
            HEAP_BASE,
            INPUT_STAGING,
            0x7ffd_0000,
        ];
        specs
            .into_iter()
            .map(|(b, off, len, w)| (bases[b as usize] + off, len, w))
            .collect()
    })
}

/// One mutation step against both implementations.
#[derive(Debug, Clone)]
enum Op {
    WriteU8(u64, u8),
    WriteUint(u64, u64, u64),
    Poke(u64, u8),
    WriteN(u64, Vec<u8>),
    PokeFill(u64, u64, u8),
    MapRegion(u64, u64, bool),
}

fn addr_strategy() -> impl Strategy<Value = u64> {
    let bases = prop_oneof![
        Just(0u64),
        Just(PAGE_SIZE),
        Just(16 * PAGE_SIZE),
        Just(HEAP_BASE),
        Just(INPUT_STAGING),
        Just(0x7ffd_0000u64),
    ];
    (bases, 0u64..3 * PAGE_SIZE).prop_map(|(b, o)| b + o)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (addr_strategy(), any::<u8>()).prop_map(|(a, v)| Op::WriteU8(a, v)),
        (addr_strategy(), any::<u64>(), 1u64..9).prop_map(|(a, v, n)| Op::WriteUint(a, v, n)),
        (addr_strategy(), any::<u8>()).prop_map(|(a, v)| Op::Poke(a, v)),
        (
            addr_strategy(),
            proptest::collection::vec(any::<u8>(), 0..40)
        )
            .prop_map(|(a, d)| Op::WriteN(a, d)),
        (addr_strategy(), 0u64..600, any::<u8>()).prop_map(|(a, l, v)| Op::PokeFill(a, l, v)),
        (addr_strategy(), 1u64..2 * PAGE_SIZE, any::<bool>())
            .prop_map(|(a, l, w)| Op::MapRegion(a, l, w)),
    ]
}

/// Applies `op` to both; asserts identical outcomes (including fault
/// kind and address, and the partial-write-then-fault contract).
fn apply_both(real: &mut PagedMem, model: &mut RefMem, op: &Op) {
    match op {
        Op::WriteU8(a, v) => assert_eq!(real.write_u8(*a, *v), model.write_u8(*a, *v), "{op:?}"),
        Op::WriteUint(a, v, n) => {
            assert_eq!(
                real.write_uint(*a, *v, *n),
                model.write_uint(*a, *v, *n),
                "{op:?}"
            );
        }
        Op::Poke(a, v) => {
            real.poke(*a, *v);
            model.poke(*a, *v);
        }
        Op::WriteN(a, d) => {
            let got = real.write_n(*a, d);
            // Reference: per-byte writes, stop at first fault.
            let mut want = Ok(());
            for (i, &b) in d.iter().enumerate() {
                if let Err(f) = model.write_u8(a.wrapping_add(i as u64), b) {
                    want = Err(f);
                    break;
                }
            }
            assert_eq!(got, want, "{op:?}");
        }
        Op::PokeFill(a, l, v) => {
            real.poke_fill(*a, *l, *v);
            for i in 0..*l {
                model.poke(a.wrapping_add(i), *v);
            }
        }
        Op::MapRegion(a, l, w) => {
            real.map_region(*a, *l, *w);
            model.map_region(*a, *l, *w);
        }
    }
}

/// Read-side comparison over a set of probe addresses.
fn compare_reads(real: &PagedMem, model: &RefMem, probes: &[u64]) {
    for &a in probes {
        assert_eq!(real.read_u8(a), model.read_u8(a), "read_u8 {a:#x}");
        for n in [2u64, 4, 8] {
            assert_eq!(
                real.read_uint(a, n),
                model.read_uint(a, n),
                "read_uint {a:#x} n{n}"
            );
        }
        assert_eq!(
            real.is_mapped(a, 17),
            model.is_mapped(a, 17),
            "is_mapped {a:#x}"
        );
        assert_eq!(
            real.read_for_decode(a, 16),
            model.read_for_decode(a, 16),
            "read_for_decode {a:#x}"
        );
        let mut out = [0u8; 24];
        let got = real.read_n(a, &mut out);
        let mut want_bytes = [0u8; 24];
        let mut want = Ok(());
        for i in 0..24u64 {
            match model.read_u8(a.wrapping_add(i)) {
                Ok(b) => want_bytes[i as usize] = b,
                Err(f) => {
                    want = Err(f);
                    break;
                }
            }
        }
        assert_eq!(got, want, "read_n {a:#x}");
        if want.is_ok() {
            assert_eq!(out, want_bytes, "read_n bytes {a:#x}");
        }
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(64))]

    #[test]
    fn paged_mem_matches_reference_model(
        layout in layout_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..40),
        probes in proptest::collection::vec(addr_strategy(), 8..20),
    ) {
        let mut real = PagedMem::new();
        let mut model = RefMem::default();
        for (start, len, w) in &layout {
            real.map_region(*start, *len, *w);
            model.map_region(*start, *len, *w);
        }
        for op in &ops {
            apply_both(&mut real, &mut model, op);
        }
        compare_reads(&real, &model, &probes);
        prop_assert_eq!(real.mapped_pages(), model.pages.len());
    }

    #[test]
    fn reset_equals_fresh_after_dirty_restore(
        layout in layout_strategy(),
        image in proptest::collection::vec((addr_strategy(), any::<u8>()), 1..30),
        run1 in proptest::collection::vec(op_strategy(), 1..30),
        run2 in proptest::collection::vec(op_strategy(), 1..30),
        probes in proptest::collection::vec(addr_strategy(), 8..20),
    ) {
        // Build a pristine image (loader-style), then check that a used
        // context restored by the dirty-bitset reset is observably a
        // fresh clone — including after a second, different run.
        let mut pristine = PagedMem::new();
        let mut model_pristine = RefMem::default();
        for (start, len, w) in &layout {
            pristine.map_region(*start, *len, *w);
            model_pristine.map_region(*start, *len, *w);
        }
        for (a, v) in &image {
            pristine.poke(*a, *v);
            model_pristine.poke(*a, *v);
        }
        pristine.seal_pristine();
        model_pristine.seal_pristine();

        let mut live = pristine.clone();
        let mut model_live = model_pristine.clone();
        for op in &run1 {
            apply_both(&mut live, &mut model_live, op);
        }
        live.reset_to(&pristine);
        model_live.reset_to(&model_pristine);
        compare_reads(&live, &model_live, &probes);
        // Reset state must equal a fresh clone byte-for-byte.
        let fresh = pristine.clone();
        for &a in &probes {
            prop_assert_eq!(live.read_u8(a), fresh.read_u8(a));
        }
        prop_assert_eq!(live.mapped_pages(), pristine.mapped_pages());

        // A second run over the reset context behaves like a first run.
        let mut fresh_model = model_pristine.clone();
        for op in &run2 {
            apply_both(&mut live, &mut fresh_model, op);
        }
        compare_reads(&live, &fresh_model, &probes);
    }

    #[test]
    fn taint_matches_reference_model(
        ops in proptest::collection::vec(
            (addr_strategy(), 0u64..40, 0u8..4), 1..60),
        probes in proptest::collection::vec(addr_strategy(), 8..20),
    ) {
        let tags = [Tag::CLEAN, Tag::USER, Tag::SECRET_USER, Tag::MASSAGE];
        let mut real = TaintEngine::new();
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for (i, (a, l, t)) in ops.iter().enumerate() {
            let tag = tags[*t as usize];
            if i % 3 == 0 {
                real.union_mem_range(*a, *l, tag);
                for k in 0..*l {
                    let e = model.entry(a.wrapping_add(k)).or_insert(0);
                    *e |= tag.bits();
                }
            } else {
                real.set_mem_range(*a, *l, tag);
                for k in 0..*l {
                    model.insert(a.wrapping_add(k), tag.bits());
                }
            }
        }
        for &a in &probes {
            let want = Tag::from_bits(model.get(&a).copied().unwrap_or(0));
            prop_assert_eq!(real.mem_tag(a), want);
            let mut fold = 0u8;
            for i in 0..24u64 {
                fold |= model.get(&a.wrapping_add(i)).copied().unwrap_or(0);
            }
            prop_assert_eq!(real.mem_range_tag(a, 24), Tag::from_bits(fold));
        }
        // Reset reads like fresh.
        real.reset();
        for &a in &probes {
            prop_assert_eq!(real.mem_range_tag(a, 32), Tag::CLEAN);
        }
    }

    #[test]
    fn asan_poison_matches_per_byte_semantics(
        allocs in proptest::collection::vec(1u64..200, 1..12),
        frees in proptest::collection::vec(any::<bool>(), 1..12),
        probes in proptest::collection::vec((0usize..12, -24i64..240), 8..30),
    ) {
        // Drive the allocator, then compare range verdicts against the
        // definitional per-byte check (is_poisoned(addr,1) per byte).
        let mut a = AsanEngine::new();
        let mut bases = Vec::new();
        for (i, size) in allocs.iter().enumerate() {
            let (base, _, _) = a.malloc(*size);
            bases.push(base);
            if frees.get(i).copied().unwrap_or(false) {
                a.free(base);
            }
        }
        a.poison_ret_slot(0x7ffd_0000);
        for (which, off) in &probes {
            let base = bases[*which % bases.len()];
            let addr = base.wrapping_add(*off as u64);
            for len in [1u64, 3, 8, 17] {
                let want = (0..len).any(|i| a.is_poisoned(addr.wrapping_add(i), 1));
                prop_assert_eq!(
                    a.is_poisoned(addr, len),
                    want,
                    "addr {:#x} len {}", addr, len
                );
            }
        }
    }
}
