//! Speculation-model semantics: the planted RSB and STL workloads leak
//! **iff** their model is simulated, PHT-only behavior is unchanged, and
//! model-driven runs stay deterministic.

use teapot_cc::{compile_to_binary, Options};
use teapot_core::{rewrite, RewriteOptions};
use teapot_obj::Binary;
use teapot_rt::{SpecModel, SpecModelSet, TraceEvent};
use teapot_vm::{ExitStatus, Machine, RunOptions, RunOutcome, SpecHeuristics};

fn instrumented(src: &str) -> Binary {
    let mut bin = compile_to_binary(src, &Options::gcc_like()).unwrap();
    bin.strip();
    rewrite(&bin, &RewriteOptions::default()).unwrap()
}

fn run_models(bin: &Binary, input: &[u8], models: &str) -> RunOutcome {
    let mut heur = SpecHeuristics::default();
    Machine::new(
        bin,
        RunOptions {
            input: input.to_vec(),
            models: SpecModelSet::parse(models).unwrap(),
            ..RunOptions::default()
        },
    )
    .run(&mut heur)
}

/// The OOB-index trigger input for both planted workloads: x = 20
/// lands in the 16-byte array's right redzone (poisoned but mapped —
/// the observable speculative-OOB shape).
const TRIGGER: &[u8] = &[0x14, 0x00];

#[test]
fn rsb_workload_leaks_only_under_the_rsb_model() {
    let bin = instrumented(teapot_workloads::rsb_like().plain_source().as_str());

    // PHT only (the default): the branchless mask keeps every
    // architectural and branch-speculative path in bounds.
    let pht = run_models(&bin, TRIGGER, "pht");
    assert_eq!(pht.status, ExitStatus::Exit(0));
    assert!(
        pht.gadgets.is_empty(),
        "no PHT-reachable gadget planted: {:?}",
        pht.gadgets
    );

    // RSB enabled: the stale-return misprediction leaks the raw index.
    let rsb = run_models(&bin, TRIGGER, "pht,rsb");
    assert_eq!(rsb.status, ExitStatus::Exit(0));
    assert!(!rsb.gadgets.is_empty(), "RSB gadget found");
    assert!(
        rsb.gadgets.iter().all(|g| g.key.model == SpecModel::Rsb),
        "every report attributed to the RSB model: {:?}",
        rsb.gadgets
    );

    // The model alone (without PHT) finds it too.
    let only = run_models(&bin, TRIGGER, "rsb");
    assert!(only.gadgets.iter().any(|g| g.key.model == SpecModel::Rsb));
}

#[test]
fn stl_workload_leaks_only_under_the_stl_model() {
    let bin = instrumented(teapot_workloads::stl_like().plain_source().as_str());

    let pht = run_models(&bin, TRIGGER, "pht");
    assert_eq!(pht.status, ExitStatus::Exit(0));
    assert!(
        pht.gadgets.is_empty(),
        "no PHT-reachable gadget planted: {:?}",
        pht.gadgets
    );

    let stl = run_models(&bin, TRIGGER, "pht,stl");
    assert_eq!(stl.status, ExitStatus::Exit(0));
    assert!(!stl.gadgets.is_empty(), "STL gadget found");
    assert!(
        stl.gadgets.iter().all(|g| g.key.model == SpecModel::Stl),
        "every report attributed to the STL model: {:?}",
        stl.gadgets
    );

    let only = run_models(&bin, TRIGGER, "stl");
    assert!(only.gadgets.iter().any(|g| g.key.model == SpecModel::Stl));
}

#[test]
fn cross_model_isolation_on_the_planted_workloads() {
    // The RSB workload must not fire under STL and vice versa: the
    // planted scenarios are model-specific ground truth.
    let rsb_bin = instrumented(teapot_workloads::rsb_like().plain_source().as_str());
    let stl_bin = instrumented(teapot_workloads::stl_like().plain_source().as_str());
    assert!(run_models(&rsb_bin, TRIGGER, "pht,stl").gadgets.is_empty());
    assert!(run_models(&stl_bin, TRIGGER, "pht,rsb").gadgets.is_empty());
}

#[test]
fn model_runs_are_deterministic_and_in_bounds_inputs_are_clean() {
    for (wl, models) in [
        (teapot_workloads::rsb_like(), "pht,rsb,stl"),
        (teapot_workloads::stl_like(), "pht,rsb,stl"),
    ] {
        let bin = instrumented(wl.plain_source().as_str());
        let a = run_models(&bin, TRIGGER, models);
        let b = run_models(&bin, TRIGGER, models);
        assert_eq!(a.gadgets, b.gadgets, "{} deterministic", wl.name);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.sim_entries, b.sim_entries);
        // An in-bounds index leaks nothing under any model: the stale
        // values it forwards are neither secret nor out of bounds.
        let clean = run_models(&bin, &[0x03, 0x00], models);
        assert_eq!(clean.status, ExitStatus::Exit(0));
        assert!(
            clean.gadgets.is_empty(),
            "{}: in-bounds input reported {:?}",
            wl.name,
            clean.gadgets
        );
    }
}

#[test]
fn default_options_are_pht_only_and_unchanged() {
    // RunOptions::default must be the pre-specmodel configuration: on
    // the planted RSB workload it finds nothing and opens no windows
    // beyond what PHT instrumentation drives.
    let bin = instrumented(teapot_workloads::rsb_like().plain_source().as_str());
    let mut heur = SpecHeuristics::default();
    let out = Machine::new(
        &bin,
        RunOptions {
            input: TRIGGER.to_vec(),
            ..RunOptions::default()
        },
    )
    .run(&mut heur);
    assert!(out.gadgets.is_empty());
    let explicit = run_models(&bin, TRIGGER, "pht");
    assert_eq!(out.cost, explicit.cost);
    assert_eq!(out.sim_entries, explicit.sim_entries);
}

#[test]
fn witness_trace_records_model_tagged_events() {
    let bin = instrumented(teapot_workloads::rsb_like().plain_source().as_str());
    let prog = teapot_vm::Program::shared(&bin);
    let mut ctx = teapot_vm::ExecContext::new(&prog);
    ctx.set_witness_recording(true);
    let mut heur = SpecHeuristics::default();
    let opts = RunOptions {
        input: TRIGGER.to_vec(),
        models: SpecModelSet::parse("pht,rsb").unwrap(),
        ..RunOptions::default()
    };
    Machine::with_context(&prog, &mut ctx, opts).run_stats(&mut heur);
    let rsb_entries = ctx
        .trace()
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::SpecBranch {
                    model: SpecModel::Rsb,
                    ..
                }
            )
        })
        .count();
    let rsb_rollbacks = ctx
        .trace()
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Rollback {
                    model: SpecModel::Rsb,
                    ..
                }
            )
        })
        .count();
    assert!(rsb_entries > 0, "RSB checkpoints recorded");
    assert!(rsb_rollbacks > 0, "RSB rollbacks recorded");
    // Heuristics kept per-model site counts for the return site.
    assert!(heur.sites_seen_for(SpecModel::Rsb) > 0);
    assert_eq!(heur.sites_seen_for(SpecModel::Stl), 0);
}
