//! Machine-level DIFT propagation tests: taint must follow data through
//! every architectural channel the Kasper policy depends on — registers,
//! ALU folds, memory, the stack, zeroing idioms, and FLAGS.
//!
//! Strategy: each program moves tainted input through some channel into
//! an index that drives a speculative out-of-bounds access; a `User-*`
//! report proves the taint survived, its absence proves a (deliberate)
//! break like the xor-zeroing idiom.

use teapot_asm::Assembler;
use teapot_cc::{compile_to_binary, Options};
use teapot_obj::Binary;
use teapot_vm::{ExitStatus, Machine, RunOptions, SpecHeuristics};

fn run(bin: &Binary, input: &[u8]) -> teapot_vm::RunOutcome {
    let mut heur = SpecHeuristics::default();
    Machine::new(
        bin,
        RunOptions {
            input: input.to_vec(),
            ..RunOptions::default()
        },
    )
    .run(&mut heur)
}

fn instrumented(src: &str) -> Binary {
    let mut bin = compile_to_binary(src, &Options::gcc_like()).unwrap();
    bin.strip();
    teapot_core::rewrite(&bin, &teapot_core::RewriteOptions::default()).unwrap()
}

fn user_reports(src: &str, input: &[u8]) -> usize {
    let out = run(&instrumented(src), input);
    assert!(
        matches!(out.status, ExitStatus::Exit(_)),
        "{:?}",
        out.status
    );
    out.gadgets
        .iter()
        .filter(|g| g.bucket().starts_with("User"))
        .count()
}

const PRELUDE: &str = "
    char inbuf[8];
    char bar[256];
    int sink;
";

#[test]
fn taint_flows_through_arithmetic() {
    let src = format!(
        "{PRELUDE}
         int main() {{
             char *foo = malloc(16);
             read_input(inbuf, 8);
             int i = (inbuf[0] * 2 + 6) / 2 - 3;  // still input-derived
             if (i < 10) {{ sink = bar[foo[i]]; }}
             return 0;
         }}"
    );
    assert!(user_reports(&src, &[200]) > 0);
}

#[test]
fn taint_flows_through_memory_round_trip() {
    let src = format!(
        "{PRELUDE}
         int stash;
         int main() {{
             char *foo = malloc(16);
             read_input(inbuf, 8);
             stash = inbuf[0];          // through a global
             int i = stash;
             if (i < 10) {{ sink = bar[foo[i]]; }}
             return 0;
         }}"
    );
    assert!(user_reports(&src, &[200]) > 0);
}

#[test]
fn taint_flows_through_call_arguments_and_returns() {
    let src = format!(
        "{PRELUDE}
         int identity(int x) {{ return x; }}
         int main() {{
             char *foo = malloc(16);
             read_input(inbuf, 8);
             int i = identity(identity(inbuf[0]));
             if (i < 10) {{ sink = bar[foo[i]]; }}
             return 0;
         }}"
    );
    assert!(user_reports(&src, &[200]) > 0);
}

#[test]
fn zeroing_breaks_taint() {
    // i ^ i == 0 regardless of input: the x86 zeroing idiom must clear
    // the tag, or everything downstream would be spuriously "controlled".
    let src = format!(
        "{PRELUDE}
         int main() {{
             char *foo = malloc(16);
             read_input(inbuf, 8);
             int i = inbuf[0];
             i = i ^ i;                  // clean again
             i = i + 5;
             if (i < 10) {{ sink = bar[foo[i]]; }}
             return 0;
         }}"
    );
    assert_eq!(user_reports(&src, &[200]), 0);
}

#[test]
fn untainted_indices_never_report_user() {
    let src = format!(
        "{PRELUDE}
         int main() {{
             char *foo = malloc(16);
             read_input(inbuf, 8);     // tainted but unused
             int i = 7;
             if (i < 10) {{ sink = bar[foo[i]]; }}
             return 0;
         }}"
    );
    assert_eq!(user_reports(&src, &[200]), 0);
}

#[test]
fn port_channel_requires_secret_in_flags() {
    // A branch on a SECRET (OOB-loaded) value → User-Port report;
    // a branch on merely-tainted (in-bounds) data → no Port report.
    let secret_branch = format!(
        "{PRELUDE}
         int main() {{
             char *foo = malloc(16);
             read_input(inbuf, 8);
             int i = inbuf[0];
             if (i < 10) {{
                 int s = foo[i];        // OOB under misprediction
                 if (s == 7) {{ sink = 1; }}
             }}
             return 0;
         }}"
    );
    let out = run(&instrumented(&secret_branch), &[200]);
    assert!(
        out.gadgets.iter().any(|g| g.bucket() == "User-Port"),
        "{:?}",
        out.gadgets
    );

    let tainted_branch = format!(
        "{PRELUDE}
         int main() {{
             read_input(inbuf, 8);
             if (inbuf[0] == 7) {{ sink = 1; }}   // tainted, not secret
             return 0;
         }}"
    );
    let out = run(&instrumented(&tainted_branch), &[7]);
    assert!(
        out.gadgets
            .iter()
            .all(|g| g.key.channel != teapot_rt::Channel::Port),
        "{:?}",
        out.gadgets
    );
}

#[test]
fn push_pop_preserves_taint() {
    // Hand-assembled: taint a register via memory, push/pop it, use it as
    // an OOB index under simulation.
    use teapot_isa::{sys, AccessSize, Cc, Inst, MemRef, Operand, Reg};
    let mut asm = Assembler::new("t");
    asm.bss("inbuf", 8);
    let mut f = asm.func("main");
    // foo = malloc(16)
    f.ins(Inst::MovRI {
        dst: Reg::R1,
        imm: 16,
    });
    f.ins(Inst::Syscall { num: sys::MALLOC });
    f.ins(Inst::MovRR {
        dst: Reg::R10,
        src: Reg::R0,
    });
    // read_input(inbuf, 8)
    f.lea_global(Reg::R1, "inbuf", 0);
    f.ins(Inst::MovRI {
        dst: Reg::R2,
        imm: 8,
    });
    f.ins(Inst::Syscall {
        num: sys::READ_INPUT,
    });
    // idx = inbuf[0]; push; pop
    f.load_global(Reg::R6, "inbuf", 0, AccessSize::B1, false);
    f.raw(Inst::Push { src: Reg::R6 });
    f.raw(Inst::Pop { dst: Reg::R7 });
    // if (idx < 10) secret = foo[idx]
    let out_l = f.fresh_label();
    f.ins(Inst::Cmp {
        lhs: Reg::R7,
        rhs: Operand::Imm(10),
    });
    f.jcc(Cc::Ge, out_l);
    f.ins(Inst::Load {
        dst: Reg::R8,
        mem: MemRef::base_index(Reg::R10, Reg::R7, 1),
        size: AccessSize::B1,
        sext: false,
    });
    f.bind(out_l);
    f.ins(Inst::MovRI {
        dst: Reg::R0,
        imm: 0,
    });
    f.raw(Inst::Ret);
    asm.finish_func(f).unwrap();
    let mut start = asm.func("_start");
    start.call_sym("main");
    start.ins(Inst::MovRR {
        dst: Reg::R1,
        src: Reg::R0,
    });
    start.ins(Inst::Syscall { num: sys::EXIT });
    asm.finish_func(start).unwrap();
    let mut bin = teapot_obj::Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    bin.strip();
    let inst = teapot_core::rewrite(&bin, &teapot_core::RewriteOptions::default()).unwrap();
    let out = run(&inst, &[200]);
    assert!(
        out.gadgets.iter().any(|g| g.bucket() == "User-MDS"),
        "taint must survive push/pop: {:?}",
        out.gadgets
    );
}

#[test]
fn massage_policy_can_be_disabled() {
    // DetectorConfig::artificial() turns the Massage policy off: the
    // htp-like massage chain must stay silent under it.
    let w = teapot_workloads::htp_like();
    let mut cots = w.build(&Options::gcc_like()).unwrap();
    cots.strip();
    let inst = teapot_core::rewrite(&cots, &teapot_core::RewriteOptions::default()).unwrap();
    let mut heur = SpecHeuristics::default();
    for _ in 0..20 {
        let out = Machine::new(
            &inst,
            RunOptions {
                input: w.seeds[0].clone(),
                config: teapot_rt::DetectorConfig {
                    massage_policy: false,
                    ..teapot_rt::DetectorConfig::default()
                },
                ..RunOptions::default()
            },
        )
        .run(&mut heur);
        assert!(
            out.gadgets
                .iter()
                .all(|g| !g.bucket().starts_with("Massage")),
            "{:?}",
            out.gadgets
        );
    }
}
