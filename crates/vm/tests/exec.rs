//! End-to-end VM tests with hand-assembled programs, including a manually
//! instrumented Spectre-V1 gadget that exercises the complete pipeline:
//! checkpoint → trampoline misprediction → ASan verdict → Kasper taint
//! policy → gadget report → rollback.

use teapot_asm::Assembler;
use teapot_isa::{sys, AccessSize, AluOp, Cc, Inst, MemRef, Operand, Reg};
use teapot_obj::{BinFlags, Binary, Linker};
use teapot_rt::{Channel, Controllability, TeapotMeta};
use teapot_vm::{EmuStyle, ExitStatus, Fault, Machine, MemFault, RunOptions, SpecHeuristics};

fn run(bin: &Binary, opts: RunOptions) -> teapot_vm::RunOutcome {
    let mut heur = SpecHeuristics::default();
    Machine::new(bin, opts).run(&mut heur)
}

fn exit_with(f: &mut teapot_asm::FuncAsm, reg: Reg) {
    f.ins(Inst::MovRR {
        dst: Reg::R1,
        src: reg,
    });
    f.ins(Inst::Syscall { num: sys::EXIT });
}

#[test]
fn arithmetic_and_exit_code() {
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    f.ins(Inst::MovRI {
        dst: Reg::R6,
        imm: 6,
    });
    f.ins(Inst::MovRI {
        dst: Reg::R7,
        imm: 7,
    });
    f.ins(Inst::Alu {
        op: AluOp::Mul,
        dst: Reg::R6,
        src: Operand::Reg(Reg::R7),
    });
    exit_with(&mut f, Reg::R6);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(&bin, RunOptions::default());
    assert_eq!(out.status, ExitStatus::Exit(42));
    assert!(out.cost > 0);
    assert_eq!(out.insts, 5);
}

#[test]
fn loop_with_memory() {
    // Sum 1..=10 into a stack slot.
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    let top = f.fresh_label();
    f.ins(Inst::MovRI {
        dst: Reg::R6,
        imm: 10,
    }); // i
    f.ins(Inst::StoreI {
        imm: 0,
        mem: MemRef::base_disp(Reg::SP, -8),
        size: AccessSize::B8,
    });
    f.bind(top);
    f.ins(Inst::Load {
        dst: Reg::R7,
        mem: MemRef::base_disp(Reg::SP, -8),
        size: AccessSize::B8,
        sext: false,
    });
    f.ins(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R7,
        src: Operand::Reg(Reg::R6),
    });
    f.ins(Inst::Store {
        src: Reg::R7,
        mem: MemRef::base_disp(Reg::SP, -8),
        size: AccessSize::B8,
    });
    f.ins(Inst::Alu {
        op: AluOp::Sub,
        dst: Reg::R6,
        src: Operand::Imm(1),
    });
    f.jcc(Cc::Ne, top);
    f.ins(Inst::Load {
        dst: Reg::R0,
        mem: MemRef::base_disp(Reg::SP, -8),
        size: AccessSize::B8,
        sext: false,
    });
    exit_with(&mut f, Reg::R0);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    assert_eq!(
        run(&bin, RunOptions::default()).status,
        ExitStatus::Exit(55)
    );
}

#[test]
fn call_and_return() {
    let mut asm = Assembler::new("t");
    let mut g = asm.func("add_one");
    g.ins(Inst::MovRR {
        dst: Reg::R0,
        src: Reg::R1,
    });
    g.ins(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R0,
        src: Operand::Imm(1),
    });
    g.raw(Inst::Ret);
    asm.finish_func(g).unwrap();
    let mut f = asm.func("_start");
    f.ins(Inst::MovRI {
        dst: Reg::R1,
        imm: 41,
    });
    f.call_sym("add_one");
    exit_with(&mut f, Reg::R0);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    assert_eq!(
        run(&bin, RunOptions::default()).status,
        ExitStatus::Exit(42)
    );
}

#[test]
fn division_by_zero_faults_in_normal_execution() {
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    f.ins(Inst::MovRI {
        dst: Reg::R6,
        imm: 1,
    });
    f.ins(Inst::MovRI {
        dst: Reg::R7,
        imm: 0,
    });
    f.ins(Inst::Alu {
        op: AluOp::Div,
        dst: Reg::R6,
        src: Operand::Reg(Reg::R7),
    });
    f.raw(Inst::Halt);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(&bin, RunOptions::default());
    assert!(matches!(
        out.status,
        ExitStatus::Fault(Fault::DivByZero { .. })
    ));
}

#[test]
fn unmapped_access_faults() {
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    f.ins(Inst::MovRI {
        dst: Reg::R6,
        imm: 0x6666_6666,
    });
    f.ins(Inst::Load {
        dst: Reg::R0,
        mem: MemRef::base(Reg::R6),
        size: AccessSize::B8,
        sext: false,
    });
    f.raw(Inst::Halt);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(&bin, RunOptions::default());
    assert!(matches!(
        out.status,
        ExitStatus::Fault(Fault::Mem(MemFault::Unmapped { .. }))
    ));
}

#[test]
fn writes_to_text_fault() {
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    f.lea_global(Reg::R6, "_start", 0);
    f.ins(Inst::Store {
        src: Reg::R6,
        mem: MemRef::base(Reg::R6),
        size: AccessSize::B8,
    });
    f.raw(Inst::Halt);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(&bin, RunOptions::default());
    assert!(
        matches!(
            out.status,
            ExitStatus::Fault(Fault::Mem(MemFault::ReadOnly { .. }))
        ),
        "got {:?}",
        out.status
    );
}

#[test]
fn read_input_and_write_output() {
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    // buf = sp-64; n = read_input(buf, 16); write(buf, n); exit(n)
    f.ins(Inst::Lea {
        dst: Reg::R1,
        mem: MemRef::base_disp(Reg::SP, -64),
    });
    f.ins(Inst::MovRI {
        dst: Reg::R2,
        imm: 16,
    });
    f.ins(Inst::Syscall {
        num: sys::READ_INPUT,
    });
    f.ins(Inst::MovRR {
        dst: Reg::R9,
        src: Reg::R0,
    });
    f.ins(Inst::Lea {
        dst: Reg::R1,
        mem: MemRef::base_disp(Reg::SP, -64),
    });
    f.ins(Inst::MovRR {
        dst: Reg::R2,
        src: Reg::R9,
    });
    f.ins(Inst::Syscall { num: sys::WRITE });
    exit_with(&mut f, Reg::R9);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(
        &bin,
        RunOptions {
            input: b"hello".to_vec(),
            ..RunOptions::default()
        },
    );
    assert_eq!(out.status, ExitStatus::Exit(5));
    assert_eq!(out.output, b"hello");
}

#[test]
fn malloc_free_round_trip() {
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    f.ins(Inst::MovRI {
        dst: Reg::R1,
        imm: 64,
    });
    f.ins(Inst::Syscall { num: sys::MALLOC });
    f.ins(Inst::MovRR {
        dst: Reg::R9,
        src: Reg::R0,
    });
    // store + reload through the heap pointer
    f.ins(Inst::MovRI {
        dst: Reg::R6,
        imm: 1234,
    });
    f.ins(Inst::Store {
        src: Reg::R6,
        mem: MemRef::base(Reg::R9),
        size: AccessSize::B8,
    });
    f.ins(Inst::Load {
        dst: Reg::R7,
        mem: MemRef::base(Reg::R9),
        size: AccessSize::B8,
        sext: false,
    });
    f.ins(Inst::MovRR {
        dst: Reg::R1,
        src: Reg::R9,
    });
    f.ins(Inst::Syscall { num: sys::FREE });
    exit_with(&mut f, Reg::R7);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(&bin, RunOptions::default());
    assert_eq!(out.status, ExitStatus::Exit(1234));
}

/// Builds a manually instrumented Spectre-V1 victim equivalent to the
/// paper's Listing 1 + Figure 4, with Real and Shadow copies laid out by
/// hand and a `.teapot.meta` note wired up.
///
/// foo has SIZE=8 elements; foo[idx] is guarded by `idx < 8`. The shadow
/// copy reads foo[idx] after the trampoline forces the wrong path, then
/// uses the loaded value as an index into bar (the transmitter).
fn spectre_v1_binary(nested: bool) -> Binary {
    let mut asm = Assembler::new("v1");
    // foo: 8 in-bounds elements; adjacent "secret" data follows in .data.
    asm.data("foo", &[1u8; 8]);
    asm.data("secret", &[0x41u8; 64]);
    asm.data("bar", &[0u8; 64]);
    // Input buffer the driver reads into (tainted USER by read_input).
    asm.bss("inbuf", 16);

    // --- Real copy: _start reads input, bounds-checks, indexes foo.
    let mut f = asm.func("_start");
    let ok = f.fresh_label();
    let out = f.fresh_label();
    let tramp = f.fresh_label();
    let shadow_ok = f.fresh_label();
    let shadow_out = f.fresh_label();

    f.lea_global(Reg::R1, "inbuf", 0);
    f.ins(Inst::MovRI {
        dst: Reg::R2,
        imm: 8,
    });
    f.ins(Inst::Syscall {
        num: sys::READ_INPUT,
    });
    // idx = first input byte
    f.load_global(Reg::R6, "inbuf", 0, AccessSize::B1, false);
    f.ins(Inst::Cmp {
        lhs: Reg::R6,
        rhs: Operand::Imm(8),
    });
    f.sim_start(tramp);
    f.jcc(Cc::B, ok);
    f.jmp(out);
    f.bind(ok);
    // In-bounds real access.
    f.load_global_indexed(Reg::R7, "foo", Reg::R6, 1, AccessSize::B1, false);
    f.bind(out);
    f.ins(Inst::MovRI {
        dst: Reg::R1,
        imm: 0,
    });
    f.ins(Inst::Syscall { num: sys::EXIT });

    // --- Trampoline (same condition, swapped targets — paper §5.2).
    f.bind(tramp);
    f.jcc(Cc::B, shadow_out); // mispredict: taken-in-real goes to "out"
    f.jmp(shadow_ok);

    // --- Shadow copy of the `ok` path, with policy instrumentation.
    f.bind(shadow_ok);
    if nested {
        // A second conditional branch inside the speculative window.
        let t2 = f.fresh_label();
        let after = f.fresh_label();
        f.ins(Inst::Cmp {
            lhs: Reg::R6,
            rhs: Operand::Imm(200),
        });
        f.sim_start(t2);
        f.jcc(Cc::B, after);
        f.jmp(after);
        f.bind(t2);
        f.jcc(Cc::B, after);
        f.jmp(after);
        f.bind(after);
    }
    f.ins(Inst::AsanCheck {
        mem: MemRef {
            base: None,
            index: Some(Reg::R6),
            scale: 1,
            disp: 0,
        },
        size: AccessSize::B1,
        is_write: false,
    });
    // L1: load secret = foo[idx] (idx attacker-controlled, OOB for idx>=8;
    // foo's 8 bytes are followed by `secret` in .data).
    f.load_global_indexed(Reg::R7, "foo", Reg::R6, 1, AccessSize::B1, false);
    f.raw(Inst::TagProp);
    // L2: transmit: bar[secret]
    f.ins(Inst::AsanCheck {
        mem: MemRef {
            base: None,
            index: Some(Reg::R7),
            scale: 1,
            disp: 0,
        },
        size: AccessSize::B1,
        is_write: false,
    });
    f.load_global_indexed(Reg::R8, "bar", Reg::R7, 1, AccessSize::B1, false);
    f.raw(Inst::SimCheck);
    f.bind(shadow_out);
    f.raw(Inst::SimEnd);
    // Unreachable tail: if sim ended we never get here.
    f.raw(Inst::Halt);

    asm.finish_func(f).unwrap();
    let flags = BinFlags {
        instrumented: true,
        asan: true,
        dift: true,
        nested_speculation: nested,
        single_copy: false,
    };
    let mut bin = Linker::new()
        .flags(flags)
        .add_object(asm.finish())
        .link("_start")
        .unwrap();

    // Hand-built metadata: everything is one function here, so mark the
    // whole text as both "real" (before tramp) and shadow (after).
    let text = bin.section(".text").unwrap();
    let tramp_off = text.bytes.len();
    let _ = tramp_off;
    let (lo, hi) = (text.vaddr, text.end());
    // The trampoline label is not directly recoverable here; approximate
    // the real/shadow split at the `exit` syscall (end of real path).
    // For this hand-made test we treat the full range as shadow-legal and
    // no real range, which disables the escape safety net.
    let meta = TeapotMeta {
        real_range: (0, 0),
        shadow_range: (lo, hi),
        indirect_map: vec![],
        addr_map: vec![],
    };
    bin.sections.push(teapot_obj::LoadedSection {
        name: ".teapot.meta".into(),
        kind: teapot_obj::SectionKind::Note,
        vaddr: 0,
        bytes: meta.to_bytes(),
        mem_size: 0,
    });
    bin
}

#[test]
fn spectre_v1_gadget_detected_with_kasper_policy() {
    let bin = spectre_v1_binary(false);
    // Out-of-bounds index 40: foo[40] reaches the `secret` data.
    let out = run(
        &bin,
        RunOptions {
            input: vec![40],
            ..RunOptions::default()
        },
    );
    assert_eq!(out.status, ExitStatus::Exit(0), "program exits cleanly");
    assert!(out.sim_entries >= 1, "simulation entered");
    assert!(out.rollbacks >= 1, "simulation rolled back");
    let buckets: Vec<String> = out.gadgets.iter().map(|g| g.bucket()).collect();
    // MDS: the secret was loaded. Cache: it composed the bar[] address.
    assert!(
        buckets.iter().any(|b| b == "User-MDS"),
        "expected User-MDS, got {buckets:?}"
    );
    assert!(
        buckets.iter().any(|b| b == "User-Cache"),
        "expected User-Cache, got {buckets:?}"
    );
    // Architectural state was fully restored: exit code unaffected.
}

#[test]
fn in_bounds_input_produces_no_gadget() {
    let bin = spectre_v1_binary(false);
    let out = run(
        &bin,
        RunOptions {
            input: vec![3],
            ..RunOptions::default()
        },
    );
    assert_eq!(out.status, ExitStatus::Exit(0));
    // Simulation still happens (the branch is simulated), but the access
    // foo[3] is in bounds: no ASan verdict, no secret, no report.
    assert!(out.sim_entries >= 1);
    assert!(
        out.gadgets.is_empty(),
        "unexpected gadgets: {:?}",
        out.gadgets
    );
}

#[test]
fn rollback_restores_architectural_state() {
    // The shadow path writes R7/R8; after rollback the real path must see
    // pristine registers. We verify by exiting with R7's value.
    let mut asm = Assembler::new("t");
    asm.data("arr", &[9u8; 8]);
    let mut f = asm.func("_start");
    let tramp = f.fresh_label();
    let real_done = f.fresh_label();
    let shadow = f.fresh_label();
    f.ins(Inst::MovRI {
        dst: Reg::R7,
        imm: 77,
    });
    f.ins(Inst::MovRI {
        dst: Reg::R6,
        imm: 1,
    });
    f.ins(Inst::Cmp {
        lhs: Reg::R6,
        rhs: Operand::Imm(0),
    });
    f.sim_start(tramp);
    f.jcc(Cc::Ne, real_done);
    f.bind(real_done);
    exit_with(&mut f, Reg::R7);
    f.bind(tramp);
    f.jcc(Cc::Ne, shadow); // inverted entry
    f.bind(shadow);
    f.ins(Inst::MovRI {
        dst: Reg::R7,
        imm: 0,
    }); // clobber
    f.store_global(Reg::R7, "arr", 0, AccessSize::B8); // memory side effect
    f.raw(Inst::SimEnd);
    f.raw(Inst::Halt);
    asm.finish_func(f).unwrap();
    let flags = BinFlags {
        instrumented: true,
        asan: false,
        dift: false,
        nested_speculation: false,
        single_copy: true, // no meta: treat as single copy, no escape net
    };
    let bin = Linker::new()
        .flags(flags)
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(&bin, RunOptions::default());
    assert_eq!(out.status, ExitStatus::Exit(77));
    assert_eq!(out.rollbacks, 1);
}

#[test]
fn nested_speculation_reaches_deeper_gadgets() {
    let bin = spectre_v1_binary(true);
    let out = run(
        &bin,
        RunOptions {
            input: vec![40],
            ..RunOptions::default()
        },
    );
    assert!(out.gadgets.iter().any(|g| g.bucket() == "User-MDS"));
    // With nesting on, at least one nested entry happened (depth 2).
    assert!(out.sim_entries >= 2, "sim entries: {}", out.sim_entries);
}

#[test]
fn spectaint_emulation_finds_v1_pattern_without_instrumentation() {
    // Uninstrumented victim: bounds check + dependent double load.
    let mut asm = Assembler::new("t");
    asm.data("foo", &[1u8; 8]);
    asm.data("secret", &[0x41u8; 64]);
    asm.data("bar", &[0u8; 256]);
    asm.bss("inbuf", 16);
    let mut f = asm.func("_start");
    let ok = f.fresh_label();
    let out = f.fresh_label();
    f.lea_global(Reg::R1, "inbuf", 0);
    f.ins(Inst::MovRI {
        dst: Reg::R2,
        imm: 8,
    });
    f.ins(Inst::Syscall {
        num: sys::READ_INPUT,
    });
    f.load_global(Reg::R6, "inbuf", 0, AccessSize::B1, false);
    f.ins(Inst::Cmp {
        lhs: Reg::R6,
        rhs: Operand::Imm(8),
    });
    f.jcc(Cc::B, ok);
    f.jmp(out);
    f.bind(ok);
    f.load_global_indexed(Reg::R7, "foo", Reg::R6, 1, AccessSize::B1, false);
    f.load_global_indexed(Reg::R8, "bar", Reg::R7, 1, AccessSize::B1, false);
    f.bind(out);
    f.ins(Inst::MovRI {
        dst: Reg::R1,
        imm: 0,
    });
    f.ins(Inst::Syscall { num: sys::EXIT });
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();

    let out = run(
        &bin,
        RunOptions {
            input: vec![40],
            emu: EmuStyle::SpecTaint,
            ..RunOptions::default()
        },
    );
    assert_eq!(out.status, ExitStatus::Exit(0));
    assert!(
        out.gadgets
            .iter()
            .any(|g| g.key.channel == Channel::Cache
                && g.key.controllability == Controllability::User),
        "SpecTaint should flag the transmission: {:?}",
        out.gadgets
    );
    // Emulation cost must dwarf native cost for the same program.
    let native = run(
        &bin,
        RunOptions {
            input: vec![40],
            ..RunOptions::default()
        },
    );
    assert!(out.cost > native.cost * 20);
}

#[test]
fn spectaint_five_tries_heuristic_limits_simulation() {
    // A loop executes the same branch 50 times; SpecTaint simulates it at
    // most 5 times, Teapot-style heuristics every time.
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    let top = f.fresh_label();
    f.ins(Inst::MovRI {
        dst: Reg::R6,
        imm: 50,
    });
    f.bind(top);
    f.ins(Inst::Alu {
        op: AluOp::Sub,
        dst: Reg::R6,
        src: Operand::Imm(1),
    });
    f.jcc(Cc::Ne, top);
    f.ins(Inst::MovRI {
        dst: Reg::R1,
        imm: 0,
    });
    f.ins(Inst::Syscall { num: sys::EXIT });
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let mut heur = SpecHeuristics::new(teapot_vm::HeurStyle::SpecTaintFive);
    let out = Machine::new(
        &bin,
        RunOptions {
            emu: EmuStyle::SpecTaint,
            ..RunOptions::default()
        },
    )
    .run(&mut heur);
    assert_eq!(out.status, ExitStatus::Exit(0));
    assert_eq!(out.sim_entries, 5);
}

#[test]
fn fuel_limit_stops_runaway_programs() {
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    let top = f.fresh_label();
    f.bind(top);
    f.jmp(top);
    asm.finish_func(f).unwrap();
    let bin = Linker::new()
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(
        &bin,
        RunOptions {
            fuel: 10_000,
            ..RunOptions::default()
        },
    );
    assert_eq!(out.status, ExitStatus::OutOfFuel);
    assert!(out.cost >= 10_000);
}

#[test]
fn guard_instructions_cost_more_than_nothing() {
    // Two identical programs, one with `guard` noise: the guarded one
    // must cost more — the effect Speculation Shadows removes.
    let build = |guards: bool| {
        let mut asm = Assembler::new("t");
        let mut f = asm.func("_start");
        for _ in 0..100 {
            if guards {
                f.raw(Inst::Guard);
            }
            f.ins(Inst::Alu {
                op: AluOp::Add,
                dst: Reg::R6,
                src: Operand::Imm(1),
            });
        }
        f.ins(Inst::MovRI {
            dst: Reg::R1,
            imm: 0,
        });
        f.ins(Inst::Syscall { num: sys::EXIT });
        asm.finish_func(f).unwrap();
        Linker::new()
            .add_object(asm.finish())
            .link("_start")
            .unwrap()
    };
    let plain = run(&build(false), RunOptions::default());
    let guarded = run(&build(true), RunOptions::default());
    assert_eq!(plain.status, ExitStatus::Exit(0));
    assert_eq!(guarded.status, ExitStatus::Exit(0));
    assert_eq!(
        guarded.cost - plain.cost,
        100 * teapot_rt::cost::GUARD,
        "guard overhead is exactly the modeled cost"
    );
}

#[test]
fn coverage_maps_distinguish_normal_and_speculative() {
    let mut asm = Assembler::new("t");
    let mut f = asm.func("_start");
    let tramp = f.fresh_label();
    let done = f.fresh_label();
    let shadow = f.fresh_label();
    f.ins(Inst::CovTrace { guard: 1 });
    f.ins(Inst::MovRI {
        dst: Reg::R6,
        imm: 1,
    });
    f.ins(Inst::Cmp {
        lhs: Reg::R6,
        rhs: Operand::Imm(0),
    });
    f.sim_start(tramp);
    f.jcc(Cc::Ne, done);
    f.bind(done);
    f.ins(Inst::MovRI {
        dst: Reg::R1,
        imm: 0,
    });
    f.ins(Inst::Syscall { num: sys::EXIT });
    f.bind(tramp);
    f.jcc(Cc::Ne, shadow);
    f.bind(shadow);
    f.ins(Inst::CovNote { guard: 2 });
    f.raw(Inst::SimEnd);
    f.raw(Inst::Halt);
    asm.finish_func(f).unwrap();
    let flags = BinFlags {
        instrumented: true,
        single_copy: true,
        ..BinFlags::default()
    };
    let bin = Linker::new()
        .flags(flags)
        .add_object(asm.finish())
        .link("_start")
        .unwrap();
    let out = run(&bin, RunOptions::default());
    assert_eq!(out.status, ExitStatus::Exit(0));
    assert_eq!(out.cov_normal.get(1), 1);
    assert_eq!(out.cov_spec.get(2), 1, "lazy note flushed at rollback");
    assert_eq!(out.cov_normal.get(2), 0);
}
