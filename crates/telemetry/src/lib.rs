//! `teapot-telemetry` — zero-perturbation observability for the whole
//! Teapot pipeline: VM counters, campaign/triage tracing, a guest
//! hot-site profiler, and a machine-readable metrics stream.
//!
//! The non-negotiable invariant (the telemetry extension of the witness
//! recorder's contract) is **zero perturbation**: enabling telemetry
//! never changes what the pipeline computes. Campaign JSON, triage
//! JSONL, ranked text and SARIF are byte-identical with and without
//! `--metrics`, for every speculation-model set and worker count
//! (pinned by `tests/telemetry_differential.rs`). The design that makes
//! this trivially true: the VM *counts always* — plain integer
//! increments whose values never feed back into execution — and
//! telemetry-on differs only in *emission* (the JSONL stream, the
//! stderr heartbeat, the per-block profile). Wall-clock time appears
//! only in telemetry output, never in reports.
//!
//! # The metrics JSONL schema
//!
//! `teapot campaign --metrics out.jsonl` (and `teapot triage
//! --metrics`) stream one **flat** JSON object per line — no nested
//! arrays or objects, so line-oriented tools (and `teapot stats`) can
//! consume the file without a full JSON parser. Every line carries an
//! `"event"` key; the first line is always `meta` with `"schema": 1`.
//! Wall-clock fields are suffixed `_ms` and are the only
//! non-deterministic values in the stream.
//!
//! | event | keys |
//! |---|---|
//! | `meta` | `schema`, `binary`, `seed`, `shards`, `epochs`, `iters_per_epoch`, `models`, `workers`, `compiled_records`, `compiled_fused`, `heuristic_sites` |
//! | `span` | `name` (`decode` \| `campaign` \| `triage` \| `explain`), `wall_ms` |
//! | `epoch` | `epoch`, `wall_ms`, `execs`, `corpus`, `unique_gadgets` (campaign-wide totals) |
//! | `shard` | `epoch`, `shard`, `execs` (delta this epoch), `corpus`, `cov_normal`, `cov_spec`, `gadgets` |
//! | `gadget_first_seen` | `shard`, `exec` (1-based ordinal within the shard), `pc`, `model` |
//! | `vm` | `shard` + one key per [`VmCounters`] field (see [`VmCounters::for_each`]); the `t_prov_*` trio counts provenance-replay work (origin bytes written, interval folds, leak sites) and is zero on campaign runs |
//! | `counters` | the merged registry snapshot: one key per registered counter, summed over shards |
//! | `cost_hist` | `shard`, then `b<k>` = number of runs whose cost had `ilog2 == k` |
//! | `hot_block` | `rank`, `pc`, `end`, `orig_pc`, `symbol` (or `null`), `cost`, `insts`, `hits` |
//! | `triage` | `replays`, `minimize_steps`, `witnesses`, `replay_failures`, `dedup_collapses`, `root_causes`, `replay_ms`, `minimize_ms` |
//! | `fabric` | `op` (`lease` \| `worker_dead` \| `merge` \| `quarantine` \| `rejoin` \| `checkpoint` \| `checkpoint_fault`); for `lease`: `worker`, `shards`, `epoch`, `phase`, `bytes`; for `worker_dead`: `worker` (name), `epoch`; for `merge`: `epoch`, `deltas`, `bytes`, `wall_ms`; for `quarantine` (a connection condemned for a malformed frame): `worker`, `error`; for `rejoin` (a worker reconnecting after the fleet assembled): `worker`; for `checkpoint`: `epoch`; for `checkpoint_fault` (an injected failed/torn `.tcs` write): `kind` (`fail` \| `short`), `epoch` |
//! | `summary` | `wall_ms`, `execs`, `execs_per_sec`, `unique_gadgets`, `time_to_first_gadget_execs` (or `null`) |
//!
//! `time_to_first_gadget_execs` is deterministic by construction: it is
//! the minimum over shards of the 1-based execution ordinal at which
//! the shard first reported a gadget — a pure function of the campaign
//! seed, never of worker count or wall-clock.

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Names of the three speculation models, in [`VmCounters`] array
/// index order (the order `teapot-specmodel` assigns model bits).
pub const MODEL_NAMES: [&str; 3] = ["pht", "rsb", "stl"];

/// Accumulated VM execution counters.
///
/// The VM increments plain (non-atomic) per-run counters on its hot
/// paths and folds them into the context's `VmCounters` accumulator at
/// the end of every run; slab-level counters (TLB, page allocation)
/// accumulate on the context-owned page slabs and are merged in by
/// [`teapot-vm`]'s snapshot accessor. Counting is unconditional —
/// telemetry-off merely never *reads* the values — which is what makes
/// the zero-perturbation invariant structural rather than aspirational.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VmCounters {
    /// Software-TLB hits across guest memory and both shadows.
    pub tlb_hits: u64,
    /// Software-TLB misses (region-table walks).
    pub tlb_misses: u64,
    /// Slab pages materialized (first touch of an absent page).
    pub pages_allocated: u64,
    /// Live-decode icache hits in the across-runs (read-only) tier.
    pub icache_ro_hits: u64,
    /// Live-decode icache hits in the per-run tier.
    pub icache_run_hits: u64,
    /// Instructions decoded live (both-tier icache misses).
    pub live_decodes: u64,
    /// Instructions retired through template-compiled record dispatch
    /// (the fastest tier: pre-resolved operands, zero per-pass decode).
    pub compiled_insts: u64,
    /// Compiled windows exited early (divergence or fault fallback to
    /// the per-step interpreter).
    pub compiled_exits: u64,
    /// Instructions retired through block-slice superinstruction
    /// dispatch.
    pub slice_insts: u64,
    /// Instructions retired one `step()` at a time.
    pub step_insts: u64,
    /// Speculation checkpoints pushed, per model (see [`MODEL_NAMES`]).
    pub checkpoints: [u64; 3],
    /// Rollbacks executed, per model of the rolled-back window.
    pub rollbacks: [u64; 3],
    /// Windows squashed by the ROB instruction budget, per model.
    pub rob_stops: [u64; 3],
    /// Memory-log bytes replayed by rollbacks.
    pub memlog_bytes_replayed: u64,
    /// Origin-shadow bytes written on provenance replays (`t_prov_bytes`;
    /// zero on campaign runs, where the origin shadow is disabled).
    pub prov_bytes: u64,
    /// Origin-interval folds (load/pop byte-range joins) on provenance
    /// replays (`t_prov_folds`).
    pub prov_folds: u64,
    /// `LeakSite` events recorded on provenance replays (`t_prov_leaks`).
    pub prov_leaks: u64,
}

impl VmCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &VmCounters) {
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.pages_allocated += other.pages_allocated;
        self.icache_ro_hits += other.icache_ro_hits;
        self.icache_run_hits += other.icache_run_hits;
        self.live_decodes += other.live_decodes;
        self.compiled_insts += other.compiled_insts;
        self.compiled_exits += other.compiled_exits;
        self.slice_insts += other.slice_insts;
        self.step_insts += other.step_insts;
        for i in 0..3 {
            self.checkpoints[i] += other.checkpoints[i];
            self.rollbacks[i] += other.rollbacks[i];
            self.rob_stops[i] += other.rob_stops[i];
        }
        self.memlog_bytes_replayed += other.memlog_bytes_replayed;
        self.prov_bytes += other.prov_bytes;
        self.prov_folds += other.prov_folds;
        self.prov_leaks += other.prov_leaks;
    }

    /// Visits every counter as a `(name, value)` pair in the one
    /// canonical order shared by the registry, the `vm` metrics event
    /// and `teapot stats` — so the schema cannot drift between them.
    pub fn for_each(&self, mut f: impl FnMut(&str, u64)) {
        f("tlb_hits", self.tlb_hits);
        f("tlb_misses", self.tlb_misses);
        f("pages_allocated", self.pages_allocated);
        f("icache_ro_hits", self.icache_ro_hits);
        f("icache_run_hits", self.icache_run_hits);
        f("live_decodes", self.live_decodes);
        f("compiled_insts", self.compiled_insts);
        f("compiled_exits", self.compiled_exits);
        f("slice_insts", self.slice_insts);
        f("step_insts", self.step_insts);
        for (i, m) in MODEL_NAMES.iter().enumerate() {
            f(&format!("checkpoints_{m}"), self.checkpoints[i]);
        }
        for (i, m) in MODEL_NAMES.iter().enumerate() {
            f(&format!("rollbacks_{m}"), self.rollbacks[i]);
        }
        for (i, m) in MODEL_NAMES.iter().enumerate() {
            f(&format!("rob_stops_{m}"), self.rob_stops[i]);
        }
        f("memlog_bytes_replayed", self.memlog_bytes_replayed);
        f("t_prov_bytes", self.prov_bytes);
        f("t_prov_folds", self.prov_folds);
        f("t_prov_leaks", self.prov_leaks);
    }
}

/// Id of a counter registered in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// A lock-free registry of sharded counters.
///
/// Counters are registered once (single-threaded setup), then any
/// number of threads may [`Registry::add`] to their own shard's cells
/// concurrently — each `(shard, counter)` pair is an independent
/// [`AtomicU64`], so there is no contention between shards and no lock
/// anywhere. [`Registry::snapshot`] sums across shards in registration
/// order, which makes the snapshot a pure function of the *values
/// added*, independent of thread interleaving (pinned by a unit test
/// below).
pub struct Registry {
    names: Vec<String>,
    shards: usize,
    /// Shard-major: `cells[shard * names.len() + counter]`.
    cells: Vec<AtomicU64>,
}

impl Registry {
    /// A registry with `shards` independent cell banks.
    pub fn new(shards: usize) -> Registry {
        Registry {
            names: Vec::new(),
            shards: shards.max(1),
            cells: Vec::new(),
        }
    }

    /// Registers a named counter (setup phase, before concurrent use).
    /// Re-registering a name returns the existing id.
    pub fn register(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.names.push(name.to_string());
        self.cells
            .resize_with(self.names.len() * self.shards, AtomicU64::default);
        CounterId(self.names.len() - 1)
    }

    /// Adds `v` to a counter in `shard`'s bank. Relaxed ordering: the
    /// values are statistics, snapshot consistency comes from reading
    /// after the writer threads joined.
    pub fn add(&self, shard: usize, id: CounterId, v: u64) {
        let w = self.names.len();
        let cell = &self.cells[(shard % self.shards) * w + id.0];
        cell.fetch_add(v, Ordering::Relaxed);
    }

    /// `(name, value)` pairs in registration order, each value summed
    /// over shards.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let w = self.names.len();
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let total = (0..self.shards)
                    .map(|s| self.cells[s * w + i].load(Ordering::Relaxed))
                    .sum();
                (n.clone(), total)
            })
            .collect()
    }
}

/// A log2-bucketed histogram: `buckets[k]` counts samples whose value
/// has `ilog2 == k` (`buckets[0]` also takes zero). Recording is one
/// relaxed atomic add, so a shared histogram is safe from any thread.
pub struct Histogram {
    buckets: [AtomicU64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0u64; 65].map(AtomicU64::new),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let k = if v == 0 { 0 } else { v.ilog2() as usize + 1 };
        self.buckets[k].fetch_add(1, Ordering::Relaxed);
    }

    /// Bucket counts; index `k > 0` holds samples in `[2^(k-1), 2^k)`.
    pub fn snapshot(&self) -> [u64; 65] {
        let mut out = [0u64; 65];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }
}

/// Attributes executed cost to guest basic blocks (the hot-site
/// profiler). Spans come from the predecoded `Program`'s block table
/// (sorted, non-overlapping). When the whole code span is compact
/// (≤ [`BlockProfile::MAX_INDEX_SPAN`] bytes — always, for rewritten
/// `.tof` binaries) attribution is a single indexed load from a
/// byte→block table; otherwise it falls back to one `partition_point`
/// behind a last-block cache. Keeping `record` O(1) is what keeps the
/// profiler inside the CI telemetry-overhead budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    starts: Vec<u64>,
    ends: Vec<u64>,
    /// Per-block `[cost, insts, hits]`, one row so a `record` touches
    /// one cache line instead of three parallel arrays.
    rows: Vec<[u64; 3]>,
    /// Cost attributed to no block (runtime stubs, undecoded bytes).
    pub other_cost: u64,
    /// Instructions attributed to no block.
    pub other_insts: u64,
    last: usize,
    /// First block's start address (base of `index`).
    base: u64,
    /// `index[pc - base]` = block index + 1, 0 = no block; empty when
    /// the code span exceeds [`BlockProfile::MAX_INDEX_SPAN`].
    index: Vec<u32>,
}

/// One row of [`BlockProfile::top`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotBlock {
    /// Block start address (rewritten coordinates).
    pub start: u64,
    /// Block end address (exclusive).
    pub end: u64,
    /// Cost units attributed to the block.
    pub cost: u64,
    /// Instructions attributed to the block.
    pub insts: u64,
    /// Dispatch visits that started in the block.
    pub hits: u64,
}

impl BlockProfile {
    /// Largest code span (bytes) the O(1) byte→block table is built
    /// for; 4 MiB of `u32` slots. Larger programs use the search path.
    pub const MAX_INDEX_SPAN: u64 = 1 << 20;

    /// A zeroed profile over `blocks` (sorted `(start, end)` spans).
    pub fn new(blocks: &[(u64, u64)]) -> BlockProfile {
        let (base, index) = match (blocks.first(), blocks.last()) {
            (Some(&(lo, _)), Some(&(_, hi)))
                if hi > lo && hi - lo <= BlockProfile::MAX_INDEX_SPAN =>
            {
                let mut index = vec![0u32; (hi - lo) as usize];
                for (i, &(bs, be)) in blocks.iter().enumerate() {
                    for slot in &mut index[(bs - lo) as usize..(be - lo) as usize] {
                        *slot = i as u32 + 1;
                    }
                }
                (lo, index)
            }
            _ => (0, Vec::new()),
        };
        BlockProfile {
            starts: blocks.iter().map(|b| b.0).collect(),
            ends: blocks.iter().map(|b| b.1).collect(),
            rows: vec![[0; 3]; blocks.len()],
            other_cost: 0,
            other_insts: 0,
            last: 0,
            base,
            index,
        }
    }

    /// Whether this profile was built over the same block table.
    pub fn same_blocks(&self, blocks: &[(u64, u64)]) -> bool {
        self.starts.len() == blocks.len()
            && blocks
                .iter()
                .enumerate()
                .all(|(i, b)| self.starts[i] == b.0 && self.ends[i] == b.1)
    }

    /// Attributes `cost`/`insts` executed starting at `pc` to the block
    /// containing `pc`.
    #[inline]
    pub fn record(&mut self, pc: u64, cost: u64, insts: u64) {
        if cost == 0 && insts == 0 {
            return;
        }
        if !self.index.is_empty() {
            let off = pc.wrapping_sub(self.base);
            let slot = match self.index.get(off as usize) {
                Some(&s) => s,
                None => 0,
            };
            if slot > 0 {
                let row = &mut self.rows[(slot - 1) as usize];
                row[0] += cost;
                row[1] += insts;
                row[2] += 1;
            } else {
                self.other_cost += cost;
                self.other_insts += insts;
            }
            return;
        }
        let i = self.last;
        if i < self.starts.len() && self.starts[i] <= pc && pc < self.ends[i] {
            let row = &mut self.rows[i];
            row[0] += cost;
            row[1] += insts;
            row[2] += 1;
            return;
        }
        let p = self.starts.partition_point(|&s| s <= pc);
        if p > 0 && pc < self.ends[p - 1] {
            self.last = p - 1;
            let row = &mut self.rows[p - 1];
            row[0] += cost;
            row[1] += insts;
            row[2] += 1;
        } else {
            self.other_cost += cost;
            self.other_insts += insts;
        }
    }

    /// Accumulates another profile over the same block table.
    pub fn merge(&mut self, other: &BlockProfile) {
        debug_assert_eq!(self.starts.len(), other.starts.len());
        for i in 0..self.rows.len().min(other.rows.len()) {
            for k in 0..3 {
                self.rows[i][k] += other.rows[i][k];
            }
        }
        self.other_cost += other.other_cost;
        self.other_insts += other.other_insts;
    }

    /// Total cost recorded (blocks + other).
    pub fn total_cost(&self) -> u64 {
        self.rows.iter().map(|r| r[0]).sum::<u64>() + self.other_cost
    }

    /// The `n` hottest blocks by cost (ties broken by address), hottest
    /// first. Blocks never executed are excluded.
    pub fn top(&self, n: usize) -> Vec<HotBlock> {
        let mut rows: Vec<HotBlock> = (0..self.starts.len())
            .filter(|&i| self.rows[i][0] > 0 || self.rows[i][1] > 0)
            .map(|i| HotBlock {
                start: self.starts[i],
                end: self.ends[i],
                cost: self.rows[i][0],
                insts: self.rows[i][1],
                hits: self.rows[i][2],
            })
            .collect();
        rows.sort_by(|a, b| (b.cost, a.start).cmp(&(a.cost, b.start)));
        rows.truncate(n);
        rows
    }
}

/// Wall-clock span timer. Values from it may only ever be written into
/// telemetry output (`*_ms` fields) — never into reports.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Milliseconds elapsed.
    pub fn ms(&self) -> u64 {
        self.0.elapsed().as_millis() as u64
    }

    /// Seconds elapsed.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Builder for one flat metrics event (one JSONL line).
pub struct Event {
    buf: String,
}

impl Event {
    /// Starts an event of the given kind (`{"event":"<kind>"`).
    pub fn new(kind: &str) -> Event {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"event\":\"");
        buf.push_str(kind);
        buf.push('"');
        Event { buf }
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, v: u64) -> Event {
        self.push_key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (3 decimal places, deterministic format).
    pub fn fnum(mut self, key: &str, v: f64) -> Event {
        self.push_key(key);
        self.buf.push_str(&format!("{v:.3}"));
        self
    }

    /// Adds a hex-rendered address field (as a JSON string).
    pub fn hex(mut self, key: &str, v: u64) -> Event {
        self.push_key(key);
        self.buf.push_str(&format!("\"{v:#x}\""));
        self
    }

    /// Adds a string field (escaped).
    pub fn str_field(mut self, key: &str, v: &str) -> Event {
        self.push_key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an optional integer field (`null` when absent).
    pub fn opt_num(mut self, key: &str, v: Option<u64>) -> Event {
        self.push_key(key);
        match v {
            Some(v) => self.buf.push_str(&v.to_string()),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds an optional string field (`null` when absent).
    pub fn opt_str(self, key: &str, v: Option<&str>) -> Event {
        match v {
            Some(s) => self.str_field(key, s),
            None => {
                let mut e = self;
                e.push_key(key);
                e.buf.push_str("null");
                e
            }
        }
    }

    fn push_key(&mut self, key: &str) {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    /// The finished JSON line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Minimal JSON string escaping (mirrors the campaign renderer's rules;
/// kept local so this crate stays dependency-free).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A buffered JSONL metrics stream. Writes are best-effort: an I/O
/// error after creation is remembered and reported by
/// [`MetricsSink::finish`], but never interrupts the pipeline —
/// telemetry must not perturb the run it observes.
pub struct MetricsSink {
    w: BufWriter<std::fs::File>,
    path: PathBuf,
    err: Option<std::io::Error>,
}

impl MetricsSink {
    /// Creates (truncates) the metrics file.
    pub fn create(path: &Path) -> std::io::Result<MetricsSink> {
        let f = std::fs::File::create(path)?;
        Ok(MetricsSink {
            w: BufWriter::new(f),
            path: path.to_path_buf(),
            err: None,
        })
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one event line.
    pub fn emit(&mut self, ev: Event) {
        if self.err.is_some() {
            return;
        }
        let line = ev.finish();
        if let Err(e) = self
            .w
            .write_all(line.as_bytes())
            .and_then(|()| self.w.write_all(b"\n"))
        {
            self.err = Some(e);
        }
    }

    /// Flushes and reports any deferred write error.
    pub fn finish(mut self) -> std::io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()
    }
}

/// The one canonical rendering of decode-cache statistics, used by the
/// CLI and the bench harness (previously two hand-rolled near-twins).
/// Includes what the template-compilation pass produced — compiled
/// records (with how many fused several slots) and dense heuristic
/// sites — so `--metrics` streams show compile coverage per binary.
#[allow(clippy::too_many_arguments)]
pub fn format_decode_cache(
    blocks: u64,
    insts: u64,
    bytes: u64,
    undecoded_bytes: u64,
    compiled_records: u64,
    compiled_fused: u64,
    sites: u64,
) -> String {
    format!(
        "decode cache: {blocks} blocks, {insts} instructions, {bytes} bytes decoded \
         once and shared by all shards ({undecoded_bytes} bytes undecoded); \
         compiled: {compiled_records} records ({compiled_fused} fused), \
         {sites} heuristic sites"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshot_is_deterministic_across_interleavings() {
        // Same per-shard values added in different orders (simulating
        // different thread schedules) snapshot identically.
        let build = |order: &[(usize, u64)]| {
            let mut r = Registry::new(4);
            let a = r.register("alpha");
            let b = r.register("beta");
            for &(shard, v) in order {
                r.add(shard, a, v);
                r.add(shard, b, 2 * v);
            }
            r.snapshot()
        };
        let s1 = build(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let s2 = build(&[(3, 4), (1, 2), (0, 1), (2, 3)]);
        assert_eq!(s1, s2);
        assert_eq!(s1[0], ("alpha".to_string(), 10));
        assert_eq!(s1[1], ("beta".to_string(), 20));
        // Registration is idempotent.
        let mut r = Registry::new(1);
        let x = r.register("x");
        assert_eq!(r.register("x"), x);
    }

    #[test]
    fn vm_counters_merge_and_canonical_order() {
        let mut a = VmCounters {
            tlb_hits: 5,
            ..VmCounters::default()
        };
        a.checkpoints[1] = 2;
        let mut b = VmCounters {
            tlb_hits: 3,
            memlog_bytes_replayed: 7,
            ..VmCounters::default()
        };
        b.checkpoints[1] = 1;
        a.merge(&b);
        assert_eq!(a.tlb_hits, 8);
        assert_eq!(a.checkpoints[1], 3);
        assert_eq!(a.memlog_bytes_replayed, 7);
        // Canonical order is stable and starts with tlb_hits.
        let mut names = Vec::new();
        a.for_each(|n, _| names.push(n.to_string()));
        assert_eq!(names[0], "tlb_hits");
        assert_eq!(names.len(), 11 + 9 + 3);
        assert!(names.contains(&"rollbacks_rsb".to_string()));
        assert!(names.contains(&"compiled_insts".to_string()));
        assert!(names.contains(&"t_prov_leaks".to_string()));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s[0], 1); // 0
        assert_eq!(s[1], 1); // 1
        assert_eq!(s[2], 2); // 2, 3
        assert_eq!(s[11], 1); // 1024
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn block_profile_attributes_and_ranks() {
        let blocks = [(0x100, 0x120), (0x120, 0x140), (0x200, 0x210)];
        let mut p = BlockProfile::new(&blocks);
        p.record(0x100, 10, 2);
        p.record(0x138, 50, 5); // second block, via partition_point
        p.record(0x138, 50, 5); // second block, via last-cache
        p.record(0x1f0, 7, 1); // outside every block
        p.record(0x200, 1, 1);
        let top = p.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].start, 0x120);
        assert_eq!(top[0].cost, 100);
        assert_eq!(top[0].hits, 2);
        assert_eq!(top[1].start, 0x100);
        assert_eq!(p.other_cost, 7);
        assert_eq!(p.total_cost(), 118);

        let mut q = BlockProfile::new(&blocks);
        q.record(0x105, 1, 1);
        p.merge(&q);
        assert_eq!(p.top(1)[0].cost, 100);
        assert!(p.same_blocks(&blocks));
        assert!(!p.same_blocks(&blocks[..2]));
    }

    #[test]
    fn events_render_flat_json() {
        let line = Event::new("meta")
            .num("schema", 1)
            .str_field("binary", "a\"b")
            .opt_num("ttfg", None)
            .hex("pc", 0x400100)
            .fnum("eps", 12.5)
            .finish();
        assert_eq!(
            line,
            "{\"event\":\"meta\",\"schema\":1,\"binary\":\"a\\\"b\",\
             \"ttfg\":null,\"pc\":\"0x400100\",\"eps\":12.500}"
        );
    }

    #[test]
    fn decode_cache_formatting_is_canonical() {
        let s = format_decode_cache(3, 40, 200, 8, 35, 4, 6);
        assert!(s.starts_with("decode cache: 3 blocks, 40 instructions, 200 bytes"));
        assert!(s.contains("(8 bytes undecoded)"));
        assert!(s.contains("compiled: 35 records (4 fused), 6 heuristic sites"));
    }
}
