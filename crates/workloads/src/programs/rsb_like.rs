//! Planted **Spectre-RSB** (ret2spec) ground-truth workload for the
//! `rsb` speculation model.
//!
//! The leak is architecturally impossible and — by construction —
//! invisible to conditional-branch (PHT) speculation:
//!
//! * `fetch_index` sanitizes the raw attacker index with a **branchless
//!   mask** (`raw_index() & 7`), so there is no mispredictable bounds
//!   check anywhere on the path from input to transmitter;
//! * the mask is applied to the call's register result without a memory
//!   round-trip, so the store-to-load-bypass (STL) model cannot forward
//!   a stale unmasked value either; and
//! * the transmitter `__r_sink = __r_a2[__r_a1[__r_i]]` only ever sees
//!   the masked value architecturally (the index lives in a *global*:
//!   the wrong-frame return executes with the callee's frame pointer,
//!   so stack-resident temporaries would be clobbered by the wrong
//!   path's own pushes — globals keep the planted flow frame-agnostic).
//!
//! Under the RSB model, the `ret` of `raw_index` mispredicts to the
//! stale shadow-stack entry one frame up — `main`'s continuation — and
//! the wrong-path code consumes `raw_index`'s *unsanitized* return
//! value: the attacker-tainted, out-of-bounds index flows straight into
//! the double-array dereference, which the Kasper policy reports. The
//! campaign must therefore report gadgets in this program **iff** `rsb`
//! is in the active model set — the planted ground truth behind the
//! specmodel acceptance test.

/// MiniC source (no injection markers: the whole program is the gadget).
pub const SOURCE: &str = r#"
char *__r_a1;
char *__r_a2;
int __r_sink;
char __r_in[2];
int __r_x;
int __r_i;

int raw_index() {
    return __r_x;
}

int fetch_index() {
    return raw_index() & 7;
}

int main() {
    __r_a1 = malloc(16);
    __r_a2 = malloc(512);
    for (int i = 0; i < 16; i++) { __r_a1[i] = i + 1; }
    read_input(__r_in, 2);
    __r_x = __r_in[0] + (__r_in[1] << 8);
    __r_i = fetch_index();
    __r_sink = __r_a2[__r_a1[__r_i]];
    return 0;
}
"#;

/// Fuzzing seeds: an in-bounds index and a redzone-hitting
/// out-of-bounds one (index 20 lands in `__r_a1`'s right redzone, the
/// observable speculative-OOB shape — far-OOB indexes fault and roll
/// back silently, as on hardware the mapping would). The OOB seed is
/// already a trigger: the gadget needs no gate bytes, only the RSB
/// misprediction.
pub fn seeds() -> Vec<Vec<u8>> {
    vec![vec![0x03, 0x00], vec![0x14, 0x00]]
}

/// Dictionary tokens (none: the input is a raw little-endian index).
pub fn dictionary() -> Vec<Vec<u8>> {
    Vec::new()
}
