//! `jsmn`-like workload: a minimal JSON tokenizer.
//!
//! Mirrors the structure of the paper's `jsmn` test program: a tight,
//! single-pass tokenizer whose bounds checks are all exact — Table 4
//! reports **zero** gadgets for it, and this reproduction preserves that
//! property (no attacker-controlled index escapes its check).

/// MiniC source; injection-marker lines flag the Table 3 points.
pub const SOURCE: &str = r#"
char inbuf[256];
int in_len;

// token storage: 4 ints per token (type, start, end, size)
int *tokens;
int tok_count;
int tok_max;

int TOK_PRIMITIVE = 1;
int TOK_STRING = 2;
int TOK_OBJECT = 3;
int TOK_ARRAY = 4;

int alloc_token(int type, int start, int end) {
    if (tok_count >= tok_max) { return 0 - 1; }
    int *t = tokens + tok_count * 4;
    t[0] = type;
    t[1] = start;
    t[2] = end;
    t[3] = 0;
    tok_count++;
    return tok_count - 1;
}

int parse_primitive(int pos) {
    int start = pos;
    while (pos < in_len) {
        char c = inbuf[pos];
        if (c == ',' || c == '}' || c == ']' || c == ' ' || c == '\n') {
            break;
        }
        if (c < 32 || c >= 127) { return 0 - 1; }
        pos++;
    }
    alloc_token(TOK_PRIMITIVE, start, pos);
    return pos;
}

int parse_string(int pos) {
    pos++; // opening quote
    int start = pos;
    while (pos < in_len) {
        char c = inbuf[pos];
        if (c == '"') {
            alloc_token(TOK_STRING, start, pos);
            return pos + 1;
        }
        if (c == '\\') {
            pos++;
            if (pos >= in_len) { return 0 - 1; }
            char e = inbuf[pos];
            if (e != '"' && e != '\\' && e != 'n' && e != 't' && e != 'r') {
                return 0 - 1;
            }
        }
        pos++;
    }
    return 0 - 1;
}

int parse(void) {
    int pos = 0;
    int depth = 0;
    while (pos < in_len) {
        char c = inbuf[pos];
        if (c == '{' ) {
            //@INJECT
            alloc_token(TOK_OBJECT, pos, 0 - 1);
            depth++;
            pos++;
        } else if (c == '[') {
            //@INJECT
            alloc_token(TOK_ARRAY, pos, 0 - 1);
            depth++;
            pos++;
        } else if (c == '}' || c == ']') {
            if (depth <= 0) { return 0 - 1; }
            depth--;
            pos++;
        } else if (c == '"') {
            int r = parse_string(pos);
            if (r < 0) { return 0 - 1; }
            pos = r;
        } else if (c == ' ' || c == '\t' || c == '\n' || c == ':' || c == ',') {
            pos++;
        } else {
            int r = parse_primitive(pos);
            if (r < 0) { return 0 - 1; }
            //@INJECT
            pos = r;
        }
    }
    if (depth != 0) { return 0 - 1; }
    return tok_count;
}

int main() {
    //@INJ_PRELUDE
    tok_max = 64;
    tokens = malloc(64 * 32);
    in_len = read_input(inbuf, 256);
    int n = parse();
    if (n < 0) { return 1; }
    print_int(n);
    return 0;
}
"#;

/// Seed inputs for the fuzzer.
pub fn seeds() -> Vec<Vec<u8>> {
    vec![
        br#"{"key": "value", "n": 42}"#.to_vec(),
        br#"[1, 2, {"a": true}, "x"]"#.to_vec(),
        br#"{"nested": {"deep": [null, 1]}}"#.to_vec(),
    ]
}

/// Dictionary tokens.
pub fn dictionary() -> Vec<Vec<u8>> {
    vec![
        b"{".to_vec(),
        b"}".to_vec(),
        b"[".to_vec(),
        b"]".to_vec(),
        b"\"".to_vec(),
        b"true".to_vec(),
        b"null".to_vec(),
        b":".to_vec(),
    ]
}
