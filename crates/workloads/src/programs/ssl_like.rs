//! `openssl`-like workload: a TLS-record and handshake-message parser
//! (the "server" fuzzing driver of the paper's openssl evaluation).
//!
//! Length fields, session-id copies and cipher-suite dispatch are all
//! driven by attacker bytes under bounds checks — the classic gadget
//! surface of record-based protocol parsers.

/// MiniC source; injection-marker lines flag the Table 3 points.
pub const SOURCE: &str = r#"
char inbuf[512];
int in_len;

char *session;     // session buffer (heap)
int session_len;
char *keybuf;      // negotiated-key scratch (heap)
int chosen_suite;
int alerts;
int handshakes;

int RT_HANDSHAKE = 22;
int RT_ALERT = 21;
int RT_APPDATA = 23;

int HS_CLIENT_HELLO = 1;
int HS_FINISHED = 20;

int u16_at(int p) {
    if (p + 1 >= in_len) { return 0 - 1; }
    return (inbuf[p] << 8) + inbuf[p + 1];
}

int select_suite(int suite) {
    switch (suite) {
        case 0: chosen_suite = 10; break;
        case 1: chosen_suite = 11; break;
        case 2: chosen_suite = 12; break;
        case 3: chosen_suite = 13; break;
        case 4: chosen_suite = 14; break;
        default: chosen_suite = 0;
    }
    //@INJECT
    return chosen_suite;
}

int copy_session_id(int p, int len) {
    if (len > 8) { return 0 - 1; }      // session buffer capacity
    for (int i = 0; i < len; i++) {
        if (p + i >= in_len) { return 0 - 1; }
        //@INJECT
        session[i] = inbuf[p + i];
    }
    session_len = len;
    return len;
}

// echo a server-name entry: length and offset are attacker bytes
int read_sni(int p, int len) {
    int acc = 0;
    if (len < 16) {
        acc = session[len];             // speculative OOB read of session
        acc += keybuf[acc & 31];
    }
    sink_sni += acc;
    return acc;
}
int sink_sni;

int derive_key(int seed) {
    // toy KDF: mixes the session bytes into keybuf
    int acc = seed;
    for (int i = 0; i < session_len; i++) {
        if (i < 32) {
            acc = acc * 31 + session[i];
            //@INJECT
            keybuf[acc & 31] = acc;
        }
    }
    return acc;
}

int parse_client_hello(int p, int msg_len) {
    int end = p + msg_len;
    if (end > in_len) { return 0 - 1; }
    // version (2) + random (4, toy)
    if (p + 6 > end) { return 0 - 1; }
    p += 6;
    // session id
    if (p >= end) { return 0 - 1; }
    int sid_len = inbuf[p];
    p++;
    if (p + sid_len > end) { return 0 - 1; }
    //@INJECT
    if (copy_session_id(p, sid_len) < 0) { return 0 - 1; }
    p += sid_len;
    // cipher suites
    int ns = u16_at(p);
    if (ns < 0) { return 0 - 1; }
    p += 2;
    int best = 0 - 1;
    for (int i = 0; i < ns; i++) {
        if (p >= end) { break; }
        int s = inbuf[p];
        p++;
        //@INJECT
        int r = select_suite(s);
        if (r > best) { best = r; }
    }
    if (best < 0) { return 0 - 1; }
    derive_key(best);
    handshakes++;
    return p;
}

int parse_handshake(int p, int rec_len) {
    int end = p + rec_len;
    if (p >= end) { return 0 - 1; }
    int msg_type = inbuf[p];
    p++;
    int msg_len = u16_at(p);
    if (msg_len < 0) { return 0 - 1; }
    p += 2;
    if (msg_type == HS_CLIENT_HELLO) {
        //@INJECT
        return parse_client_hello(p, msg_len);
    }
    if (msg_type == HS_FINISHED) {
        // verify data: compare against derived key prefix
        int n = msg_len;
        if (n > 8) { n = 8; }
        int ok = 1;
        for (int i = 0; i < n; i++) {
            if (p + i >= in_len) { return 0 - 1; }
            //@INJECT
            if (inbuf[p + i] != keybuf[i]) { ok = 0; }
        }
        if (ok) { handshakes++; }
        return p + msg_len;
    }
    return p + msg_len;
}

int parse_record(int p) {
    if (p + 5 > in_len) { return 0 - 1; }
    int rtype = inbuf[p];
    int rlen = u16_at(p + 3);
    if (rlen < 0) { return 0 - 1; }
    p += 5;
    if (rlen > in_len - p) { return 0 - 1; }
    if (rtype == RT_HANDSHAKE) {
        int r = parse_handshake(p, rlen);
        if (r < 0) { return 0 - 1; }
    } else if (rtype == 24) {
        // SNI-ish record: [len][payload]
        if (rlen >= 1) {
            read_sni(p + 1, inbuf[p]);
        }
    } else if (rtype == RT_ALERT) {
        if (rlen >= 2) {
            //@INJECT
            alerts += inbuf[p + 1];
        }
    } else if (rtype == RT_APPDATA) {
        // decrypt-ish: xor with key
        int sum = 0;
        for (int i = 0; i < rlen; i++) {
            if (i < 32) {
                sum += inbuf[p + i] ^ keybuf[i & 31];
            }
        }
        alerts += sum & 1;
    } else {
        return 0 - 1;
    }
    return p + rlen;
}

int main() {
    //@INJ_PRELUDE
    session = malloc(8);
    keybuf = malloc(32);
    in_len = read_input(inbuf, 512);
    int p = 0;
    int records = 0;
    while (p < in_len && records < 16) {
        int r = parse_record(p);
        if (r < 0) { break; }
        p = r;
        records++;
    }
    print_int(handshakes * 100 + records);
    return 0;
}
"#;

/// Seed inputs: a client-hello record and an alert.
pub fn seeds() -> Vec<Vec<u8>> {
    let mut hello = vec![22u8, 3, 3, 0, 19]; // handshake record, len 19
    hello.push(1); // client hello
    hello.extend_from_slice(&[0, 16]); // msg len
    hello.extend_from_slice(&[3, 3, 9, 9, 9, 9]); // version+random
    hello.push(4); // session id len
    hello.extend_from_slice(&[0xaa, 0xbb, 0xcc, 0xdd]);
    hello.extend_from_slice(&[0, 3]); // 3 suites
    hello.extend_from_slice(&[0, 2, 4]);
    vec![
        hello,
        vec![21, 3, 3, 0, 2, 1, 40],      // alert record
        vec![24, 3, 3, 0, 3, 5, 9, 9],    // SNI-ish record
        vec![23, 3, 3, 0, 4, 1, 2, 3, 4], // appdata
    ]
}

/// Dictionary tokens.
pub fn dictionary() -> Vec<Vec<u8>> {
    vec![
        vec![22, 3, 3],
        vec![21, 3, 3],
        vec![23, 3, 3],
        vec![1, 0],
        vec![20],
        vec![0, 32],
    ]
}
