//! Planted **Spectre-V4** (speculative store bypass) ground-truth
//! workload for the `stl` speculation model.
//!
//! The classic v4 shape: a slot briefly holds the raw attacker index,
//! then a sanitizing store overwrites it with a safe constant, and only
//! then is it loaded and used as a double-array index:
//!
//! ```c
//! __s_slot = __s_x;   // (1) tainted, possibly out-of-bounds
//! __s_slot = 0;       // (2) sanitize
//! ... __s_a2[__s_a1[__s_slot]] ...   // (3) load + transmit
//! ```
//!
//! Architecturally the load at (3) always observes the sanitized zero.
//! There is **no conditional branch** between taint and transmitter, so
//! PHT speculation cannot reach the leak either. Under the STL model the
//! load speculatively bypasses store (2) and forwards the stale value of
//! store (1) — attacker-tainted and out of bounds — which the Kasper
//! policy reports. Gadgets in this program must appear **iff** `stl` is
//! in the active model set.

/// MiniC source (no injection markers: the whole program is the gadget).
pub const SOURCE: &str = r#"
char *__s_a1;
char *__s_a2;
int __s_sink;
char __s_in[2];
int __s_x;
int __s_slot;

int main() {
    __s_a1 = malloc(16);
    __s_a2 = malloc(512);
    for (int i = 0; i < 16; i++) { __s_a1[i] = i + 1; }
    read_input(__s_in, 2);
    __s_x = __s_in[0] + (__s_in[1] << 8);
    __s_slot = __s_x;
    __s_slot = 0;
    __s_sink = __s_a2[__s_a1[__s_slot]];
    return 0;
}
"#;

/// Fuzzing seeds: an in-bounds index and a redzone-hitting
/// out-of-bounds one (index 20 lands in `__s_a1`'s right redzone; see
/// the `rsb_like` seeds for why far-OOB indexes are not used).
pub fn seeds() -> Vec<Vec<u8>> {
    vec![vec![0x03, 0x00], vec![0x14, 0x00]]
}

/// Dictionary tokens (none: the input is a raw little-endian index).
pub fn dictionary() -> Vec<Vec<u8>> {
    Vec::new()
}
