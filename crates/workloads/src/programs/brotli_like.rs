//! `brotli`-like workload: an LZ-style decompressor with a bit reader,
//! a heap window, and block types dispatched by a `switch`.
//!
//! Contains the paper's Appendix A.1 case study verbatim in structure:
//! the LZMA-style dictionary-offset manipulation
//! (`if (dicPos < rep0) x += dicBufSize;` followed by a
//! `matchByte`-masked probability-table access), where `dicBufSize` is
//! carried in attacker-controlled metadata. Compiled with branch-chain
//! lowering this is a User-Cache gadget; with `cmov` if-conversion the
//! branch — and the gadget — disappear.
//!
//! This is the gadget-dense workload (Table 4 reports the most gadgets
//! for brotli): many nested length/distance checks run under speculation.

/// MiniC source; injection-marker lines flag the Table 3 points.
pub const SOURCE: &str = r#"
char inbuf[512];
int in_len;

int bit_pos;
char *window;
int win_size;
int win_pos;

char *probs;      // probability table (heap) for the A.1 pattern
int out_sum;

// metadata parsed from the stream header (attacker-controlled!)
int dic_buf_size;
int rep0;

int read_bits(int n) {
    int v = 0;
    for (int i = 0; i < n; i++) {
        int byte_i = bit_pos >> 3;
        if (byte_i >= in_len) { return 0 - 1; }
        //@INJECT
        int bit = (inbuf[byte_i] >> (bit_pos & 7)) & 1;
        v = v | (bit << i);
        bit_pos++;
    }
    return v;
}

int read_byte_aligned() {
    bit_pos = (bit_pos + 7) & (0 - 8);
    int byte_i = bit_pos >> 3;
    if (byte_i >= in_len) { return 0 - 1; }
    bit_pos += 8;
    //@INJECT
    return inbuf[byte_i];
}

void emit(char b) {
    if (win_pos < win_size) {
        //@INJECT
        window[win_pos] = b;
        win_pos++;
        out_sum += b;
    }
}

// Appendix A.1: speculative read-offset manipulation. The bounds branch
// can be mispredicted; dic_buf_size comes from stream metadata.
int lzma_try_dummy() {
    //@INJECT
    int x = win_pos - rep0;
    if (win_pos < rep0) {          // mispredicted as true
        x += dic_buf_size;         // attacker-chosen offset
    }
    if (x < 0) { return 0 - 1; }
    if (x >= win_size) { return 0 - 1; }   // second mispredictable guard
    int match_byte = window[x];    // speculative OOB read (L1)
    int offs = 0x100;
    int symbol = 1;
    while (symbol < 8) {
        int bit = offs;
        match_byte += match_byte;
        offs = offs & match_byte;
        //@INJECT
        int t = probs[(offs + bit + symbol) & 0x3ff]; // transmit (L2)
        symbol = symbol + symbol + (t & 1);
    }
    return symbol;
}

int copy_match(int dist, int len) {
    if (dist <= 0) { return 0 - 1; }
    //@INJECT
    if (dist > win_pos) { return 0 - 1; }
    for (int i = 0; i < len; i++) {
        if (win_pos >= win_size) { return 0 - 1; }
        //@INJECT
        char b = window[win_pos - dist];
        emit(b);
    }
    return len;
}

int literal_run(int len) {
    for (int i = 0; i < len; i++) {
        int b = read_byte_aligned();
        if (b < 0) { return 0 - 1; }
        //@INJECT
        emit(b);
    }
    return len;
}

int process_block() {
    int btype = read_bits(2);
    //@INJECT
    if (btype < 0) { return 0 - 1; }
    switch (btype) {
        case 0:
            // literal run
            int n = read_bits(4);
            if (n < 0) { return 0 - 1; }
            //@INJECT
            return literal_run(n);
        case 1:
            // back-reference
            int dist = read_bits(6);
            int len = read_bits(4);
            if (dist < 0 || len < 0) { return 0 - 1; }
            //@INJECT
            return copy_match(dist + 1, len + 1);
        case 2:
            // dictionary probe (the A.1 path)
            rep0 = read_bits(5);
            //@INJECT
            return lzma_try_dummy();
        case 3:
            // end of stream
            return 0;
    }
    return 0 - 1;
}

int process_meta() {
    //@INJECT
    return dic_buf_size & 0xffff;
}

int main() {
    //@INJ_PRELUDE
    win_size = 64;
    window = malloc(64);
    probs = malloc(1024);
    in_len = read_input(inbuf, 512);
    if (in_len < 2) { return 1; }
    // header: dic_buf_size metadata (attacker-controlled, as in A.1)
    dic_buf_size = inbuf[0] + (inbuf[1] << 8);
    process_meta();
    bit_pos = 16;
    int blocks = 0;
    while (blocks < 40) {
        int r = process_block();
        if (r < 0) { break; }
        if (r == 0 && blocks > 0) { break; }
        blocks++;
    }
    print_int(out_sum);
    return 0;
}
"#;

/// Seed inputs for the fuzzer: header + a few literal blocks.
pub fn seeds() -> Vec<Vec<u8>> {
    vec![
        {
            // dic_buf_size=0x40, then literal blocks with data
            let mut v = vec![0x40, 0x00];
            v.extend_from_slice(&[0b0100_0000, 0x41, 0x42, 0x43, 0x44, 0xff]);
            v
        },
        {
            // back-reference heavy stream
            let mut v = vec![0x80, 0x01];
            v.extend_from_slice(&[0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76]);
            v
        },
        vec![0xff, 0xff, 0b1000_0000, 0x55, 0xaa, 0x55, 0xaa],
    ]
}

/// Dictionary tokens (bit patterns).
pub fn dictionary() -> Vec<Vec<u8>> {
    vec![
        vec![0x00],
        vec![0xff],
        vec![0b0100_0000],
        vec![0b1000_0000],
        vec![0b1100_0000],
    ]
}
