//! `libhtp`-like workload: an HTTP/1.x request parser.
//!
//! Contains the exact `list_size` / `list_get` / `htp_conn_remove_tx`
//! structure of the paper's Appendix A.2 case study: `list_size` returns
//! a `-1` error sentinel that, assigned to an unsigned length, makes a
//! loop speculatively unbounded; `list_get`'s two bounds checks then
//! yield a massaged pointer whose dereference and comparison leak through
//! port contention — a Massage-Port gadget needing three nested
//! mispredictions.
//!
//! A list is a heap `int*` blob: `[0]=current_size, [1]=first,
//! [2]=max_size, [3..]=elements`.

/// MiniC source; injection-marker lines flag the Table 3 points.
pub const SOURCE: &str = r#"
char inbuf[512];
int in_len;

int *txs;        // transaction list (Appendix A.2 `conn->txs`)
int *headers;    // header-offset list
int status;

// --- the Appendix A.2 list primitives ---

uint list_size(int *l) {
    if (l == 0) { return 0 - 1; }   // error sentinel: (uint)-1
    return l[0];
}

int list_get(int *l, uint idx) {
    if (l == 0) { return 0; }
    uint cur = l[0];
    if (idx >= cur) { return 0; }
    uint first = l[1];
    uint maxs = l[2];
    if (first + idx < maxs) {
        return l[3 + first + idx];
    }
    return 0;
}

void list_replace(int *l, uint idx, int v) {
    uint cur = l[0];
    if (idx < cur) {
        l[3 + l[1] + idx] = v;
    }
}

int *list_new(int maxs) {
    int *l = malloc((3 + maxs) * 8);
    l[0] = 0;
    l[1] = 0;
    l[2] = maxs;
    return l;
}

void list_push(int *l, int v) {
    int cur = l[0];
    if (cur < l[2]) {
        //@INJECT
        l[3 + cur] = v;
        l[0] = cur + 1;
    }
}

// --- transactions ---

int *tx_new(int method, int plen) {
    int *tx = malloc(3 * 8);
    tx[0] = method;
    tx[1] = plen;
    tx[2] = 0;
    return tx;
}

void htp_conn_remove_tx(int *tx) {
    uint n = list_size(txs);
    for (uint i = 0; i < n; i++) {
        int tx2 = list_get(txs, i);
        if (tx2 == tx) {            // Appendix A.2 port transmitter
            list_replace(txs, i, 0);
            return;
        }
    }
}

void htp_conn_destroy() {
    uint n = list_size(txs);        // mispredict null check => n = -1
    for (uint i = 0; i < n; i++) {
        int t = list_get(txs, i);   // OOB under nested misprediction:
        if (t != 0) {               //   t becomes a massaged value
            // tx->conn->txs-style pointer chase: the massaged value
            // composes the next access (paper Listing 6 line 31)
            int m = headers[t & 7];
            if (m == t) {           // secret decides a branch: Port leak
                status++;
            }
            //@INJECT
            htp_conn_remove_tx(t);
        }
    }
}

// --- request parsing ---

int METHOD_GET = 1;
int METHOD_POST = 2;
int METHOD_HEAD = 3;
int METHOD_PUT = 4;

int parse_method(int p) {
    char c = inbuf[p];
    if (c == 'G') { return METHOD_GET; }
    if (c == 'P') {
        if (p + 1 < in_len && inbuf[p + 1] == 'O') { return METHOD_POST; }
        return METHOD_PUT;
    }
    if (c == 'H') { return METHOD_HEAD; }
    return 0;
}

int find_char(int p, char want) {
    //@INJECT
    while (p < in_len) {
        if (inbuf[p] == want) { return p; }
        p++;
    }
    return 0 - 1;
}

int parse_headers(int p) {
    int count = 0;
    while (p < in_len) {
        if (inbuf[p] == '\n') { return p + 1; }
        int colon = find_char(p, ':');
        if (colon < 0) { return 0 - 1; }
        int eol = find_char(colon, '\n');
        if (eol < 0) { eol = in_len; }
        //@INJECT
        list_push(headers, p);
        // header-specific handling
        char h = inbuf[p];
        if (h == 'C') {
            // content-length: parse decimal
            int v = 0;
            int q = colon + 1;
            while (q < eol) {
                char d = inbuf[q];
                if (d >= '0' && d <= '9') {
                    v = v * 10 + (d - '0');
                }
                q++;
            }
            //@INJECT
            status = v;
        }
        count++;
        if (count > 32) { return 0 - 1; }
        p = eol + 1;
    }
    return p;
}

int parse_request(void) {
    int p = 0;
    int method = parse_method(p);
    if (method == 0) { return 0 - 1; }
    int sp = find_char(p, ' ');
    if (sp < 0) { return 0 - 1; }
    int uri_start = sp + 1;
    int sp2 = find_char(uri_start, ' ');
    if (sp2 < 0) { return 0 - 1; }
    int plen = sp2 - uri_start;
    //@INJECT
    int *tx = tx_new(method, plen);
    list_push(txs, tx);
    int eol = find_char(sp2, '\n');
    if (eol < 0) { return 0 - 1; }
    int body = parse_headers(eol + 1);
    if (body < 0) { return 0 - 1; }
    // body echo of `status` bytes (bounded)
    int n = status;
    if (n > in_len - body) { n = in_len - body; }
    int sum = 0;
    for (int i = 0; i < n; i++) {
        //@INJECT
        sum += inbuf[body + i];
    }
    return sum;
}

int main() {
    //@INJ_PRELUDE
    txs = list_new(2);
    headers = list_new(32);
    in_len = read_input(inbuf, 512);
    int r = parse_request();
    htp_conn_destroy();
    if (r < 0) { return 1; }
    print_int(r);
    return 0;
}
"#;

/// Seed inputs for the fuzzer.
pub fn seeds() -> Vec<Vec<u8>> {
    vec![
        b"GET /index.html HTTP/1.1\nHost: x\nC: 4\n\nabcd".to_vec(),
        b"POST /api HTTP/1.1\nC: 10\nAccept: */*\n\n0123456789".to_vec(),
        b"HEAD / HTTP/1.0\n\n".to_vec(),
    ]
}

/// Dictionary tokens.
pub fn dictionary() -> Vec<Vec<u8>> {
    vec![
        b"GET ".to_vec(),
        b"POST ".to_vec(),
        b"HTTP/1.1".to_vec(),
        b"C: ".to_vec(),
        b"\n\n".to_vec(),
        b": ".to_vec(),
    ]
}
