//! `libyaml`-like workload: a line-oriented YAML subset parser.
//!
//! Mirrors the shape of the paper's `libyaml` program: an event-producing
//! scanner with an indent stack, anchors, and aliases. Two of the ten
//! Table 3 injection points live in the `emit_document` "module", which
//! the fuzzing driver never reaches — reproducing the two unreachable
//! gadgets the paper reports for libyaml (§7.2: "inserted in modules not
//! covered by the fuzzing driver").

/// MiniC source; injection-marker lines flag the Table 3 points.
pub const SOURCE: &str = r#"
char inbuf[512];
int in_len;
int pos;

// indent stack (heap)
int *indents;
int indent_top;

// anchor table: 8 anchors x 16-byte names (heap)
char *anchor_names;
int *anchor_vals;
int anchor_count;

// per-style event weights (heap, 4 entries)
int *styles;

int events;

int skip_spaces(int p) {
    int n = 0;
    while (p < in_len && inbuf[p] == ' ') {
        p++;
        n++;
    }
    return n;
}

int line_end(int p) {
    while (p < in_len && inbuf[p] != '\n') {
        p++;
    }
    return p;
}

void push_indent(int level) {
    if (indent_top < 16) {
        //@INJECT
        indents[indent_top] = level;
        indent_top++;
    }
}

void pop_to(int level) {
    while (indent_top > 0) {
        if (indents[indent_top - 1] <= level) { break; }
        //@INJECT
        indent_top--;
        events++;
    }
}

int store_anchor(int start, int len) {
    if (anchor_count >= 8) { return 0 - 1; }
    if (len > 15) { len = 15; }
    for (int i = 0; i < len; i++) {
        //@INJECT
        anchor_names[anchor_count * 16 + i] = inbuf[start + i];
    }
    anchor_names[anchor_count * 16 + len] = 0;
    anchor_vals[anchor_count] = start;
    anchor_count++;
    return anchor_count - 1;
}

int find_anchor(int start, int len) {
    for (int a = 0; a < anchor_count; a++) {
        int ok = 1;
        for (int i = 0; i < len; i++) {
            if (i >= 16) { ok = 0; break; }
            if (anchor_names[a * 16 + i] != inbuf[start + i]) {
                ok = 0;
                break;
            }
        }
        if (ok) { return a; }
    }
    return 0 - 1;
}

int scan_scalar(int p) {
    //@INJECT
    int start = p;
    while (p < in_len) {
        char c = inbuf[p];
        if (c == '\n' || c == '#' || c == ':') { break; }
        p++;
    }
    //@INJECT
    events++;
    return p - start;
}

int parse_line(int p) {
    int indent = skip_spaces(p);
    p = p + indent;
    if (p >= in_len) { return p; }
    char c = inbuf[p];
    if (c == '\n') { return p + 1; }
    if (c == '#') { return line_end(p) + 1; }
    if (c == '%') {
        // directive: %<digit> selects a style weight
        p++;
        if (p < in_len) {
            int style = inbuf[p] - '0';
            if (style >= 0) {
                if (style < 4) {
                    events += styles[style];
                }
            }
        }
        return line_end(p) + 1;
    }
    pop_to(indent);
    push_indent(indent);
    if (c == '-') {
        // sequence item
        events++;
        p++;
        //@INJECT
        p = p + skip_spaces(p);
        scan_scalar(p);
        return line_end(p) + 1;
    }
    if (c == '&') {
        // anchor definition
        p++;
        int start = p;
        while (p < in_len && inbuf[p] != ' ' && inbuf[p] != '\n') { p++; }
        store_anchor(start, p - start);
        return line_end(p) + 1;
    }
    if (c == '*') {
        // alias reference
        p++;
        int start = p;
        while (p < in_len && inbuf[p] != ' ' && inbuf[p] != '\n') { p++; }
        int a = find_anchor(start, p - start);
        if (a >= 0) {
            //@INJECT
            events += anchor_vals[a];
        }
        return line_end(p) + 1;
    }
    // key: value
    int klen = scan_scalar(p);
    p = p + klen;
    if (p < in_len && inbuf[p] == ':') {
        events++;
        p++;
        //@INJECT
        p = p + skip_spaces(p);
        scan_scalar(p);
    }
    return line_end(p) + 1;
}

// --- emitter "module": NOT reachable from the fuzzing driver ---
int emit_document(int style) {
    int out = 0;
    if (style < 4) {
        //@INJECT
        out = out + style;
    }
    for (int i = 0; i < indent_top; i++) {
        //@INJECT
        out += indents[i];
    }
    return out;
}

int main() {
    //@INJ_PRELUDE
    indents = malloc(16 * 8);
    anchor_names = malloc(8 * 16);
    anchor_vals = malloc(8 * 8);
    styles = malloc(4 * 8);
    in_len = read_input(inbuf, 512);
    pos = 0;
    int guard = 0;
    while (pos < in_len) {
        pos = parse_line(pos);
        guard++;
        if (guard > 600) { break; }
    }
    print_int(events);
    return 0;
}
"#;

/// Seed inputs for the fuzzer.
pub fn seeds() -> Vec<Vec<u8>> {
    vec![
        b"key: value\nlist:\n  - a\n  - b\n".to_vec(),
        b"&anchor base\nref: *anchor\n".to_vec(),
        b"%1 directive\nkey: v\n".to_vec(),
        b"a: 1\n  b: 2\n    c: 3\nd: 4\n# comment\n".to_vec(),
    ]
}

/// Dictionary tokens.
pub fn dictionary() -> Vec<Vec<u8>> {
    vec![
        b"- ".to_vec(),
        b": ".to_vec(),
        b"&".to_vec(),
        b"*".to_vec(),
        b"#".to_vec(),
        b"\n  ".to_vec(),
    ]
}
