//! The artificial Spectre-V1 gadget corpus for the Table 3 experiment
//! (paper §7.2), modeled after Paul Kocher's 15 example variants.
//!
//! Every gadget is a MiniC function `__gadget_vN(int x)` that performs a
//! bounds-checked, attacker-index-controlled read from a **heap** array
//! (so binary ASan can see the speculative out-of-bounds access) followed
//! by a transmitter. The arrays are shared and allocated by
//! `__gadget_init()`.

/// Number of gadget variants in the corpus.
pub const COUNT: usize = 15;

/// Shared preamble: arrays + init + sink.
pub const PRELUDE: &str = "
char *__g_a1;
char *__g_a2;
int __g_sink;
int __g_len = 13;
void __gadget_init() {
    __g_a1 = malloc(16);
    __g_a2 = malloc(512);
    for (int i = 0; i < 16; i++) { __g_a1[i] = i + 1; }
}
";

/// Source of gadget variant `id` (1-based, `1..=COUNT`).
///
/// # Panics
///
/// Panics if `id` is 0 or greater than [`COUNT`].
pub fn source(id: usize) -> &'static str {
    match id {
        // v01: the canonical bounds-check-bypass.
        1 => {
            "void __gadget_v1(int x) {
                  if (x < __g_len) {
                      __g_sink = __g_a2[__g_a1[x]];
                  }
              }"
        }
        // v02: index derived through a bitwise mask that does NOT bound it.
        2 => {
            "void __gadget_v2(int x) {
                  if (x < __g_len) {
                      int i = x & 0xffff;
                      __g_sink = __g_a2[__g_a1[i]];
                  }
              }"
        }
        // v03: access hidden inside a callee.
        3 => {
            "int __g3_read(int i) { return __g_a1[i]; }
              void __gadget_v3(int x) {
                  if (x < __g_len) {
                      __g_sink = __g_a2[__g3_read(x)];
                  }
              }"
        }
        // v04: comparison with a memory-resident length.
        4 => {
            "int __g4_len = 13;
              void __gadget_v4(int x) {
                  if (x < __g4_len) {
                      __g_sink = __g_a2[__g_a1[x]];
                  }
              }"
        }
        // v05: leak accumulated across a loop iteration.
        5 => {
            "void __gadget_v5(int x) {
                  int acc = 0;
                  for (int j = 0; j <= x; j++) {
                      if (j < __g_len) {
                          acc += __g_a1[j + x];
                      }
                  }
                  __g_sink = __g_a2[acc & 0xff];
              }"
        }
        // v06: pointer-arithmetic dereference.
        6 => {
            "void __gadget_v6(int x) {
                  char *p = __g_a1 + x;
                  if (x < __g_len) {
                      __g_sink = __g_a2[*p];
                  }
              }"
        }
        // v07: inverted condition with early exit.
        7 => {
            "void __gadget_v7(int x) {
                  if (x >= __g_len) { return; }
                  __g_sink = __g_a2[__g_a1[x]];
              }"
        }
        // v08: value selected between two accesses.
        8 => {
            "void __gadget_v8(int x) {
                  int t = 0;
                  if (x < __g_len) {
                      if (x & 1) { t = __g_a1[x]; } else { t = __g_a1[x + 1]; }
                      __g_sink = __g_a2[t];
                  }
              }"
        }
        // v09: double bounds check (both mispredictable).
        9 => {
            "void __gadget_v9(int x) {
                  if (x < __g_len) {
                      if (x >= 0) {
                          __g_sink = __g_a2[__g_a1[x]];
                      }
                  }
              }"
        }
        // v10: secret leaks through a comparison (port-contention style).
        10 => {
            "void __gadget_v10(int x) {
                   if (x < __g_len) {
                       if (__g_a1[x] == 7) {
                           __g_sink = 1;
                       }
                   }
               }"
        }
        // v11: memcmp-style byte loop transmit.
        11 => {
            "void __gadget_v11(int x) {
                   if (x < __g_len) {
                       int i = 0;
                       while (i < 2) {
                           __g_sink += __g_a2[__g_a1[x + i]];
                           i++;
                       }
                   }
               }"
        }
        // v12: composite index x + offset.
        12 => {
            "int __g12_off = 2;
               void __gadget_v12(int x) {
                   if (x + __g12_off < __g_len) {
                       __g_sink = __g_a2[__g_a1[x + __g12_off]];
                   }
               }"
        }
        // v13: leak of a shifted/scaled secret.
        13 => {
            "void __gadget_v13(int x) {
                   if (x < __g_len) {
                       int s = __g_a1[x];
                       __g_sink = __g_a2[(s << 1) & 0x1ff];
                   }
               }"
        }
        // v14: secret stored then reloaded before transmit.
        14 => {
            "int __g14_tmp;
               void __gadget_v14(int x) {
                   if (x < __g_len) {
                       __g14_tmp = __g_a1[x];
                       __g_sink = __g_a2[__g14_tmp];
                   }
               }"
        }
        // v15: access through an aliased pointer parameter.
        15 => {
            "int __g15_read(char *p, int i) {
                   if (i < __g_len) { return p[i]; }
                   return 0;
               }
               void __gadget_v15(int x) {
                   __g_sink = __g_a2[__g15_read(__g_a1, x)];
               }"
        }
        _ => panic!("gadget id must be 1..={COUNT}"),
    }
}

/// MiniC source defining the prelude plus the listed gadget variants.
pub fn corpus(ids: &[usize]) -> String {
    let mut out = String::from(PRELUDE);
    for &id in ids {
        out.push_str(source(id));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_have_source() {
        for id in 1..=COUNT {
            let s = source(id);
            assert!(s.contains(&format!("__gadget_v{id}(")), "variant {id}");
        }
    }

    #[test]
    #[should_panic(expected = "gadget id")]
    fn zero_is_rejected() {
        source(0);
    }

    #[test]
    fn corpus_concatenates() {
        let c = corpus(&[1, 10, 15]);
        assert!(c.contains("__gadget_init"));
        assert!(c.contains("__gadget_v1("));
        assert!(c.contains("__gadget_v10("));
        assert!(c.contains("__gadget_v15("));
        assert!(!c.contains("__gadget_v7("));
    }
}
