//! The evaluation workloads: five MiniC programs echoing the paper's test
//! set (§7, "the standard set of test programs used by previous studies")
//! plus the artificial-gadget corpus and injection machinery of the
//! Table 3 experiment.
//!
//! | Workload | Echoes | Character |
//! |---|---|---|
//! | [`jsmn_like`] | jsmn | tight JSON tokenizer, no gadget surface |
//! | [`yaml_like`] | libyaml 0.2.2 | indent/anchor parser; 2 of its 10 injection points are unreachable from the driver (as in the paper) |
//! | [`htp_like`] | libhtp 0.5.30 | HTTP parser with the Appendix A.2 `list_size`/-1 sentinel Massage chain |
//! | [`brotli_like`] | brotli 1.0.7 | LZ decompressor with the Appendix A.1 dictionary-offset gadget; most gadget-dense |
//! | [`ssl_like`] | openssl 3.0.0 (server driver) | TLS record/handshake parser |
//!
//! Each workload provides MiniC source (with `//@INJECT` markers),
//! fuzzing seeds and a dictionary. [`Workload::plain_source`] strips the
//! markers; [`Workload::injected_source`] splices calls to the gadget
//! corpus of [`gadgets`] and prepends the attacker-direct input prelude
//! of the paper's §7.2 setup.

pub mod gadgets;
mod programs {
    pub mod brotli_like;
    pub mod htp_like;
    pub mod jsmn_like;
    pub mod rsb_like;
    pub mod ssl_like;
    pub mod stl_like;
    pub mod yaml_like;
}

use teapot_cc::{compile_to_binary, CcError, Options};
use teapot_obj::Binary;
use teapot_rt::GadgetReport;

/// One evaluation workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name matching the paper's program column.
    pub name: &'static str,
    /// MiniC source *with* `//@INJECT` markers.
    pub marked_source: &'static str,
    /// Fuzzing seed inputs.
    pub seeds: Vec<Vec<u8>>,
    /// Mutation dictionary.
    pub dictionary: Vec<Vec<u8>>,
}

impl Workload {
    /// Number of Table 3 injection points in the source.
    pub fn inject_points(&self) -> usize {
        self.marked_source.matches("//@INJECT").count()
    }

    /// Source with all markers stripped (the vanilla program).
    pub fn plain_source(&self) -> String {
        self.marked_source
            .lines()
            .filter(|l| !l.trim_start().starts_with("//@INJECT"))
            .map(|l| {
                if l.trim_start().starts_with("//@INJ_PRELUDE") {
                    ""
                } else {
                    l
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Source with gadget variant `assignments[k]` injected at point `k`
    /// (1-based variant ids from [`gadgets`]); `None` leaves a point
    /// empty. The main prelude reads two dedicated input bytes into
    /// `__inj_x` and marks them attacker-direct (`mark_user`), matching
    /// the paper's §7.2 setup where normal taint sources are disabled.
    ///
    /// # Panics
    ///
    /// Panics if `assignments` is longer than the number of points.
    pub fn injected_source(&self, assignments: &[Option<usize>]) -> String {
        assert!(assignments.len() <= self.inject_points());
        let used: Vec<usize> = assignments.iter().flatten().copied().collect();
        let mut out = gadgets::corpus(&used);
        out.push_str("char __inj_buf[2];\nint __inj_x;\n");
        let mut k = 0usize;
        for line in self.marked_source.lines() {
            let t = line.trim_start();
            if t.starts_with("//@INJECT") {
                if let Some(Some(id)) = assignments.get(k) {
                    out.push_str(&format!("__gadget_v{id}(__inj_x);\n"));
                }
                k += 1;
                continue;
            }
            if t.starts_with("//@INJ_PRELUDE") {
                out.push_str(
                    "read_input(__inj_buf, 2);\n\
                     __inj_x = __inj_buf[0] + (__inj_buf[1] << 8);\n\
                     mark_user(&__inj_x, 8);\n\
                     __gadget_init();\n",
                );
                continue;
            }
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Compiles the vanilla (marker-stripped) workload.
    ///
    /// # Errors
    ///
    /// Returns the compiler error if the source is invalid (a bug in the
    /// workload corpus).
    pub fn build(&self, opts: &Options) -> Result<Binary, CcError> {
        compile_to_binary(&self.plain_source(), opts)
    }

    /// Compiles the workload with gadgets injected at every point:
    /// point `k` receives variant `k + 1` (distinct variants per point so
    /// reports can be attributed per point). Returns the binary (symbols
    /// kept for ground-truth accounting) and the injected variant ids.
    ///
    /// # Errors
    ///
    /// Returns the compiler error if the spliced source is invalid.
    pub fn build_injected(&self, opts: &Options) -> Result<(Binary, Vec<usize>), CcError> {
        let n = self.inject_points().min(gadgets::COUNT);
        let assignments: Vec<Option<usize>> = (0..n).map(|k| Some(k + 1)).collect();
        let src = self.injected_source(&assignments);
        let bin = compile_to_binary(&src, opts)?;
        Ok((bin, (1..=n).collect()))
    }
}

/// The jsmn-like workload.
pub fn jsmn_like() -> Workload {
    Workload {
        name: "jsmn",
        marked_source: programs::jsmn_like::SOURCE,
        seeds: programs::jsmn_like::seeds(),
        dictionary: programs::jsmn_like::dictionary(),
    }
}

/// The libyaml-like workload.
pub fn yaml_like() -> Workload {
    Workload {
        name: "libyaml",
        marked_source: programs::yaml_like::SOURCE,
        seeds: programs::yaml_like::seeds(),
        dictionary: programs::yaml_like::dictionary(),
    }
}

/// The libhtp-like workload.
pub fn htp_like() -> Workload {
    Workload {
        name: "libhtp",
        marked_source: programs::htp_like::SOURCE,
        seeds: programs::htp_like::seeds(),
        dictionary: programs::htp_like::dictionary(),
    }
}

/// The brotli-like workload.
pub fn brotli_like() -> Workload {
    Workload {
        name: "brotli",
        marked_source: programs::brotli_like::SOURCE,
        seeds: programs::brotli_like::seeds(),
        dictionary: programs::brotli_like::dictionary(),
    }
}

/// The openssl-like workload (server driver).
pub fn ssl_like() -> Workload {
    Workload {
        name: "openssl",
        marked_source: programs::ssl_like::SOURCE,
        seeds: programs::ssl_like::seeds(),
        dictionary: programs::ssl_like::dictionary(),
    }
}

/// The planted Spectre-RSB (ret2spec) workload: its gadget is reachable
/// only through a return-stack misprediction (see `programs::rsb_like`).
pub fn rsb_like() -> Workload {
    Workload {
        name: "spectre-rsb",
        marked_source: programs::rsb_like::SOURCE,
        seeds: programs::rsb_like::seeds(),
        dictionary: programs::rsb_like::dictionary(),
    }
}

/// The planted Spectre-V4 (speculative store bypass) workload: its
/// gadget is reachable only through a store-to-load bypass (see
/// `programs::stl_like`).
pub fn stl_like() -> Workload {
    Workload {
        name: "spectre-stl",
        marked_source: programs::stl_like::SOURCE,
        seeds: programs::stl_like::seeds(),
        dictionary: programs::stl_like::dictionary(),
    }
}

/// All five workloads in the paper's order.
pub fn all() -> Vec<Workload> {
    vec![
        jsmn_like(),
        yaml_like(),
        htp_like(),
        brotli_like(),
        ssl_like(),
    ]
}

/// The speculation-model ground-truth suite: one planted workload per
/// non-default model (`spectre-rsb`, `spectre-stl`). Kept out of
/// [`all`] — the paper's experiments run over the paper's five programs
/// — but first-class everywhere else (CLI `--workload`, CI matrix,
/// specmodel acceptance tests).
pub fn spec_suite() -> Vec<Workload> {
    vec![rsb_like(), stl_like()]
}

/// Table 3 classification of fuzzing reports against injected ground
/// truth: `(true_positives, false_positives, false_negatives)`.
///
/// A report is a true positive when its (original-binary) PC falls inside
/// one of the injected `__gadget_v*` functions (helpers `__g*` included);
/// distinct injected variants are counted once. Reports outside gadget
/// code are false positives (distinct report keys). Injected variants
/// with no report are false negatives — exactly the SpecTaint evaluation
/// methodology the paper adopts (§7.2).
pub fn classify_reports(
    bin_with_symbols: &Binary,
    reports: &[GadgetReport],
    injected: &[usize],
) -> (usize, usize, usize) {
    use std::collections::BTreeSet;
    let mut hit_variants: BTreeSet<usize> = BTreeSet::new();
    let mut fp_keys: BTreeSet<(u64, u8)> = BTreeSet::new();
    for r in reports {
        let sym = bin_with_symbols.symbolize(r.key.pc);
        let variant = sym.and_then(|s| variant_of(&s.name));
        match variant {
            Some(v) if injected.contains(&v) => {
                hit_variants.insert(v);
            }
            _ => {
                let chan = match r.key.channel {
                    teapot_rt::Channel::Mds => 0u8,
                    teapot_rt::Channel::Cache => 1,
                    teapot_rt::Channel::Port => 2,
                };
                fp_keys.insert((r.key.pc, chan));
            }
        }
    }
    let tp = hit_variants.len();
    let fp = fp_keys.len();
    let fnn = injected.len() - tp;
    (tp, fp, fnn)
}

/// Maps a gadget-corpus symbol name to its variant id
/// (`__gadget_v7` → 7, `__g15_read` → 15).
fn variant_of(name: &str) -> Option<usize> {
    let digits = |s: &str| -> Option<usize> {
        let d: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
        d.parse().ok()
    };
    if let Some(rest) = name.strip_prefix("__gadget_v") {
        return digits(rest);
    }
    if let Some(rest) = name.strip_prefix("__g") {
        return digits(rest);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use teapot_vm::{ExitStatus, Machine, RunOptions, SpecHeuristics};

    fn run_plain(w: &Workload, input: &[u8]) -> teapot_vm::RunOutcome {
        let bin = w.build(&Options::gcc_like()).expect("compile");
        let mut heur = SpecHeuristics::default();
        Machine::new(
            &bin,
            RunOptions {
                input: input.to_vec(),
                ..RunOptions::default()
            },
        )
        .run(&mut heur)
    }

    #[test]
    fn ground_truth_counts_match_table3() {
        assert_eq!(jsmn_like().inject_points(), 3);
        assert_eq!(yaml_like().inject_points(), 10);
        assert_eq!(htp_like().inject_points(), 7);
        assert_eq!(brotli_like().inject_points(), 13);
    }

    #[test]
    fn all_workloads_compile_both_lowerings() {
        for w in all() {
            w.build(&Options::gcc_like())
                .unwrap_or_else(|e| panic!("{} gcc: {e}", w.name));
            w.build(&Options::clang_like())
                .unwrap_or_else(|e| panic!("{} clang: {e}", w.name));
        }
    }

    #[test]
    fn seeds_run_cleanly() {
        for w in all() {
            for (i, seed) in w.seeds.iter().enumerate() {
                let out = run_plain(&w, seed);
                assert!(
                    matches!(out.status, ExitStatus::Exit(_)),
                    "{} seed {i}: {:?}",
                    w.name,
                    out.status
                );
            }
        }
    }

    #[test]
    fn workloads_do_useful_work_on_seeds() {
        // jsmn tokenizes its seed; htp parses a request; etc.
        let w = jsmn_like();
        let out = run_plain(&w, &w.seeds[0]);
        assert_eq!(out.status, ExitStatus::Exit(0));
        assert!(!out.output.is_empty(), "token count printed");

        let w = htp_like();
        let out = run_plain(&w, &w.seeds[0]);
        assert_eq!(out.status, ExitStatus::Exit(0));

        let w = ssl_like();
        let out = run_plain(&w, &w.seeds[0]);
        assert_eq!(out.status, ExitStatus::Exit(0));
        // one handshake, one record
        assert_eq!(out.output, b"101\n");
    }

    #[test]
    fn injected_builds_compile_and_run() {
        for w in all() {
            let (bin, injected) = w.build_injected(&Options::gcc_like()).expect("compile");
            assert_eq!(injected.len(), w.inject_points().min(gadgets::COUNT));
            // Symbols kept for ground truth.
            assert!(bin.symbols.iter().any(|s| s.name.starts_with("__gadget_v")));
            // Runs with 2 prelude bytes + a seed.
            let mut input = vec![0xff, 0x00];
            input.extend_from_slice(&w.seeds[0]);
            let mut heur = SpecHeuristics::default();
            let out = Machine::new(
                &bin,
                RunOptions {
                    input,
                    ..RunOptions::default()
                },
            )
            .run(&mut heur);
            assert!(
                matches!(out.status, ExitStatus::Exit(_)),
                "{}: {:?}",
                w.name,
                out.status
            );
        }
    }

    #[test]
    fn variant_attribution() {
        assert_eq!(variant_of("__gadget_v7"), Some(7));
        assert_eq!(variant_of("__gadget_v15"), Some(15));
        assert_eq!(variant_of("__g3_read"), Some(3));
        assert_eq!(variant_of("__g15_read"), Some(15));
        assert_eq!(variant_of("parse_request"), None);
        assert_eq!(variant_of("main"), None);
    }

    #[test]
    fn plain_source_has_no_markers() {
        for w in all() {
            let s = w.plain_source();
            assert!(!s.contains("//@INJECT"), "{}", w.name);
            assert!(!s.contains("//@INJ_PRELUDE"), "{}", w.name);
        }
    }
}
