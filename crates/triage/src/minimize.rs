//! Witness input minimization (delta debugging).
//!
//! Campaign inputs are mutation stacks over mutation stacks — the byte
//! string that *found* a gadget usually carries dozens of irrelevant
//! bytes. `ddmin` shrinks it to a minimal reproducer: every candidate is
//! validated by a full deterministic replay (same heuristic seed as the
//! witness), so the result is guaranteed to re-trigger the same
//! [`GadgetKey`](teapot_rt::GadgetKey). A classic ddmin chunk-deletion
//! pass is followed by a byte-normalization pass that zeroes every byte
//! that is not load-bearing, making reproducers canonical as well as
//! short.
//!
//! The whole procedure is a pure function of `(program, witness,
//! budget)`: candidate order is fixed, replays are deterministic, and
//! the step budget is a plain counter — byte-identical output on every
//! host, which the triage database's determinism guarantee builds on.

use crate::replay::Replayer;
use teapot_rt::GadgetWitness;

/// Result of minimizing one witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimizeOutcome {
    /// The minimized input; replays to the witness's gadget key.
    pub input: Vec<u8>,
    /// Candidate replays performed (the "work" metric of the triage
    /// bench).
    pub steps: u32,
    /// Whether the budget expired before the search was exhausted (the
    /// result is still valid, just possibly not 1-minimal).
    pub budget_exhausted: bool,
}

/// Default candidate-replay budget per witness.
pub const DEFAULT_MAX_STEPS: u32 = 512;

/// ddmin-shrinks `w.input` to a minimal reproducer of `w.key`, validating
/// every candidate by deterministic replay. Returns `None` if the witness
/// itself does not replay (a stale or cross-binary witness) — callers can
/// rely on this as *the* validation replay and need not replay first.
/// `steps` counts ddmin candidates only; the initial validation replay is
/// excluded.
pub fn minimize(rp: &mut Replayer, w: &GadgetWitness, max_steps: u32) -> Option<MinimizeOutcome> {
    let reproduces = |rp: &mut Replayer, input: &[u8]| {
        rp.run(input, &w.heur_counts).iter().any(|g| g.key == w.key)
    };
    if !reproduces(rp, &w.input) {
        return None;
    }
    let mut steps = 0u32;
    let mut cur = w.input.clone();
    let mut budget_exhausted = false;

    // Phase 1 — ddmin chunk deletion: split into n chunks, try dropping
    // each; on success restart at coarse granularity, else refine.
    let mut n = 2usize;
    'outer: while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            if steps >= max_steps {
                budget_exhausted = true;
                break 'outer;
            }
            steps += 1;
            if reproduces(rp, &cand) {
                cur = cand;
                n = 2.max(n.saturating_sub(1));
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }

    // Phase 2 — byte normalization: zero every byte that still
    // reproduces without its value, canonicalizing the reproducer.
    for i in 0..cur.len() {
        if cur[i] == 0 {
            continue;
        }
        if steps >= max_steps {
            budget_exhausted = true;
            break;
        }
        steps += 1;
        let mut cand = cur.clone();
        cand[i] = 0;
        if reproduces(rp, &cand) {
            cur = cand;
        }
    }

    Some(MinimizeOutcome {
        input: cur,
        steps,
        budget_exhausted,
    })
}
