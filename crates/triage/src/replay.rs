//! Deterministic witness replay.
//!
//! The VM is a pure function of `(program, input, heuristic state,
//! options)` — no wall clock, no RNG, no thread scheduling reaches an
//! execution. A [`GadgetWitness`] snapshots exactly those inputs at the
//! moment of discovery (the triggering bytes plus the pre-run per-branch
//! heuristic counts), so replaying it reproduces the discovering run
//! bit-for-bit: the same simulation entries, the same rollbacks, the
//! same gadget reports.
//!
//! A [`Replayer`] pools one [`ExecContext`] across replays (the same
//! reset-in-place path the fuzzing hot loop uses); `ExecContext::reset`
//! is observably identical to a fresh context, so pooled and fresh
//! replays agree — the replay-determinism property test pins this.

use std::sync::Arc;
use teapot_campaign::CampaignConfig;
use teapot_rt::{DetectorConfig, GadgetReport, GadgetWitness, SpecModelSet, TraceEvent};
use teapot_vm::{EmuStyle, ExecContext, HeurStyle, Machine, Program, RunOptions, SpecHeuristics};

/// Everything a replay needs beyond the witness itself: the detector
/// configuration and execution style of the discovering campaign.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Cost budget per replay. Defaults to four times the campaign's
    /// per-run fuel: a replay seeded from the witness's heuristic counts
    /// is exact, but minimization candidates walk *different* paths and
    /// must not be cut short by a tight budget.
    pub fuel: u64,
    /// Detector configuration of the discovering campaign.
    pub detector: DetectorConfig,
    /// Execution style of the discovering campaign.
    pub emu: EmuStyle,
    /// Heuristic style of the discovering campaign.
    pub heur_style: HeurStyle,
    /// Speculation models of the discovering campaign — a witness found
    /// under an RSB or STL misprediction only replays when the same
    /// model is simulated.
    pub models: SpecModelSet,
}

impl ReplayConfig {
    /// Derives a replay configuration from the campaign that produced
    /// the witnesses.
    pub fn from_campaign(cfg: &CampaignConfig) -> ReplayConfig {
        ReplayConfig {
            fuel: cfg.fuel_per_run.saturating_mul(4),
            detector: cfg.detector.clone(),
            emu: cfg.emu,
            heur_style: cfg.heur_style,
            models: cfg.models,
        }
    }
}

/// What one replay produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Whether the witness's gadget key fired again.
    pub reproduced: bool,
    /// Every gadget the replayed run reported.
    pub gadgets: Vec<GadgetReport>,
}

/// A pooled replay engine over one shared [`Program`].
pub struct Replayer {
    prog: Arc<Program>,
    ctx: ExecContext,
    cfg: ReplayConfig,
    replays: u64,
}

impl Replayer {
    /// Creates a replayer with one pooled execution context.
    pub fn new(prog: Arc<Program>, cfg: ReplayConfig) -> Replayer {
        let ctx = ExecContext::new(&prog);
        Replayer {
            prog,
            ctx,
            cfg,
            replays: 0,
        }
    }

    /// The shared program this replayer executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.prog
    }

    /// The replay configuration.
    pub fn config(&self) -> &ReplayConfig {
        &self.cfg
    }

    /// Total executions performed (replays + minimization candidates).
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Executes `input` with heuristics seeded from `heur_counts` on the
    /// pooled context and returns the run's gadget reports.
    pub fn run(&mut self, input: &[u8], heur_counts: &[(u64, u32)]) -> Vec<GadgetReport> {
        self.replays += 1;
        let mut heur = SpecHeuristics::from_counts(self.cfg.heur_style, heur_counts);
        let opts = RunOptions {
            input: input.to_vec(),
            fuel: self.cfg.fuel,
            config: self.cfg.detector.clone(),
            emu: self.cfg.emu,
            models: self.cfg.models,
        };
        Machine::with_context(&self.prog, &mut self.ctx, opts).run_stats(&mut heur);
        self.ctx.take_gadgets()
    }

    /// Replays a witness: re-executes its input under its pre-run
    /// heuristic state and reports whether the same [`GadgetKey`] fired.
    ///
    /// [`GadgetKey`]: teapot_rt::GadgetKey
    pub fn replay(&mut self, w: &GadgetWitness) -> ReplayOutcome {
        let gadgets = self.run(&w.input, &w.heur_counts);
        ReplayOutcome {
            reproduced: gadgets.iter().any(|g| g.key == w.key),
            gadgets,
        }
    }

    /// Replays a witness once with the origin shadow and witness
    /// recorder on, returning the provenance-enriched trace — tainted
    /// accesses carry resolved input-byte origins and the completing
    /// access appears as a [`TraceEvent::LeakSite`]. Both switches are
    /// restored afterwards, so subsequent pooled replays (and their
    /// campaign-equivalence guarantee) are untouched. Returns `None`
    /// when the witness does not reproduce.
    ///
    /// [`TraceEvent::LeakSite`]: teapot_rt::TraceEvent::LeakSite
    pub fn replay_provenance(&mut self, w: &GadgetWitness) -> Option<Vec<TraceEvent>> {
        self.ctx.set_witness_recording(true);
        self.ctx.set_provenance(true);
        let gadgets = self.run(&w.input, &w.heur_counts);
        let trace = self.ctx.trace().to_vec();
        self.ctx.set_provenance(false);
        self.ctx.set_witness_recording(false);
        gadgets.iter().any(|g| g.key == w.key).then_some(trace)
    }
}

/// One-shot replay on a *fresh* context (no pooling) — the determinism
/// twin of [`Replayer::run`]: both must produce identical gadget lists
/// for identical inputs, because `ExecContext::reset` is observably
/// identical to `ExecContext::new`.
pub fn run_fresh(
    prog: &Arc<Program>,
    cfg: &ReplayConfig,
    input: &[u8],
    heur_counts: &[(u64, u32)],
) -> Vec<GadgetReport> {
    let mut heur = SpecHeuristics::from_counts(cfg.heur_style, heur_counts);
    let opts = RunOptions {
        input: input.to_vec(),
        fuel: cfg.fuel,
        config: cfg.detector.clone(),
        emu: cfg.emu,
        models: cfg.models,
    };
    Machine::from_program(prog.clone(), opts)
        .run(&mut heur)
        .gadgets
}
