//! Gadget enrichment: symbolization, severity scoring and the
//! content-derived **root-cause key** that collapses duplicate findings
//! across shards *and across binaries*.
//!
//! Queue mode fuzzes many binaries that often share code (static
//! libraries, common runtime helpers). The same library gadget then
//! re-reports once per binary under different absolute addresses — the
//! ROADMAP's "cross-binary dedup in queue mode" follow-up. The root
//! cause of a gadget is not its address but its *code*: the key built
//! here hashes the position-normalized instruction content of the basic
//! block containing the transmitting instruction, plus the in-block
//! offset, the branch→access delta, the policy bucket and (for
//! non-default models) the speculation model. Two reports with equal
//! keys are one finding with two locations.
//!
//! Position normalization covers **both** position-dependent operand
//! kinds a TEA-64 instruction can carry: control-flow targets become
//! PC-relative deltas, and *data operands* — the absolute displacements
//! of global loads/stores/`lea`s (and the instrumentation shadowing
//! them) — become `section+offset` references. Identical code whose
//! globals merely moved with the image layout (a different function
//! added elsewhere, a different link order) therefore hashes
//! identically across binaries, while distinct globals keep distinct
//! keys.
//!
//! When the binary still carries symbols, the key uses `symbol+offset`
//! instead — stable across recompilation, not just relocation.

use teapot_isa::{decode_at, Inst, MemRef, INST_MAX_LEN};
use teapot_obj::Binary;
use teapot_rt::{Channel, Controllability, GadgetReport, GadgetWitness, SpecModel};
use teapot_vm::Program;

/// Enriches raw gadget reports against one binary and its predecoded
/// program.
pub struct Enricher<'a> {
    bin: &'a Binary,
    prog: &'a Program,
}

impl<'a> Enricher<'a> {
    /// Creates an enricher for `bin` (with its shared decode `prog`).
    pub fn new(bin: &'a Binary, prog: &'a Program) -> Enricher<'a> {
        Enricher { bin, prog }
    }

    /// `symbol+0xoff` for an original-coordinate PC, when the binary
    /// still carries symbols (stripped COTS binaries — the paper's
    /// deployment scenario — return `None`).
    pub fn symbolize(&self, pc: u64) -> Option<String> {
        let s = self.bin.symbolize(pc)?;
        let off = pc.wrapping_sub(s.addr);
        if off == 0 {
            Some(s.name.clone())
        } else {
            Some(format!("{}+{:#x}", s.name, off))
        }
    }

    /// The Real-Copy (rewritten) address whose original coordinate is
    /// `orig_pc` — where the *bytes* of the reported instruction live.
    fn real_addr_of(&self, orig_pc: u64) -> Option<u64> {
        let meta = self.prog.meta()?;
        meta.addr_map
            .iter()
            .find(|&&(rew, orig)| orig == orig_pc && meta.in_real(rew))
            .map(|&(rew, _)| rew)
    }

    /// The basic-block span (from the shared decode pass) containing a
    /// rewritten address.
    fn block_of(&self, addr: u64) -> Option<(u64, u64)> {
        let blocks = self.prog.blocks();
        let i = blocks.partition_point(|&(start, _)| start <= addr);
        if i == 0 {
            return None;
        }
        let (start, end) = blocks[i - 1];
        (addr < end).then_some((start, end))
    }

    /// Position-normalized FNV-1a hash of the instructions in
    /// `[start, end)`: control-flow targets become PC-relative deltas,
    /// so the hash is invariant under relocation of the whole block.
    fn block_content_hash(&self, start: u64, end: u64) -> u64 {
        let sec = self
            .bin
            .sections
            .iter()
            .find(|s| s.kind.is_executable() && s.vaddr <= start && end <= s.end());
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |s: &str| {
            for b in s.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= 0x1F;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        let Some(sec) = sec else {
            fold(&format!("opaque{start:#x}"));
            return h;
        };
        let mut pc = start;
        while pc < end {
            let off = (pc - sec.vaddr) as usize;
            let slice_end = (off + INST_MAX_LEN).min(sec.bytes.len());
            match decode_at(&sec.bytes[off..slice_end], pc) {
                Ok((inst, len)) => {
                    fold(&self.normalize_inst(&inst, pc));
                    pc += len as u64;
                }
                Err(_) => {
                    fold("bad");
                    pc += 1;
                }
            }
        }
        h
    }

    /// Renders one instruction with both kinds of position-dependent
    /// operand replaced by relocation-invariant forms: control-flow
    /// targets become PC-relative deltas, and absolute (global) memory
    /// displacements become `section+offset` references.
    fn normalize_inst(&self, inst: &Inst<u64>, pc: u64) -> String {
        let rel = |target: u64| target.wrapping_sub(pc) as i64;
        match inst {
            Inst::Jmp { target } => format!("jmp {:+}", rel(*target)),
            Inst::Jcc { cc, target } => format!("j{cc:?} {:+}", rel(*target)),
            Inst::Call { target } => format!("call {:+}", rel(*target)),
            Inst::SimStart { .. } => "sim.start".to_string(),
            Inst::Load {
                dst,
                mem,
                size,
                sext,
            } if mem.base.is_none() => {
                let s = if *sext { "s" } else { "" };
                format!(
                    "load{}{s} {dst}, {}",
                    size.bytes(),
                    self.normalize_abs_mem(mem)
                )
            }
            Inst::Store { src, mem, size } if mem.base.is_none() => {
                format!(
                    "store{} {}, {src}",
                    size.bytes(),
                    self.normalize_abs_mem(mem)
                )
            }
            Inst::StoreI { imm, mem, size } if mem.base.is_none() => {
                format!(
                    "store{} {}, {imm}",
                    size.bytes(),
                    self.normalize_abs_mem(mem)
                )
            }
            Inst::Lea { dst, mem } if mem.base.is_none() => {
                format!("lea {dst}, {}", self.normalize_abs_mem(mem))
            }
            Inst::AsanCheck {
                mem,
                size,
                is_write,
            } if mem.base.is_none() => {
                let rw = if *is_write { "w" } else { "r" };
                format!(
                    "asan.check{rw}{} {}",
                    size.bytes(),
                    self.normalize_abs_mem(mem)
                )
            }
            Inst::MemLog { mem, size } if mem.base.is_none() => {
                format!("memlog{} {}", size.bytes(), self.normalize_abs_mem(mem))
            }
            other => other.to_string(),
        }
    }

    /// `[section+offset(+index*scale)]` for an absolute memory
    /// reference: the displacement resolved against the section that
    /// contains it, so relocated images render identically. Addresses
    /// outside every section (should not occur for compiler-emitted
    /// globals) keep their raw value.
    fn normalize_abs_mem(&self, m: &MemRef) -> String {
        let abs = m.disp as i64 as u64;
        let place = self
            .bin
            .sections
            .iter()
            .find(|s| s.vaddr <= abs && abs < s.vaddr + s.mem_size.max(1))
            .map(|s| format!("{}+{:#x}", s.name, abs - s.vaddr))
            .unwrap_or_else(|| format!("{abs:#x}"));
        match m.index {
            Some(r) => format!("[{place}+{r}*{}]", m.scale),
            None => format!("[{place}]"),
        }
    }

    /// The root-cause key of a gadget. The backbone is always the code
    /// content — `h<block-hash>+<in-block off>d<branch delta>` from the
    /// position-normalized block hash — prefixed by `symbol+off` when
    /// symbols exist. Symbols alone would be unsound for dedup: two
    /// unrelated binaries both defining `main` would collapse distinct
    /// gadgets at equal offsets into one finding; the content hash keeps
    /// them apart while identical code still merges. Reports sharing a
    /// key are the same defect observed at different places. The same
    /// site reached through a *different* speculation model is a
    /// different root cause (distinct trigger, distinct fix): non-PHT
    /// models suffix the key, PHT keys keep the pre-specmodel format.
    pub fn root_cause(&self, g: &GadgetReport) -> String {
        let bucket = match g.key.model {
            SpecModel::Pht => g.bucket(),
            m => format!("{}@{m}", g.bucket()),
        };
        let delta = g.key.pc.wrapping_sub(g.branch_pc);
        let content = self.real_addr_of(g.key.pc).and_then(|rew| {
            self.block_of(rew).map(|(bs, be)| {
                let h = self.block_content_hash(bs, be);
                format!("h{h:016x}+{:#x}d{delta:#x}", rew - bs)
            })
        });
        match (self.key_symbol(g.key.pc), content) {
            (Some(sym), Some(c)) => format!("{sym}:{c}:{bucket}"),
            (Some(sym), None) => format!("{sym}:d{delta:#x}:{bucket}"),
            (None, Some(c)) => format!("{c}:{bucket}"),
            (None, None) => format!("pc{:#x}d{delta:#x}:{bucket}", g.key.pc),
        }
    }

    /// The symbol prefix of a root-cause key. Synthetic disassembler
    /// names (`fun_<addr>`) embed the very position the key must be
    /// invariant to — the same recovered function in a relocated twin
    /// is named after a *different* address — so they fold to a stable
    /// `fun` prefix; real (source) names pass through. Display fields
    /// ([`Enricher::symbolize`]) keep the full synthetic name.
    fn key_symbol(&self, pc: u64) -> Option<String> {
        let s = self.bin.symbolize(pc)?;
        let off = pc.wrapping_sub(s.addr);
        let name = match s.name.strip_prefix("fun_") {
            Some(hex) if !hex.is_empty() && hex.bytes().all(|b| b.is_ascii_hexdigit()) => "fun",
            _ => s.name.as_str(),
        };
        if off == 0 {
            Some(name.to_string())
        } else {
            Some(format!("{name}+{off:#x}"))
        }
    }
}

/// Severity of a gadget on a 0–100 scale, from attacker controllability,
/// leak channel, nesting depth, the widest tainted access in the
/// witness trace, and the speculation model:
///
/// * direct (`User`) control outranks memory massaging;
/// * an MDS-style register leak outranks a cache transmitter, which
///   outranks port contention (bit-rate, per the paper's Fig. 6 policy
///   discussion);
/// * each extra misprediction level the attacker must train costs 5;
/// * every byte of tainted access width (up to 8) adds a point — wider
///   loads move more secret bits per transient window;
/// * non-PHT models pay their trigger-difficulty adjustment
///   ([`SpecModel::severity_adjust`]: grooming a return stack or racing
///   a store-buffer drain is harder than training a branch — PHT scores
///   are unchanged from the pre-specmodel pipeline).
pub fn severity(g: &GadgetReport, w: Option<&GadgetWitness>) -> u32 {
    let mut s: i64 = match g.key.controllability {
        Controllability::User => 50,
        Controllability::Massage => 35,
    };
    s += match g.key.channel {
        Channel::Mds => 25,
        Channel::Cache => 20,
        Channel::Port => 10,
    };
    s -= 5 * i64::from(g.depth.saturating_sub(1));
    if let Some(w) = w {
        s += i64::from(w.max_tainted_width().min(8));
    }
    s += g.key.model.severity_adjust();
    s.clamp(0, 100) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use teapot_rt::GadgetKey;

    fn gadget(ch: Channel, co: Controllability, depth: u32) -> GadgetReport {
        GadgetReport {
            key: GadgetKey {
                pc: 0x400100,
                channel: ch,
                controllability: co,
                model: SpecModel::Pht,
            },
            branch_pc: 0x4000f0,
            access_pc: 0x400100,
            depth,
            description: "t".into(),
        }
    }

    #[test]
    fn severity_orders_buckets_sensibly() {
        let user_mds = severity(&gadget(Channel::Mds, Controllability::User, 1), None);
        let user_cache = severity(&gadget(Channel::Cache, Controllability::User, 1), None);
        let massage_port = severity(&gadget(Channel::Port, Controllability::Massage, 1), None);
        assert!(user_mds > user_cache);
        assert!(user_cache > massage_port);
        // Depth makes exploitation harder.
        let deep = severity(&gadget(Channel::Mds, Controllability::User, 4), None);
        assert!(deep < user_mds);
    }

    #[test]
    fn severity_is_clamped() {
        let g = gadget(Channel::Port, Controllability::Massage, 40);
        assert_eq!(severity(&g, None), 0);
    }

    #[test]
    fn non_pht_models_pay_a_trigger_difficulty_cost() {
        let pht = gadget(Channel::Mds, Controllability::User, 1);
        let mut rsb = gadget(Channel::Mds, Controllability::User, 1);
        rsb.key.model = SpecModel::Rsb;
        let mut stl = gadget(Channel::Mds, Controllability::User, 1);
        stl.key.model = SpecModel::Stl;
        assert!(severity(&pht, None) > severity(&rsb, None));
        assert!(severity(&rsb, None) > severity(&stl, None));
    }
}
