//! SARIF 2.1.0 rendering of a [`TriageDb`] — the interchange format
//! consumed by code-scanning UIs (GitHub, VS Code SARIF viewers, defect
//! dashboards), so triage findings plug into existing review workflows
//! the way SpecFuzz's whitelisting reports plug into patching.
//!
//! Mapping: one **rule** per policy bucket and speculation model
//! (`User-Cache` for PHT findings, `User-Cache@rsb` / `User-Cache@stl`
//! for the other models — PHT rule ids are unchanged from the
//! pre-specmodel pipeline), one **result** per root cause, one
//! **location** per observation site
//! (binary + absolute address of the transmitting instruction). The
//! minimized reproducer, heuristic metadata and raw PCs ride in
//! `properties`. Rendering is byte-deterministic: it walks the already
//! finalized (ranked) database and emits keys in a fixed order.

use crate::db::{escape, hex, TriageDb};

/// SARIF severity level for a 0–100 triage severity.
fn level(severity: u32) -> &'static str {
    match severity {
        70.. => "error",
        40..=69 => "warning",
        _ => "note",
    }
}

/// Renders the database as a SARIF 2.1.0 document.
pub fn render(db: &TriageDb) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"teapot-triage\",\n");
    out.push_str("          \"version\": \"0.1.0\",\n");
    out.push_str(
        "          \"informationUri\": \"https://github.com/teapot/teapot\",\n          \"rules\": [",
    );
    // One rule per bucket and model, in sorted (BTreeMap) order.
    let rules = db.rule_counts();
    for (i, rule) in rules.keys().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{b}\", \"shortDescription\": \
             {{\"text\": \"Spectre gadget ({b})\"}}}}",
            b = escape(rule)
        ));
    }
    if !rules.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, e) in db.entries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\n");
        out.push_str(&format!(
            "          \"ruleId\": \"{}\",\n",
            escape(&e.rule_id())
        ));
        out.push_str(&format!(
            "          \"level\": \"{}\",\n",
            level(e.severity)
        ));
        out.push_str(&format!(
            "          \"rank\": {:.1},\n",
            f64::from(e.severity)
        ));
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            escape(&format!(
                "[severity {}] {} — {} (root cause {})",
                e.severity, e.bucket, e.description, e.root_cause
            ))
        ));
        out.push_str("          \"locations\": [");
        for (j, l) in e.locations.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n            {{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": \"{}\"}}, \"address\": {{\"absoluteAddress\": {}}}}}, \
                 \"logicalLocations\": [{{\"name\": \"shard {}\"}}]}}",
                escape(&l.binary),
                l.key.pc,
                l.shard
            ));
        }
        if !e.locations.is_empty() {
            out.push_str("\n          ");
        }
        out.push_str("],\n");
        out.push_str("          \"properties\": {\n");
        out.push_str(&format!(
            "            \"rootCause\": \"{}\",\n",
            escape(&e.root_cause)
        ));
        out.push_str(&format!(
            "            \"replayed\": {},\n",
            if e.replayed { "true" } else { "false" }
        ));
        out.push_str(&format!(
            "            \"minDepth\": {},\n            \"maxTaintedWidth\": {},\n",
            e.min_depth, e.max_tainted_width
        ));
        match &e.minimized_input {
            Some(m) => out.push_str(&format!("            \"minimizedInput\": \"{}\"\n", hex(m))),
            None => out.push_str("            \"minimizedInput\": null\n"),
        }
        out.push_str("          }\n        }");
    }
    if !db.entries().is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_db_is_valid_shaped_sarif() {
        let mut db = TriageDb::new();
        db.finalize();
        let s = render(&db);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("teapot-triage"));
        assert!(s.contains("\"results\": []"));
    }

    #[test]
    fn levels_follow_severity() {
        assert_eq!(level(90), "error");
        assert_eq!(level(55), "warning");
        assert_eq!(level(10), "note");
    }
}
