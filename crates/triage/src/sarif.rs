//! SARIF 2.1.0 rendering of a [`TriageDb`] — the interchange format
//! consumed by code-scanning UIs (GitHub, VS Code SARIF viewers, defect
//! dashboards), so triage findings plug into existing review workflows
//! the way SpecFuzz's whitelisting reports plug into patching.
//!
//! Mapping: one **rule** per policy bucket and speculation model
//! (`User-Cache` for PHT findings, `User-Cache@rsb` / `User-Cache@stl`
//! for the other models — PHT rule ids are unchanged from the
//! pre-specmodel pipeline), one **result** per root cause, one
//! **location** per observation site
//! (binary + absolute address of the transmitting instruction). The
//! minimized reproducer, heuristic metadata and raw PCs ride in
//! `properties`. Rendering is byte-deterministic: it walks the already
//! finalized (ranked) database and emits keys in a fixed order.
//!
//! Every result additionally carries a `codeFlows`/`threadFlows` chain:
//! the provenance replay's causal narrative (mispredict → tainted load
//! → leaking access, with input-byte origins) when the finding has one,
//! else a minimal branch → access → transmit flow synthesized from the
//! first location — so SARIF viewers always get a navigable flow.

use crate::db::{escape, hex, TriageDb};
use crate::provenance::step_line;
use crate::TriageEntry;

/// SARIF severity level for a 0–100 triage severity.
fn level(severity: u32) -> &'static str {
    match severity {
        70.. => "error",
        40..=69 => "warning",
        _ => "note",
    }
}

/// Renders the database as a SARIF 2.1.0 document.
pub fn render(db: &TriageDb) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"teapot-triage\",\n");
    out.push_str("          \"version\": \"0.1.0\",\n");
    out.push_str(
        "          \"informationUri\": \"https://github.com/teapot/teapot\",\n          \"rules\": [",
    );
    // One rule per bucket and model, in sorted (BTreeMap) order.
    let rules = db.rule_counts();
    for (i, rule) in rules.keys().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{b}\", \"shortDescription\": \
             {{\"text\": \"Spectre gadget ({b})\"}}}}",
            b = escape(rule)
        ));
    }
    if !rules.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, e) in db.entries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\n");
        out.push_str(&format!(
            "          \"ruleId\": \"{}\",\n",
            escape(&e.rule_id())
        ));
        out.push_str(&format!(
            "          \"level\": \"{}\",\n",
            level(e.severity)
        ));
        out.push_str(&format!(
            "          \"rank\": {:.1},\n",
            f64::from(e.severity)
        ));
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            escape(&format!(
                "[severity {}] {} — {} (root cause {})",
                e.severity, e.bucket, e.description, e.root_cause
            ))
        ));
        out.push_str("          \"locations\": [");
        for (j, l) in e.locations.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n            {{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": \"{}\"}}, \"address\": {{\"absoluteAddress\": {}}}}}, \
                 \"logicalLocations\": [{{\"name\": \"shard {}\"}}]}}",
                escape(&l.binary),
                l.key.pc,
                l.shard
            ));
        }
        if !e.locations.is_empty() {
            out.push_str("\n          ");
        }
        out.push_str("],\n");
        push_code_flows(&mut out, e);
        out.push_str("          \"properties\": {\n");
        out.push_str(&format!(
            "            \"rootCause\": \"{}\",\n",
            escape(&e.root_cause)
        ));
        out.push_str(&format!(
            "            \"replayed\": {},\n",
            if e.replayed { "true" } else { "false" }
        ));
        out.push_str(&format!(
            "            \"minDepth\": {},\n            \"maxTaintedWidth\": {},\n",
            e.min_depth, e.max_tainted_width
        ));
        if let Some(chain) = &e.chain {
            out.push_str(&format!(
                "            \"leakedInputBytes\": \"{}\",\n",
                chain.origin
            ));
        }
        match &e.minimized_input {
            Some(m) => out.push_str(&format!("            \"minimizedInput\": \"{}\"\n", hex(m))),
            None => out.push_str("            \"minimizedInput\": null\n"),
        }
        out.push_str("          }\n        }");
    }
    if !db.entries().is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Emits the result's `codeFlows` array: one thread flow walking the
/// causal chain (or, chain-less, a synthesized branch → access →
/// transmit flow over the first location's PCs).
fn push_code_flows(out: &mut String, e: &TriageEntry) {
    let uri = e
        .locations
        .first()
        .map(|l| l.binary.as_str())
        .unwrap_or("unknown");
    let steps: Vec<(u64, String)> = match &e.chain {
        Some(chain) => chain.steps.iter().map(|s| (s.pc, step_line(s))).collect(),
        None => {
            let Some(l) = e.locations.first() else {
                return;
            };
            vec![
                (
                    l.branch_pc,
                    format!("mispredict {:#x} (via {})", l.branch_pc, l.key.model),
                ),
                (l.access_pc, format!("tainted load {:#x}", l.access_pc)),
                (
                    l.key.pc,
                    format!("leaking access {:#x} (via {})", l.key.pc, l.key.model),
                ),
            ]
        }
    };
    out.push_str("          \"codeFlows\": [\n");
    out.push_str("            {\"threadFlows\": [\n");
    out.push_str("              {\"locations\": [");
    for (i, (pc, msg)) in steps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n                {{\"location\": {{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"address\": \
             {{\"absoluteAddress\": {}}}}}, \"message\": {{\"text\": \"{}\"}}}}}}",
            escape(uri),
            pc,
            escape(msg)
        ));
    }
    out.push_str("\n              ]}\n");
    out.push_str("            ]}\n");
    out.push_str("          ],\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_db_is_valid_shaped_sarif() {
        let mut db = TriageDb::new();
        db.finalize();
        let s = render(&db);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("teapot-triage"));
        assert!(s.contains("\"results\": []"));
    }

    #[test]
    fn levels_follow_severity() {
        assert_eq!(level(90), "error");
        assert_eq!(level(55), "warning");
        assert_eq!(level(10), "note");
    }

    #[test]
    fn every_result_carries_code_flows() {
        use crate::db::{TriageEntry, TriageLocation};
        use crate::provenance::{CausalChain, CausalStep, StepRole};
        use teapot_rt::{Channel, Controllability, GadgetKey, OriginSpan, SpecModel};

        let location = TriageLocation {
            binary: "victim.tof".to_string(),
            shard: 0,
            key: GadgetKey {
                pc: 0x400180,
                channel: Channel::Cache,
                controllability: Controllability::User,
                model: SpecModel::Pht,
            },
            branch_pc: 0x400100,
            access_pc: 0x400140,
            depth: 1,
        };
        let entry = |root: &str, chain: Option<CausalChain>| TriageEntry {
            root_cause: root.to_string(),
            bucket: "User-Cache".to_string(),
            model: SpecModel::Pht,
            severity: 70,
            description: "d".to_string(),
            access_symbol: None,
            branch_symbol: None,
            min_depth: 1,
            max_tainted_width: 1,
            witness_input: vec![3, 0],
            minimized_input: Some(vec![3]),
            minimize_steps: 0,
            replayed: true,
            chain,
            locations: vec![location.clone()],
        };
        let chain = CausalChain {
            steps: vec![
                CausalStep {
                    role: StepRole::Mispredict,
                    pc: 0x400100,
                    symbol: Some("main".into()),
                    model: SpecModel::Pht,
                    depth: 1,
                    addr: 0,
                    width: 0,
                    tag: 0,
                    origin: OriginSpan::NONE,
                },
                CausalStep {
                    role: StepRole::Leak,
                    pc: 0x400180,
                    symbol: None,
                    model: SpecModel::Pht,
                    depth: 1,
                    addr: 0,
                    width: 0,
                    tag: 4,
                    origin: OriginSpan::from_offset(0).join(OriginSpan::from_offset(1)),
                },
            ],
            origin: OriginSpan::from_offset(0).join(OriginSpan::from_offset(1)),
        };
        let mut db = TriageDb::new();
        db.insert(entry("with-chain", Some(chain)));
        db.insert(entry("chain-less", None));
        db.finalize();
        let s = render(&db);
        // Both results carry a codeFlows chain: the provenance one its
        // narrated steps, the chain-less one the synthesized flow.
        assert_eq!(s.matches("\"codeFlows\"").count(), 2);
        assert_eq!(s.matches("\"threadFlows\"").count(), 2);
        assert!(s.contains("mispredict 0x400100 <main> (via pht, depth 1)"));
        assert!(s.contains("input bytes 0-1"));
        assert!(s.contains("\"leakedInputBytes\": \"0-1\""));
        assert!(s.contains("tainted load 0x400140"));
    }
}
