//! Causal-chain extraction from provenance replays.
//!
//! A campaign witness records *that* a gadget fired; the provenance
//! replay (the same witness re-executed with the VM's origin shadow on)
//! records *why*: which misprediction opened the speculative window,
//! which load pulled the secret in, which access leaked it, and which
//! attacker-controlled input bytes steered the whole flow. This module
//! turns that enriched trace into a [`CausalChain`] — the ordered
//! mispredict → tainted load → leaking access narrative that
//! `teapot explain` renders and the SARIF renderer emits as
//! `codeFlows`/`threadFlows`.
//!
//! Extraction is a pure function of `(trace, gadget report)`, so the
//! chain inherits the replay's determinism: the same witness always
//! explains the same way.

use teapot_rt::{GadgetReport, OriginSpan, SpecModel, TraceEvent};

/// What one [`CausalStep`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepRole {
    /// The misprediction that opened the speculative window.
    Mispredict,
    /// A tainted memory access inside the window (secret or
    /// attacker-data movement).
    TaintedLoad,
    /// The secret-dependent access that completed the gadget.
    Leak,
}

impl StepRole {
    /// Lower-case label used by every renderer.
    pub fn label(self) -> &'static str {
        match self {
            StepRole::Mispredict => "mispredict",
            StepRole::TaintedLoad => "tainted-load",
            StepRole::Leak => "leak",
        }
    }
}

/// One step of a gadget's causal chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalStep {
    /// Role of this step in the chain.
    pub role: StepRole,
    /// Program counter (original binary coordinates).
    pub pc: u64,
    /// `symbol+off`, when the binary carries symbols.
    pub symbol: Option<String>,
    /// Speculation model of the window (mispredict/leak steps).
    pub model: SpecModel,
    /// Nesting depth (mispredict/leak steps).
    pub depth: u32,
    /// Accessed address (tainted-load steps; 0 otherwise).
    pub addr: u64,
    /// Access width in bytes (tainted-load steps; 0 otherwise).
    pub width: u8,
    /// DIFT tag bits observed at this step (0 for mispredict).
    pub tag: u8,
    /// Input-byte origin interval resolved at this step.
    pub origin: OriginSpan,
}

/// The causal chain of one gadget: mispredict site, the tainted loads
/// inside the window, and the leaking access, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalChain {
    /// Ordered steps; the first is always the mispredict, the last the
    /// leak.
    pub steps: Vec<CausalStep>,
    /// Input-byte interval that reached the leaking access — the bytes
    /// an attacker controls to steer the gadget.
    pub origin: OriginSpan,
}

impl CausalChain {
    /// The leak step (always present).
    pub fn leak(&self) -> &CausalStep {
        self.steps.last().expect("chains always end in a leak")
    }
}

/// Cap on tainted-load steps kept per chain: enough to narrate any
/// planted or real gadget without ballooning reports when a window
/// touches tainted data in a loop.
pub const MAX_LOAD_STEPS: usize = 8;

/// Extracts the causal chain for `g` from a provenance-replay `trace`.
///
/// The anchor is the first [`TraceEvent::LeakSite`] matching the
/// gadget's `(pc, model)`; the window opener is the most recent
/// preceding [`TraceEvent::SpecBranch`] at the report's `branch_pc`
/// (falling back to the most recent same-model branch, then to any
/// branch — nested windows can re-enter under a different model);
/// tainted accesses between the two become the intermediate steps,
/// deduplicated by PC with the *first* occurrence kept and its origin
/// widened over repeats. Returns `None` when the trace carries no
/// matching leak site (provenance off, or a stale witness).
pub fn extract(trace: &[TraceEvent], g: &GadgetReport) -> Option<CausalChain> {
    let leak_idx = trace.iter().position(|ev| {
        matches!(ev, TraceEvent::LeakSite { pc, model, .. }
                 if *pc == g.key.pc && *model == g.key.model)
    })?;
    let TraceEvent::LeakSite {
        pc: leak_pc,
        depth: leak_depth,
        model: leak_model,
        tag: leak_tag,
        origin: leak_origin,
    } = trace[leak_idx]
    else {
        unreachable!();
    };

    let branch_at = |pred: &dyn Fn(u64, SpecModel) -> bool| {
        trace[..leak_idx].iter().rposition(
            |ev| matches!(ev, TraceEvent::SpecBranch { pc, model, .. } if pred(*pc, *model)),
        )
    };
    let branch_idx = branch_at(&|pc, _| pc == g.branch_pc)
        .or_else(|| branch_at(&|_, model| model == g.key.model))
        .or_else(|| branch_at(&|_, _| true));

    let mut steps = Vec::new();
    let window_start = match branch_idx {
        Some(i) => {
            let TraceEvent::SpecBranch { pc, depth, model } = trace[i] else {
                unreachable!();
            };
            steps.push(CausalStep {
                role: StepRole::Mispredict,
                pc,
                symbol: None,
                model,
                depth,
                addr: 0,
                width: 0,
                tag: 0,
                origin: OriginSpan::NONE,
            });
            i + 1
        }
        None => 0,
    };

    for ev in &trace[window_start..leak_idx] {
        let TraceEvent::TaintedAccess {
            pc,
            addr,
            width,
            tag,
            origin,
        } = ev
        else {
            continue;
        };
        if let Some(prev) = steps
            .iter_mut()
            .find(|s| s.role == StepRole::TaintedLoad && s.pc == *pc)
        {
            prev.origin = prev.origin.join(*origin);
            continue;
        }
        if steps.len() <= MAX_LOAD_STEPS {
            steps.push(CausalStep {
                role: StepRole::TaintedLoad,
                pc: *pc,
                symbol: None,
                model: leak_model,
                depth: leak_depth,
                addr: *addr,
                width: *width,
                tag: *tag,
                origin: *origin,
            });
        }
    }

    steps.push(CausalStep {
        role: StepRole::Leak,
        pc: leak_pc,
        symbol: None,
        model: leak_model,
        depth: leak_depth,
        addr: 0,
        width: 0,
        tag: leak_tag,
        origin: leak_origin,
    });
    Some(CausalChain {
        steps,
        origin: leak_origin,
    })
}

/// Renders one step as the single-line form shared by the ranked text
/// report and `teapot explain`.
pub fn step_line(s: &CausalStep) -> String {
    let sym = match &s.symbol {
        Some(sym) => format!(" <{sym}>"),
        None => String::new(),
    };
    match s.role {
        StepRole::Mispredict => format!(
            "mispredict {:#x}{sym} (via {}, depth {})",
            s.pc, s.model, s.depth
        ),
        StepRole::TaintedLoad => format!(
            "tainted load {:#x}{sym} ({}B @ {:#x}, input bytes {})",
            s.pc, s.width, s.addr, s.origin
        ),
        StepRole::Leak => format!(
            "leaking access {:#x}{sym} (via {}, depth {}, input bytes {})",
            s.pc, s.model, s.depth, s.origin
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teapot_rt::{Channel, Controllability, GadgetKey};

    fn report() -> GadgetReport {
        GadgetReport {
            key: GadgetKey {
                pc: 0x400180,
                channel: Channel::Cache,
                controllability: Controllability::User,
                model: SpecModel::Pht,
            },
            branch_pc: 0x400100,
            access_pc: 0x400140,
            depth: 1,
            description: "test".into(),
        }
    }

    fn trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SpecBranch {
                pc: 0x400100,
                depth: 1,
                model: SpecModel::Pht,
            },
            TraceEvent::TaintedAccess {
                pc: 0x400140,
                addr: 0x80_0000,
                width: 1,
                tag: 1,
                origin: OriginSpan::from_offset(1),
            },
            TraceEvent::TaintedAccess {
                pc: 0x400140,
                addr: 0x80_0004,
                width: 1,
                tag: 1,
                origin: OriginSpan::from_offset(0),
            },
            TraceEvent::LeakSite {
                pc: 0x400180,
                depth: 1,
                model: SpecModel::Pht,
                tag: 4,
                origin: OriginSpan::from_offset(0).join(OriginSpan::from_offset(1)),
            },
            TraceEvent::Rollback {
                pc: 0x400100,
                depth: 1,
                model: SpecModel::Pht,
            },
        ]
    }

    #[test]
    fn extracts_branch_loads_and_leak() {
        let chain = extract(&trace(), &report()).unwrap();
        assert_eq!(chain.steps.len(), 3);
        assert_eq!(chain.steps[0].role, StepRole::Mispredict);
        assert_eq!(chain.steps[0].pc, 0x400100);
        // The two same-PC loads merged, origins widened.
        assert_eq!(chain.steps[1].role, StepRole::TaintedLoad);
        assert_eq!(chain.steps[1].origin.offsets(), Some((0, 1)));
        assert_eq!(chain.leak().pc, 0x400180);
        assert_eq!(chain.origin.offsets(), Some((0, 1)));
    }

    #[test]
    fn missing_leak_site_yields_no_chain() {
        let mut t = trace();
        t.retain(|ev| !matches!(ev, TraceEvent::LeakSite { .. }));
        assert!(extract(&t, &report()).is_none());
        // A leak for a different key doesn't anchor this gadget.
        let mut other = report();
        other.key.pc = 0x999999;
        assert!(extract(&trace(), &other).is_none());
    }

    #[test]
    fn step_lines_name_sites_and_offsets() {
        let chain = extract(&trace(), &report()).unwrap();
        assert_eq!(
            step_line(&chain.steps[0]),
            "mispredict 0x400100 (via pht, depth 1)"
        );
        assert!(step_line(&chain.steps[1]).contains("input bytes 0-1"));
        assert!(step_line(chain.leak()).starts_with("leaking access 0x400180"));
        let mut with_sym = chain.steps[0].clone();
        with_sym.symbol = Some("main+0x10".into());
        assert!(step_line(&with_sym).contains("<main+0x10>"));
    }
}
