//! The triage database: root-cause-deduplicated, severity-ranked gadget
//! findings with replay-validated minimized reproducers.
//!
//! Every rendering is **byte-deterministic**: entries are sorted by
//! `(severity desc, root-cause key asc)`, locations inside an entry by
//! `(binary, shard, gadget key)`, and nothing timing-, thread- or
//! path-order-dependent is emitted. A campaign run with `--workers 8`
//! triages to the same bytes as `--workers 1` — the triage extension of
//! the orchestrator's determinism guarantee.

use crate::provenance::{step_line, CausalChain};
use std::collections::BTreeMap;
use teapot_rt::{GadgetKey, SpecModel};
use teapot_vm::DecodeStats;

/// One observation site of a root cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageLocation {
    /// Binary label (file name in queue mode).
    pub binary: String,
    /// Shard that first reported the gadget in that binary's campaign.
    pub shard: u32,
    /// The raw dedup key at this site.
    pub key: GadgetKey,
    /// Mispredicted branch opening the speculative window.
    pub branch_pc: u64,
    /// Access that loaded the secret.
    pub access_pc: u64,
    /// Nesting depth at this site.
    pub depth: u32,
}

/// One deduplicated finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageEntry {
    /// Content-derived root-cause key (see `enrich`).
    pub root_cause: String,
    /// `Controllability-Channel` policy bucket.
    pub bucket: String,
    /// Speculation model whose misprediction opened the window.
    pub model: SpecModel,
    /// Severity 0–100 (maximum over locations).
    pub severity: u32,
    /// Human-readable flow description (from the first location).
    pub description: String,
    /// `symbol+off` of the transmitting instruction, when available.
    pub access_symbol: Option<String>,
    /// `symbol+off` of the opening branch, when available.
    pub branch_symbol: Option<String>,
    /// Minimum nesting depth over locations (easiest site to exploit).
    pub min_depth: u32,
    /// Widest DIFT-tainted access in the witness trace, bytes.
    pub max_tainted_width: u8,
    /// Raw triggering input of the canonical witness.
    pub witness_input: Vec<u8>,
    /// ddmin-minimized reproducer (replays to the same gadget key);
    /// `None` when the gadget carried no witness.
    pub minimized_input: Option<Vec<u8>>,
    /// Candidate replays minimization spent.
    pub minimize_steps: u32,
    /// Whether the witness replayed successfully.
    pub replayed: bool,
    /// Causal chain from the provenance replay of the canonical
    /// witness (mispredict → tainted load → leaking access, with
    /// input-byte origins); `None` when provenance was off or the
    /// gadget carried no witness. Renders only when present, so
    /// provenance-off reports are byte-identical to the
    /// pre-provenance pipeline.
    pub chain: Option<CausalChain>,
    /// Every site this root cause was observed at, sorted by
    /// `(binary, shard, key)`.
    pub locations: Vec<TriageLocation>,
}

impl TriageEntry {
    /// SARIF rule id: the policy bucket, suffixed with the speculation
    /// model for non-PHT findings (`User-Cache`, `User-Cache@rsb`) — so
    /// code-scanning UIs can filter per model while PHT rule ids stay
    /// identical to the pre-specmodel pipeline.
    pub fn rule_id(&self) -> String {
        match self.model {
            SpecModel::Pht => self.bucket.clone(),
            m => format!("{}@{m}", self.bucket),
        }
    }
}

/// Per-binary header statistics surfaced at the top of every report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryStats {
    /// Binary label.
    pub binary: String,
    /// Decode-cache statistics of the shared decode pass (snapshotted
    /// into `.tcs`, audited here).
    pub decode_stats: DecodeStats,
    /// Campaign executions over this binary.
    pub iters: u64,
    /// Raw (pre-triage) deduplicated gadget count.
    pub raw_gadgets: usize,
}

/// The triage database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriageDb {
    /// Per-binary header rows, sorted by label.
    pub binaries: Vec<BinaryStats>,
    entries: Vec<TriageEntry>,
    finalized: bool,
    /// Inserts that merged into an existing root cause instead of
    /// creating a new entry. Telemetry only — never rendered into the
    /// byte-pinned reports.
    dedup_collapses: u64,
}

impl TriageDb {
    /// Creates an empty database.
    pub fn new() -> TriageDb {
        TriageDb::default()
    }

    /// The findings, ranked once [`TriageDb::finalize`] ran.
    pub fn entries(&self) -> &[TriageEntry] {
        &self.entries
    }

    /// Total observation sites across all entries.
    pub fn location_count(&self) -> usize {
        self.entries.iter().map(|e| e.locations.len()).sum()
    }

    /// How many inserts collapsed into an existing root cause.
    pub fn dedup_collapses(&self) -> u64 {
        self.dedup_collapses
    }

    /// Adds a finding, merging it into an existing entry when the
    /// root-cause key matches: locations accumulate, severity takes the
    /// maximum, depth the minimum, and the canonical witness (first in
    /// insertion order, which callers drive in `(binary, shard)` order)
    /// is kept.
    pub fn insert(&mut self, entry: TriageEntry) {
        self.finalized = false;
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.root_cause == entry.root_cause)
        {
            self.dedup_collapses += 1;
            existing.severity = existing.severity.max(entry.severity);
            existing.min_depth = existing.min_depth.min(entry.min_depth);
            existing.max_tainted_width = existing.max_tainted_width.max(entry.max_tainted_width);
            if existing.access_symbol.is_none() {
                existing.access_symbol = entry.access_symbol;
            }
            if existing.branch_symbol.is_none() {
                existing.branch_symbol = entry.branch_symbol;
            }
            if existing.minimized_input.is_none() {
                existing.minimized_input = entry.minimized_input;
                existing.minimize_steps = entry.minimize_steps;
                existing.replayed = entry.replayed;
                existing.witness_input = entry.witness_input;
            }
            // First witness wins, same as the canonical reproducer.
            if existing.chain.is_none() {
                existing.chain = entry.chain;
            }
            existing.locations.extend(entry.locations);
        } else {
            self.entries.push(entry);
        }
    }

    /// Ranks the database: entries by `(severity desc, root_cause asc)`,
    /// locations by `(binary, shard, key)`. Idempotent; every renderer
    /// calls it implicitly through the builder.
    pub fn finalize(&mut self) {
        for e in &mut self.entries {
            e.locations
                .sort_by(|a, b| (&a.binary, a.shard, &a.key).cmp(&(&b.binary, b.shard, &b.key)));
            e.locations.dedup();
        }
        self.entries
            .sort_by(|a, b| (b.severity, &a.root_cause).cmp(&(a.severity, &b.root_cause)));
        self.binaries.sort_by(|a, b| a.binary.cmp(&b.binary));
        self.finalized = true;
    }

    /// Renders the database as JSON-Lines: one header object, then one
    /// object per finding, ranked. Byte-deterministic.
    pub fn to_jsonl(&self) -> String {
        debug_assert!(self.finalized, "finalize() before rendering");
        let mut out = String::new();
        out.push_str("{\"teapot_triage\":1,\"binaries\":[");
        for (i, b) in self.binaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"binary\":\"{}\",\"decode_cache\":{{\"blocks\":{},\"insts\":{},\
                 \"bytes\":{},\"undecoded_bytes\":{}}},\"iters\":{},\"raw_gadgets\":{}}}",
                escape(&b.binary),
                b.decode_stats.blocks,
                b.decode_stats.insts,
                b.decode_stats.bytes,
                b.decode_stats.undecoded_bytes,
                b.iters,
                b.raw_gadgets,
            ));
        }
        out.push_str(&format!(
            "],\"root_causes\":{},\"locations\":{}}}\n",
            self.entries.len(),
            self.location_count()
        ));
        for e in &self.entries {
            // The model key is emitted only for non-PHT findings:
            // default-model JSONL is byte-identical to the
            // pre-specmodel renderer.
            let model = if e.model == SpecModel::Pht {
                String::new()
            } else {
                format!("\"model\":\"{}\",", e.model)
            };
            out.push_str(&format!(
                "{{\"root_cause\":\"{}\",\"bucket\":\"{}\",{model}\"severity\":{},",
                escape(&e.root_cause),
                escape(&e.bucket),
                e.severity
            ));
            out.push_str(&format!(
                "\"description\":\"{}\",\"access_symbol\":{},\"branch_symbol\":{},",
                escape(&e.description),
                json_opt_str(&e.access_symbol),
                json_opt_str(&e.branch_symbol)
            ));
            out.push_str(&format!(
                "\"min_depth\":{},\"max_tainted_width\":{},\"replayed\":{},\
                 \"minimize_steps\":{},",
                e.min_depth,
                e.max_tainted_width,
                if e.replayed { "true" } else { "false" },
                e.minimize_steps
            ));
            out.push_str(&format!("\"witness_input\":\"{}\",", hex(&e.witness_input)));
            match &e.minimized_input {
                Some(m) => out.push_str(&format!("\"minimized_input\":\"{}\",", hex(m))),
                None => out.push_str("\"minimized_input\":null,"),
            }
            // Causal-chain keys appear only on provenance-replayed
            // findings: provenance-off JSONL is byte-identical to the
            // pre-provenance renderer.
            if let Some(chain) = &e.chain {
                out.push_str(&format!(
                    "\"leaked_input_bytes\":\"{}\",\"chain\":[",
                    chain.origin
                ));
                for (i, s) in chain.steps.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"role\":\"{}\",\"pc\":\"{:#x}\",\"symbol\":{}",
                        s.role.label(),
                        s.pc,
                        json_opt_str(&s.symbol)
                    ));
                    match s.role {
                        crate::provenance::StepRole::Mispredict => {
                            out.push_str(&format!(
                                ",\"model\":\"{}\",\"depth\":{}}}",
                                s.model, s.depth
                            ));
                        }
                        crate::provenance::StepRole::TaintedLoad => {
                            out.push_str(&format!(
                                ",\"addr\":\"{:#x}\",\"width\":{},\"origin\":\"{}\"}}",
                                s.addr, s.width, s.origin
                            ));
                        }
                        crate::provenance::StepRole::Leak => {
                            out.push_str(&format!(
                                ",\"model\":\"{}\",\"depth\":{},\"origin\":\"{}\"}}",
                                s.model, s.depth, s.origin
                            ));
                        }
                    }
                }
                out.push_str("],");
            }
            out.push_str("\"locations\":[");
            for (i, l) in e.locations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"binary\":\"{}\",\"shard\":{},\"pc\":\"{:#x}\",\
                     \"branch_pc\":\"{:#x}\",\"access_pc\":\"{:#x}\",\"depth\":{}}}",
                    escape(&l.binary),
                    l.shard,
                    l.key.pc,
                    l.branch_pc,
                    l.access_pc,
                    l.depth
                ));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Renders the database as a ranked, human-readable report.
    pub fn to_text(&self) -> String {
        debug_assert!(self.finalized, "finalize() before rendering");
        let mut out = String::new();
        out.push_str("teapot triage report\n====================\n");
        for b in &self.binaries {
            out.push_str(&format!(
                "binary {}: {} execs, {} raw gadgets; decode cache {} blocks / {} insts / {} bytes ({} undecoded)\n",
                b.binary,
                b.iters,
                b.raw_gadgets,
                b.decode_stats.blocks,
                b.decode_stats.insts,
                b.decode_stats.bytes,
                b.decode_stats.undecoded_bytes,
            ));
        }
        out.push_str(&format!(
            "{} root cause(s) across {} location(s)\n\n",
            self.entries.len(),
            self.location_count()
        ));
        for (rank, e) in self.entries.iter().enumerate() {
            let via = if e.model == SpecModel::Pht {
                String::new()
            } else {
                format!(" [via {}]", e.model)
            };
            out.push_str(&format!(
                "#{} [severity {:3}] {}{via} — {}\n",
                rank + 1,
                e.severity,
                e.bucket,
                e.description
            ));
            out.push_str(&format!("    root cause: {}\n", e.root_cause));
            if let Some(s) = &e.access_symbol {
                out.push_str(&format!("    access: {s}\n"));
            }
            out.push_str(&format!(
                "    depth {} | tainted width {}B | {}\n",
                e.min_depth,
                e.max_tainted_width,
                match &e.minimized_input {
                    Some(m) => format!(
                        "reproducer {} byte(s) (minimized from {} in {} replays): {}",
                        m.len(),
                        e.witness_input.len(),
                        e.minimize_steps,
                        hex(m)
                    ),
                    None => "no witness captured".to_string(),
                }
            ));
            if let Some(chain) = &e.chain {
                out.push_str(&format!(
                    "    causal chain (leaks input bytes {}):\n",
                    chain.origin
                ));
                for (i, s) in chain.steps.iter().enumerate() {
                    out.push_str(&format!("      {}. {}\n", i + 1, step_line(s)));
                }
            }
            for l in &e.locations {
                out.push_str(&format!(
                    "    at {} shard {}: transmit {:#x} (branch {:#x}, access {:#x}, depth {})\n",
                    l.binary, l.shard, l.key.pc, l.branch_pc, l.access_pc, l.depth
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Deduplicated bucket counts (post-triage Table-4 view).
    pub fn bucket_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            *out.entry(e.bucket.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Deduplicated per-rule counts ([`TriageEntry::rule_id`]): the
    /// bucket counts split per speculation model. Equals
    /// [`TriageDb::bucket_counts`] for a PHT-only database.
    pub fn rule_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            *out.entry(e.rule_id()).or_insert(0) += 1;
        }
        out
    }
}

/// Lower-case hex rendering of a byte string.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// JSON string escaping — the campaign renderer's, re-exported so the
/// campaign JSON and the triage JSONL/SARIF can never diverge on how
/// they encode identical strings.
pub use teapot_campaign::json::escape;

fn json_opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teapot_rt::{Channel, Controllability};

    fn entry(root: &str, severity: u32, binary: &str, shard: u32) -> TriageEntry {
        TriageEntry {
            root_cause: root.to_string(),
            bucket: "User-Cache".to_string(),
            model: SpecModel::Pht,
            severity,
            description: "d".to_string(),
            access_symbol: None,
            branch_symbol: None,
            min_depth: 1,
            max_tainted_width: 4,
            witness_input: vec![0x7f, 0xc8],
            minimized_input: Some(vec![0x7f]),
            minimize_steps: 3,
            replayed: true,
            chain: None,
            locations: vec![TriageLocation {
                binary: binary.to_string(),
                shard,
                key: GadgetKey {
                    pc: 0x400100,
                    channel: Channel::Cache,
                    controllability: Controllability::User,
                    model: SpecModel::Pht,
                },
                branch_pc: 0x4000f0,
                access_pc: 0x400100,
                depth: 1,
            }],
        }
    }

    #[test]
    fn insert_merges_by_root_cause_and_ranks() {
        let mut db = TriageDb::new();
        db.insert(entry("cause-b", 40, "b.tof", 1));
        db.insert(entry("cause-a", 90, "a.tof", 0));
        db.insert(entry("cause-b", 55, "a.tof", 0));
        db.finalize();
        assert_eq!(db.entries().len(), 2);
        // Highest severity first.
        assert_eq!(db.entries()[0].root_cause, "cause-a");
        // Merged entry took the max severity and both locations,
        // sorted by (binary, shard).
        let merged = &db.entries()[1];
        assert_eq!(merged.severity, 55);
        assert_eq!(merged.locations.len(), 2);
        assert_eq!(merged.locations[0].binary, "a.tof");
        assert_eq!(merged.locations[1].binary, "b.tof");
    }

    #[test]
    fn renders_are_deterministic() {
        let mut a = TriageDb::new();
        let mut b = TriageDb::new();
        for db in [&mut a, &mut b] {
            db.insert(entry("x", 70, "bin", 0));
            db.insert(entry("y", 70, "bin", 1));
            db.finalize();
        }
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_text(), b.to_text());
        // Equal severity ties break on the root-cause key.
        assert_eq!(a.entries()[0].root_cause, "x");
    }

    #[test]
    fn jsonl_hex_encodes_inputs() {
        let mut db = TriageDb::new();
        db.insert(entry("k", 50, "bin", 0));
        db.finalize();
        let jsonl = db.to_jsonl();
        assert!(jsonl.contains("\"witness_input\":\"7fc8\""));
        assert!(jsonl.contains("\"minimized_input\":\"7f\""));
        assert!(jsonl.lines().count() == 2);
    }

    #[test]
    fn hex_and_escape() {
        assert_eq!(hex(&[0, 255, 16]), "00ff10");
        assert_eq!(escape("a\"b\n"), "a\\\"b\\n");
    }

    #[test]
    fn chain_renders_only_when_present() {
        use crate::provenance::{CausalChain, CausalStep, StepRole};
        use teapot_rt::OriginSpan;
        let mut without = TriageDb::new();
        without.insert(entry("k", 50, "bin", 0));
        without.finalize();
        let jsonl_off = without.to_jsonl();
        let text_off = without.to_text();
        assert!(!jsonl_off.contains("\"chain\""));
        assert!(!jsonl_off.contains("leaked_input_bytes"));
        assert!(!text_off.contains("causal chain"));

        let mut e = entry("k", 50, "bin", 0);
        e.chain = Some(CausalChain {
            steps: vec![
                CausalStep {
                    role: StepRole::Mispredict,
                    pc: 0x4000f0,
                    symbol: None,
                    model: SpecModel::Pht,
                    depth: 1,
                    addr: 0,
                    width: 0,
                    tag: 0,
                    origin: OriginSpan::NONE,
                },
                CausalStep {
                    role: StepRole::TaintedLoad,
                    pc: 0x400100,
                    symbol: Some("main+0x10".into()),
                    model: SpecModel::Pht,
                    depth: 1,
                    addr: 0x80_0000,
                    width: 1,
                    tag: 1,
                    origin: OriginSpan::from_offset(1),
                },
                CausalStep {
                    role: StepRole::Leak,
                    pc: 0x400100,
                    symbol: None,
                    model: SpecModel::Pht,
                    depth: 1,
                    addr: 0,
                    width: 0,
                    tag: 4,
                    origin: OriginSpan::from_offset(1),
                },
            ],
            origin: OriginSpan::from_offset(1),
        });
        let mut with = TriageDb::new();
        with.insert(e);
        with.finalize();
        let jsonl_on = with.to_jsonl();
        let text_on = with.to_text();
        assert!(jsonl_on.contains("\"leaked_input_bytes\":\"1\""));
        assert!(jsonl_on.contains("\"chain\":[{\"role\":\"mispredict\""));
        assert!(jsonl_on.contains("\"role\":\"tainted-load\",\"pc\":\"0x400100\""));
        assert!(jsonl_on.contains("\"origin\":\"1\""));
        assert!(text_on.contains("causal chain (leaks input bytes 1):"));
        assert!(text_on.contains("1. mispredict 0x4000f0 (via pht, depth 1)"));
        assert!(text_on.contains("2. tainted load 0x400100 <main+0x10>"));
        // Scrubbing the chain keys recovers the provenance-off bytes —
        // the symmetric-scrub property the differential suite relies on.
        let scrubbed: String = jsonl_on
            .lines()
            .map(|l| {
                let mut l = l.to_string();
                if let (Some(a), Some(b)) =
                    (l.find("\"leaked_input_bytes\""), l.find("\"locations\""))
                {
                    l.replace_range(a..b, "");
                }
                format!("{l}\n")
            })
            .collect();
        assert_eq!(scrubbed, jsonl_off);
    }

    #[test]
    fn model_annotations_render_only_for_non_pht_entries() {
        let mut db = TriageDb::new();
        db.insert(entry("pht-cause", 70, "bin", 0));
        let mut rsb = entry("rsb-cause", 60, "bin", 0);
        rsb.model = SpecModel::Rsb;
        rsb.locations[0].key.model = SpecModel::Rsb;
        db.insert(rsb);
        db.finalize();
        assert_eq!(db.entries()[0].rule_id(), "User-Cache");
        assert_eq!(db.entries()[1].rule_id(), "User-Cache@rsb");
        let jsonl = db.to_jsonl();
        // Exactly one (RSB) entry carries a model key.
        assert_eq!(jsonl.matches("\"model\":\"rsb\"").count(), 1);
        assert!(!jsonl.contains("\"model\":\"pht\""));
        let text = db.to_text();
        assert_eq!(text.matches("[via rsb]").count(), 1);
        assert!(!text.contains("[via pht]"));
        assert_eq!(db.rule_counts().len(), 2);
        assert_eq!(db.bucket_counts().get("User-Cache"), Some(&2));
    }
}
