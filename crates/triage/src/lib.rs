//! `teapot-triage` — turns raw campaign output into an actionable,
//! deduplicated, severity-ranked gadget database.
//!
//! A fuzzing campaign ends with a pile of one-line gadget reports: a PC,
//! a bucket, a sentence. The paper's point of comparison tools show what
//! analysts actually need — SpecFuzz ships whitelisting/patch workflows
//! off its reports, oo7 ranks gadgets by attacker controllability. This
//! crate is that layer for Teapot, in four stages:
//!
//! 1. **Replay** ([`replay`]) — every gadget's [`GadgetWitness`]
//!    (triggering input + pre-run heuristic counts, captured by the VM's
//!    witness recorder) is re-executed on a pooled
//!    [`ExecContext`](teapot_vm::ExecContext); the VM's determinism
//!    makes the replay bit-identical to the discovering run, so the
//!    same [`GadgetKey`](teapot_rt::GadgetKey) must fire again.
//! 2. **Minimization** ([`minimize`]) — ddmin shrinks the witness input
//!    to a minimal, canonical reproducer, validating every candidate by
//!    replay.
//! 3. **Enrichment + root-cause dedup** ([`enrich`]) — reports gain
//!    symbols (when present) and a 0–100 severity score, and collapse
//!    across shards *and binaries* under a content-derived root-cause
//!    key (position-normalized code hash), closing the ROADMAP's
//!    "cross-binary dedup in queue mode" follow-up.
//! 4. **Reporting** ([`db`], [`sarif`]) — a byte-deterministic
//!    [`TriageDb`] rendered as JSONL, ranked text and SARIF 2.1.0.
//!
//! # Worked example: campaign → triage → SARIF
//!
//! ```
//! use teapot_campaign::{run_campaign, CampaignConfig};
//! use teapot_cc::{compile_to_binary, Options};
//! use teapot_core::{rewrite, RewriteOptions};
//! use teapot_triage::{triage_report, TriageOptions};
//!
//! // Build and instrument a victim with a classic Spectre-V1 gadget.
//! let src = "
//!     char bar[256]; int baz; char inbuf[16];
//!     int main() {
//!         char *foo = malloc(16);
//!         read_input(inbuf, 16);
//!         if (inbuf[1] < 10) { baz = bar[foo[inbuf[1]]]; }
//!         return 0;
//!     }";
//! let mut cots = compile_to_binary(src, &Options::gcc_like()).unwrap();
//! cots.strip();
//! let bin = rewrite(&cots, &RewriteOptions::default()).unwrap();
//!
//! // Fuzz it (a short campaign), then triage the findings.
//! let cfg = CampaignConfig { shards: 2, epochs: 2, iters_per_epoch: 40,
//!                            max_input_len: 16, ..CampaignConfig::default() };
//! let report = run_campaign(&bin, &[], &cfg).unwrap();
//! let (db, stats) = triage_report("victim.tof", &bin, &cfg, &report,
//!                                 &TriageOptions::default());
//!
//! // Every finding replayed, carries a minimized reproducer, and the
//! // database renders deterministically as JSONL / text / SARIF.
//! assert_eq!(stats.replay_failures, 0);
//! for e in db.entries() {
//!     assert!(e.replayed);
//!     assert!(e.minimized_input.is_some());
//! }
//! let sarif = teapot_triage::sarif::render(&db);
//! assert!(sarif.contains("\"version\": \"2.1.0\""));
//! # let _ = db.to_jsonl();
//! ```

pub mod db;
pub mod enrich;
pub mod minimize;
pub mod provenance;
pub mod replay;
pub mod sarif;

use std::collections::HashMap;
use teapot_campaign::queue::QueueOutcome;
use teapot_campaign::{CampaignConfig, CampaignReport};
use teapot_obj::Binary;
use teapot_rt::{GadgetKey, GadgetReport, GadgetWitness};
use teapot_telemetry::Stopwatch;
use teapot_vm::Program;

pub use db::{BinaryStats, TriageDb, TriageEntry, TriageLocation};
pub use enrich::{severity, Enricher};
pub use minimize::{minimize, MinimizeOutcome, DEFAULT_MAX_STEPS};
pub use provenance::{CausalChain, CausalStep, StepRole};
pub use replay::{run_fresh, ReplayConfig, ReplayOutcome, Replayer};

/// Knobs of a triage pass.
#[derive(Debug, Clone)]
pub struct TriageOptions {
    /// ddmin-minimize every witness (each candidate replay-validated).
    pub minimize: bool,
    /// Candidate-replay budget per witness.
    pub max_minimize_steps: u32,
    /// Replay every reproducing witness once with the VM's origin
    /// shadow on and attach the resulting causal chain (mispredict →
    /// tainted load → leaking access, with input-byte origins) to the
    /// finding. Off, findings render exactly as the pre-provenance
    /// pipeline did (pinned by `tests/provenance_differential.rs`).
    pub provenance: bool,
}

impl Default for TriageOptions {
    fn default() -> Self {
        TriageOptions {
            minimize: true,
            max_minimize_steps: DEFAULT_MAX_STEPS,
            provenance: true,
        }
    }
}

/// Work metrics of a triage pass (the numbers `BENCH_triage.json`
/// reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriageStats {
    /// Total VM executions (witness replays + minimization candidates).
    pub replays: u64,
    /// Minimization candidate replays alone.
    pub minimize_steps: u64,
    /// Witnesses processed.
    pub witnesses: usize,
    /// Witnesses that failed to reproduce their gadget key (0 for any
    /// witness captured by this build against the same binary).
    pub replay_failures: usize,
}

/// Wall-clock phase timing of a triage pass. Kept separate from
/// [`TriageStats`] (which stays wall-clock-free and `Eq`-comparable):
/// these values may only ever appear in telemetry output, never in the
/// byte-pinned reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriagePhaseTimes {
    /// Milliseconds spent processing witnesses end to end (replay
    /// validation plus minimization).
    pub replay_ms: u64,
    /// Milliseconds inside ddmin minimization alone (a subset of
    /// `replay_ms`).
    pub minimize_ms: u64,
}

/// One campaign to fold into a triage database.
pub struct TriageInput<'a> {
    /// Label used in reports and location lists (file name in queue
    /// mode).
    pub label: String,
    /// The fuzzed (instrumented) binary — replay target.
    pub bin: &'a Binary,
    /// The campaign's configuration (detector, emulation style,
    /// heuristic style and fuel are what replay needs).
    pub config: CampaignConfig,
    /// The merged campaign report with witnesses.
    pub report: &'a CampaignReport,
}

/// Triages one campaign report against its binary.
pub fn triage_report(
    label: &str,
    bin: &Binary,
    config: &CampaignConfig,
    report: &CampaignReport,
    opts: &TriageOptions,
) -> (TriageDb, TriageStats) {
    let (db, stats, _) = triage_report_timed(label, bin, config, report, opts);
    (db, stats)
}

/// [`triage_report`] plus wall-clock phase timing for telemetry.
pub fn triage_report_timed(
    label: &str,
    bin: &Binary,
    config: &CampaignConfig,
    report: &CampaignReport,
    opts: &TriageOptions,
) -> (TriageDb, TriageStats, TriagePhaseTimes) {
    triage_timed(
        std::iter::once(TriageInput {
            label: label.to_string(),
            bin,
            config: config.clone(),
            report,
        }),
        opts,
    )
}

/// Triages a whole queue run, folding every outcome into one
/// cross-binary database. Replays run against the instrumented binary
/// each [`QueueOutcome`] already carries — nothing is re-read or
/// re-instrumented.
pub fn triage_queue(
    outcomes: &[QueueOutcome],
    config: &CampaignConfig,
    opts: &TriageOptions,
) -> (TriageDb, TriageStats) {
    let (db, stats, _) = triage_queue_timed(outcomes, config, opts);
    (db, stats)
}

/// [`triage_queue`] plus wall-clock phase timing for telemetry.
pub fn triage_queue_timed(
    outcomes: &[QueueOutcome],
    config: &CampaignConfig,
    opts: &TriageOptions,
) -> (TriageDb, TriageStats, TriagePhaseTimes) {
    triage_timed(
        outcomes.iter().map(|o| TriageInput {
            label: o
                .path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| o.path.display().to_string()),
            bin: &o.bin,
            config: config.clone(),
            report: &o.report,
        }),
        opts,
    )
}

/// Folds any number of campaigns into one deduplicated, ranked database.
///
/// Inputs are processed in `(label, shard)` order regardless of the
/// iterator's order, so the resulting database — and its JSONL / SARIF
/// bytes — is a pure function of the campaign *results*, never of
/// worker counts or directory-scan order.
pub fn triage<'a>(
    inputs: impl IntoIterator<Item = TriageInput<'a>>,
    opts: &TriageOptions,
) -> (TriageDb, TriageStats) {
    let (db, stats, _) = triage_timed(inputs, opts);
    (db, stats)
}

/// [`triage`] plus wall-clock phase timing for telemetry. The timing is
/// observation-only: the database and stats are identical to an untimed
/// pass.
pub fn triage_timed<'a>(
    inputs: impl IntoIterator<Item = TriageInput<'a>>,
    opts: &TriageOptions,
) -> (TriageDb, TriageStats, TriagePhaseTimes) {
    let mut inputs: Vec<TriageInput<'a>> = inputs.into_iter().collect();
    inputs.sort_by(|a, b| a.label.cmp(&b.label));

    let mut db = TriageDb::new();
    let mut stats = TriageStats::default();
    let mut times = TriagePhaseTimes::default();
    for input in &inputs {
        triage_one(input, opts, &mut db, &mut stats, &mut times);
    }
    db.finalize();
    (db, stats, times)
}

fn triage_one(
    input: &TriageInput<'_>,
    opts: &TriageOptions,
    db: &mut TriageDb,
    stats: &mut TriageStats,
    times: &mut TriagePhaseTimes,
) {
    let report = input.report;
    let prog = Program::shared(input.bin);
    let enricher = Enricher::new(input.bin, &prog);
    let mut rp = Replayer::new(prog.clone(), ReplayConfig::from_campaign(&input.config));

    let by_key: HashMap<GadgetKey, &GadgetReport> =
        report.gadgets.iter().map(|g| (g.key, g)).collect();

    // Witnessed gadgets: replay, minimize, enrich. `report.witnesses`
    // is already deduplicated in shard-index order.
    let mut witnessed: std::collections::HashSet<GadgetKey> = std::collections::HashSet::new();
    for sw in &report.witnesses {
        let w = &sw.witness;
        witnessed.insert(w.key);
        stats.witnesses += 1;
        let Some(g) = by_key.get(&w.key).copied() else {
            continue; // stale witness for a key the report dropped
        };
        // minimize() performs the validation replay itself (its `None`
        // is exactly "the witness did not reproduce"), so the witness is
        // executed once, not twice.
        let watch = Stopwatch::new();
        let (replayed, minimized, steps) = if opts.minimize {
            let r = match minimize(&mut rp, w, opts.max_minimize_steps) {
                Some(m) => (true, Some(m.input), m.steps),
                None => (false, None, 0),
            };
            times.minimize_ms += watch.ms();
            r
        } else {
            let outcome = rp.replay(w);
            let minimized = outcome.reproduced.then(|| w.input.clone());
            (outcome.reproduced, minimized, 0)
        };
        times.replay_ms += watch.ms();
        if !replayed {
            stats.replay_failures += 1;
        }
        stats.minimize_steps += u64::from(steps);
        // One extra replay with the origin shadow on turns the witness
        // into a causal chain; symbolization happens here so renderers
        // stay plain-string.
        let chain = (opts.provenance && replayed)
            .then(|| rp.replay_provenance(w))
            .flatten()
            .and_then(|trace| provenance::extract(&trace, g))
            .map(|mut chain| {
                for step in &mut chain.steps {
                    step.symbol = enricher.symbolize(step.pc);
                }
                chain
            });
        db.insert(build_entry(
            &enricher,
            &input.label,
            sw.shard,
            g,
            Some(w),
            replayed,
            minimized,
            steps,
            chain,
        ));
    }

    // Witness-less gadgets (capture off, or pre-capture snapshots):
    // enriched and ranked, but with no reproducer. Shard attribution is
    // unknown without a witness and reported as shard 0.
    for g in &report.gadgets {
        if !witnessed.contains(&g.key) {
            db.insert(build_entry(
                &enricher,
                &input.label,
                0,
                g,
                None,
                false,
                None,
                0,
                None,
            ));
        }
    }

    stats.replays += rp.replays();
    db.binaries.push(BinaryStats {
        binary: input.label.clone(),
        decode_stats: report.decode_stats,
        iters: report.iters,
        raw_gadgets: report.gadgets.len(),
    });
}

#[allow(clippy::too_many_arguments)]
fn build_entry(
    enricher: &Enricher<'_>,
    label: &str,
    shard: u32,
    g: &GadgetReport,
    w: Option<&GadgetWitness>,
    replayed: bool,
    minimized_input: Option<Vec<u8>>,
    minimize_steps: u32,
    chain: Option<provenance::CausalChain>,
) -> TriageEntry {
    TriageEntry {
        root_cause: enricher.root_cause(g),
        bucket: g.bucket(),
        model: g.key.model,
        severity: severity(g, w),
        description: g.description.clone(),
        access_symbol: enricher.symbolize(g.access_pc),
        branch_symbol: enricher.symbolize(g.branch_pc),
        min_depth: g.depth,
        max_tainted_width: w.map(|w| w.max_tainted_width()).unwrap_or(0),
        witness_input: w.map(|w| w.input.clone()).unwrap_or_default(),
        minimized_input,
        minimize_steps,
        replayed,
        chain,
        locations: vec![TriageLocation {
            binary: label.to_string(),
            shard,
            key: g.key,
            branch_pc: g.branch_pc,
            access_pc: g.access_pc,
            depth: g.depth,
        }],
    }
}
