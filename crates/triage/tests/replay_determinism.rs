//! Property test (offline proptest shim): for every gadget a smoke
//! campaign finds — across randomized campaign seeds — `triage::replay`
//! reproduces the identical `GadgetKey` from both the raw and the
//! minimized witness, on pooled and fresh execution contexts alike.
//!
//! This pins the two invariants the triage subsystem is built on:
//!
//! * the VM is a pure function of `(program, input, heuristic state,
//!   options)`, so a witness replays bit-identically;
//! * `ExecContext::reset` is observably identical to a fresh context,
//!   so pooling replays (the hot path) changes nothing.

use proptest::prelude::*;
use std::sync::OnceLock;
use teapot_campaign::{Campaign, CampaignConfig};
use teapot_cc::{compile_to_binary, Options};
use teapot_core::{rewrite, RewriteOptions};
use teapot_obj::Binary;
use teapot_triage::{minimize, run_fresh, ReplayConfig, Replayer};
use teapot_vm::Program;

const TARGET: &str = "
    char bar[256];
    int baz;
    char inbuf[16];
    int main() {
        char *foo = malloc(16);
        read_input(inbuf, 16);
        int index = inbuf[1];
        if (index < 10) {
            int secret = foo[index];
            baz = bar[secret];
        }
        return 0;
    }";

fn target() -> &'static Binary {
    static BIN: OnceLock<Binary> = OnceLock::new();
    BIN.get_or_init(|| {
        let mut bin = compile_to_binary(TARGET, &Options::gcc_like()).unwrap();
        bin.strip();
        rewrite(&bin, &RewriteOptions::default()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn every_witness_replays_raw_and_minimized_pooled_and_fresh(seed in 0u64..1_000_000) {
        let bin = target();
        let cfg = CampaignConfig {
            seed,
            shards: 2,
            workers: 1,
            epochs: 2,
            iters_per_epoch: 60,
            max_input_len: 16,
            ..CampaignConfig::default()
        };
        let prog = Program::shared(bin);
        let mut c = Campaign::new(cfg.clone()).unwrap();
        let report = c.run_shared(&prog, &[]);
        prop_assert_eq!(report.gadgets.len(), report.witnesses.len());
        prop_assert!(!report.witnesses.is_empty(), "smoke campaign finds gadgets");

        let rcfg = ReplayConfig::from_campaign(&cfg);
        let mut pooled = Replayer::new(prog.clone(), rcfg.clone());
        for sw in &report.witnesses {
            let w = &sw.witness;

            // Raw witness, pooled context.
            let pooled_gadgets = pooled.run(&w.input, &w.heur_counts);
            prop_assert!(
                pooled_gadgets.iter().any(|g| g.key == w.key),
                "raw witness replays (pooled): {:?}", w.key
            );

            // Raw witness, fresh context: the identical gadget list, not
            // just the identical key — reset must equal fresh.
            let fresh_gadgets = run_fresh(&prog, &rcfg, &w.input, &w.heur_counts);
            prop_assert_eq!(&pooled_gadgets, &fresh_gadgets);

            // Minimized witness, pooled and fresh.
            let m = minimize(&mut pooled, w, 256).expect("witness replays");
            let min_pooled = pooled.run(&m.input, &w.heur_counts);
            prop_assert!(
                min_pooled.iter().any(|g| g.key == w.key),
                "minimized witness replays (pooled): {:?}", w.key
            );
            let min_fresh = run_fresh(&prog, &rcfg, &m.input, &w.heur_counts);
            prop_assert_eq!(&min_pooled, &min_fresh);

            // Minimization is deterministic: running it again from the
            // same witness yields the same reproducer.
            let again = minimize(&mut pooled, w, 256).expect("witness replays");
            prop_assert_eq!(&m.input, &again.input);
            prop_assert_eq!(m.steps, again.steps);
        }
    }
}
