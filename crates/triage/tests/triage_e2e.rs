//! End-to-end triage acceptance tests:
//!
//! 1. **Worker-count determinism** — `--workers 8` and `--workers 1`
//!    campaigns triage to byte-identical JSONL, text and SARIF.
//! 2. **Cross-binary dedup** — queue mode over two binaries sharing a
//!    gadget reports it once, with both locations listed in
//!    `(binary, shard)` order.
//! 3. **Reproducers** — every emitted gadget carries a minimized witness
//!    that replays to the same `GadgetKey`.

use teapot_campaign::{queue, Campaign, CampaignConfig};
use teapot_cc::{compile_to_binary, Options};
use teapot_core::{rewrite, RewriteOptions};
use teapot_obj::Binary;
use teapot_triage::{run_fresh, sarif, triage_queue, triage_report, ReplayConfig, TriageOptions};
use teapot_vm::Program;

/// A gadget behind a magic-byte gate plus a second, always-reachable
/// gadget (the campaign e2e target). Needs a full-size smoke campaign
/// before anything fires.
const TARGET: &str = "
    char bar[256];
    int baz;
    char inbuf[16];
    int main() {
        char *foo = malloc(16);
        read_input(inbuf, 16);
        int index = inbuf[1];
        if (inbuf[0] == 0x7f) {
            if (index < 10) {
                int secret = foo[index];
                baz = bar[secret];
            }
        }
        return 0;
    }";

/// The same Spectre-V1 shape without the gate: tiny campaigns find its
/// gadgets for any seed, keeping the cheap tests cheap.
const EASY: &str = "
    char bar[256];
    int baz;
    char inbuf[16];
    int main() {
        char *foo = malloc(16);
        read_input(inbuf, 16);
        int index = inbuf[1];
        if (index < 10) {
            int secret = foo[index];
            baz = bar[secret];
        }
        return 0;
    }";

fn instrumented(src: &str) -> Binary {
    let mut bin = compile_to_binary(src, &Options::gcc_like()).unwrap();
    bin.strip();
    rewrite(&bin, &RewriteOptions::default()).unwrap()
}

fn config(workers: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 0x7EA907,
        shards: 4,
        workers,
        epochs: 4,
        iters_per_epoch: 80,
        max_input_len: 16,
        ..CampaignConfig::default()
    }
}

#[test]
fn triage_is_byte_identical_across_worker_counts() {
    let bin = instrumented(TARGET);
    let outputs: Vec<(String, String, String)> = [1usize, 8]
        .iter()
        .map(|&w| {
            let cfg = config(w);
            let mut c = Campaign::new(cfg.clone()).unwrap();
            let report = c.run(&bin, &[]);
            let (db, stats) =
                triage_report("target.tof", &bin, &cfg, &report, &TriageOptions::default());
            assert_eq!(stats.replay_failures, 0, "all witnesses replay");
            (db.to_jsonl(), db.to_text(), sarif::render(&db))
        })
        .collect();
    assert_eq!(outputs[0].0, outputs[1].0, "JSONL diverged");
    assert_eq!(outputs[0].1, outputs[1].1, "text diverged");
    assert_eq!(outputs[0].2, outputs[1].2, "SARIF diverged");
    assert!(!outputs[0].0.is_empty());
}

#[test]
fn every_gadget_carries_a_minimized_replaying_witness() {
    let bin = instrumented(TARGET);
    let cfg = config(2);
    let mut c = Campaign::new(cfg.clone()).unwrap();
    let report = c.run(&bin, &[]);
    assert!(!report.gadgets.is_empty(), "campaign found gadgets");
    assert_eq!(report.gadgets.len(), report.witnesses.len());

    let (db, stats) = triage_report("target.tof", &bin, &cfg, &report, &TriageOptions::default());
    assert_eq!(stats.replay_failures, 0);
    assert!(stats.replays > 0);
    assert!(!db.entries().is_empty());

    let prog = Program::shared(&bin);
    let rcfg = ReplayConfig::from_campaign(&cfg);
    for e in db.entries() {
        assert!(e.replayed, "{}: witness replayed", e.root_cause);
        let minimized = e
            .minimized_input
            .as_ref()
            .expect("minimized reproducer present");
        assert!(
            minimized.len() <= e.witness_input.len(),
            "minimization never grows the input"
        );
        // The minimized input replays to (at least) one of the entry's
        // gadget keys on a *fresh* context — witness heuristic counts
        // come from the canonical location's witness.
        let w = report
            .witnesses
            .iter()
            .find(|sw| e.locations.iter().any(|l| l.key == sw.witness.key))
            .expect("entry has a witness");
        let gadgets = run_fresh(&prog, &rcfg, minimized, &w.witness.heur_counts);
        assert!(
            gadgets.iter().any(|g| g.key == w.witness.key),
            "{}: minimized input replays the gadget",
            e.root_cause
        );
    }
}

#[test]
fn severity_ranking_is_monotone_and_entries_deduplicate_shards() {
    let bin = instrumented(TARGET);
    let cfg = config(2);
    let mut c = Campaign::new(cfg.clone()).unwrap();
    let report = c.run(&bin, &[]);
    let (db, _) = triage_report("target.tof", &bin, &cfg, &report, &TriageOptions::default());

    let severities: Vec<u32> = db.entries().iter().map(|e| e.severity).collect();
    let mut sorted = severities.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(severities, sorted, "entries ranked by severity");

    // Root causes never exceed raw gadgets; locations cover every
    // distinct (binary, key).
    assert!(db.entries().len() <= report.gadgets.len());
    assert_eq!(db.location_count(), report.gadgets.len());
}

#[test]
fn queue_mode_dedups_the_shared_gadget_across_binaries() {
    let dir = std::env::temp_dir().join("teapot-triage-queue-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Two binaries built from the same source: the classic shared-
    // library scenario where one defect reports once per binary.
    let inst = instrumented(EASY);
    std::fs::write(dir.join("a_app.tof"), inst.to_bytes()).unwrap();
    std::fs::write(dir.join("b_app.tof"), inst.to_bytes()).unwrap();

    let cfg = CampaignConfig {
        shards: 2,
        epochs: 2,
        iters_per_epoch: 40,
        max_input_len: 16,
        ..CampaignConfig::default()
    };
    let outcomes = queue::run_queue(&dir, &cfg, &[]).unwrap();
    assert_eq!(outcomes.len(), 2);
    assert!(!outcomes[0].report.gadgets.is_empty());

    let (db, stats) = triage_queue(&outcomes, &cfg, &TriageOptions::default());
    assert_eq!(stats.replay_failures, 0);

    // The shared gadget collapses to one root cause with both binaries
    // listed, locations sorted by (binary, shard).
    assert_eq!(
        db.entries().len(),
        outcomes[0].report.gadgets.len(),
        "each defect reported once, not once per binary"
    );
    for e in db.entries() {
        let binaries: Vec<&str> = e.locations.iter().map(|l| l.binary.as_str()).collect();
        assert!(binaries.contains(&"a_app.tof") && binaries.contains(&"b_app.tof"));
        let mut sorted = e.locations.clone();
        sorted.sort_by(|a, b| (&a.binary, a.shard).cmp(&(&b.binary, b.shard)));
        assert_eq!(e.locations, sorted, "locations in (binary, shard) order");
    }

    // Header lists both binaries with their decode statistics.
    let jsonl = db.to_jsonl();
    assert!(jsonl.contains("a_app.tof") && jsonl.contains("b_app.tof"));
    assert!(jsonl.contains("decode_cache"));

    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: data-operand normalization in the root-cause hash. Two
/// binaries share the gadget *code*, but one carries >4 KiB of extra
/// (unreachable) text, which pushes the data/BSS sections to different
/// page bases — every global the gadget block touches relocates. The
/// normalized hash renders those operands as `section+offset`, so the
/// relocated twins still collapse to one root cause per defect.
#[test]
fn relocated_globals_dedup_across_binaries() {
    let dir = std::env::temp_dir().join("teapot-triage-reloc-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // The gadget lives in its own function, byte-identical in both
    // programs; the padded twin adds a *reachable* pad function (the
    // rewriter drops unreachable code) big enough that the rewritten
    // text grows past a page boundary: the gadget function and every
    // data/BSS section relocate. The pad's own global comes *after*
    // the shared ones, so their section offsets are untouched — only
    // the section bases move.
    let globals = "
        char bar[256];
        int baz;
        char inbuf[16];
        char *foo;";
    let leak_and_main = "
        void leak(int index) {
            if (index < 10) {
                int secret = foo[index];
                baz = bar[secret];
            }
        }
        int main() {
            __pad();
            foo = malloc(16);
            read_input(inbuf, 16);
            leak(inbuf[1]);
            return 0;
        }";
    let mut pad_body = String::new();
    for k in 0..400 {
        pad_body.push_str(&format!("    __pad_t = __pad_t + {k};\n"));
    }
    // The pad precedes `leak`, so in the padded twin the gadget function
    // itself relocates along with every global it touches.
    let plain =
        format!("{globals}\nint __pad_t;\nvoid __pad() {{ __pad_t = 1; }}\n{leak_and_main}");
    let padded = format!("{globals}\nint __pad_t;\nvoid __pad() {{\n{pad_body}}}\n{leak_and_main}");
    let a = instrumented(&plain);
    let b = instrumented(&padded);

    // The relocation really happened: every data/BSS section sits at a
    // different base in the padded binary.
    let data_base = |bin: &Binary, name: &str| {
        bin.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.vaddr)
            .expect("section present")
    };
    assert_ne!(
        data_base(&a, ".bss"),
        data_base(&b, ".bss"),
        "pad failed to relocate the globals — test would be vacuous"
    );

    std::fs::write(dir.join("a_app.tof"), a.to_bytes()).unwrap();
    std::fs::write(dir.join("b_app.tof"), b.to_bytes()).unwrap();

    let cfg = CampaignConfig {
        shards: 2,
        epochs: 2,
        iters_per_epoch: 40,
        max_input_len: 16,
        ..CampaignConfig::default()
    };
    let outcomes = queue::run_queue(&dir, &cfg, &[]).unwrap();
    let (db, stats) = triage_queue(&outcomes, &cfg, &TriageOptions::default());
    assert_eq!(stats.replay_failures, 0);

    // At least one root cause merges across both binaries, and no
    // defect splits into an `a_app`-only plus `b_app`-only pair at the
    // same bucket and depth (the pre-normalization failure mode).
    let merged = db
        .entries()
        .iter()
        .filter(|e| {
            let bins: Vec<&str> = e.locations.iter().map(|l| l.binary.as_str()).collect();
            bins.contains(&"a_app.tof") && bins.contains(&"b_app.tof")
        })
        .count();
    assert!(
        merged > 0,
        "relocated globals did not dedup: {:#?}",
        db.entries()
            .iter()
            .map(|e| (&e.root_cause, e.locations.len()))
            .collect::<Vec<_>>()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_triage_is_byte_identical_across_worker_counts() {
    let dir = std::env::temp_dir().join("teapot-triage-queue-workers-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let inst = instrumented(EASY);
    std::fs::write(dir.join("a_app.tof"), inst.to_bytes()).unwrap();
    std::fs::write(dir.join("b_app.tof"), inst.to_bytes()).unwrap();

    let outputs: Vec<(String, String)> = [1usize, 4]
        .iter()
        .map(|&w| {
            let cfg = CampaignConfig {
                shards: 2,
                workers: w,
                epochs: 2,
                iters_per_epoch: 30,
                max_input_len: 16,
                ..CampaignConfig::default()
            };
            let outcomes = queue::run_queue(&dir, &cfg, &[]).unwrap();
            let (db, _) = triage_queue(&outcomes, &cfg, &TriageOptions::default());
            (db.to_jsonl(), sarif::render(&db))
        })
        .collect();
    assert_eq!(outputs[0], outputs[1]);

    std::fs::remove_dir_all(&dir).ok();
}
