//! Differential testing of the MiniC compiler: random expression trees
//! are evaluated by (a) compiling to TEA-64 and running on the VM and
//! (b) a direct Rust reference interpreter. Any divergence is a code
//! generation or ISA-semantics bug.
//!
//! This matters beyond the compiler: the detection experiments assume the
//! instrumented workloads compute what their source says.

use proptest::prelude::*;
use teapot_cc::{compile_to_binary, Options, SwitchLowering};
use teapot_vm::{ExitStatus, Machine, RunOptions, SpecHeuristics};

/// A restricted expression AST mirroring MiniC's semantics.
#[derive(Debug, Clone)]
enum E {
    Num(i32),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Shr(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Le(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
    BitNot(Box<E>),
}

const NVARS: usize = 4;

fn eval(e: &E, vars: &[i64; NVARS]) -> i64 {
    match e {
        E::Num(v) => *v as i64,
        E::Var(i) => vars[i % NVARS],
        E::Add(a, b) => eval(a, vars).wrapping_add(eval(b, vars)),
        E::Sub(a, b) => eval(a, vars).wrapping_sub(eval(b, vars)),
        E::Mul(a, b) => eval(a, vars).wrapping_mul(eval(b, vars)),
        E::And(a, b) => eval(a, vars) & eval(b, vars),
        E::Or(a, b) => eval(a, vars) | eval(b, vars),
        E::Xor(a, b) => eval(a, vars) ^ eval(b, vars),
        E::Shl(a, b) => eval(a, vars).wrapping_shl((eval(b, vars) & 63) as u32),
        E::Shr(a, b) => {
            // MiniC `int` is signed: >> is arithmetic.
            eval(a, vars).wrapping_shr((eval(b, vars) & 63) as u32)
        }
        E::Lt(a, b) => (eval(a, vars) < eval(b, vars)) as i64,
        E::Le(a, b) => (eval(a, vars) <= eval(b, vars)) as i64,
        E::Eq(a, b) => (eval(a, vars) == eval(b, vars)) as i64,
        E::Neg(a) => eval(a, vars).wrapping_neg(),
        E::Not(a) => (eval(a, vars) == 0) as i64,
        E::BitNot(a) => !eval(a, vars),
    }
}

fn to_minic(e: &E) -> String {
    match e {
        E::Num(v) => {
            if *v < 0 {
                format!("(0 - {})", (*v as i64).unsigned_abs())
            } else {
                format!("{v}")
            }
        }
        E::Var(i) => format!("v{}", i % NVARS),
        E::Add(a, b) => format!("({} + {})", to_minic(a), to_minic(b)),
        E::Sub(a, b) => format!("({} - {})", to_minic(a), to_minic(b)),
        E::Mul(a, b) => format!("({} * {})", to_minic(a), to_minic(b)),
        E::And(a, b) => format!("({} & {})", to_minic(a), to_minic(b)),
        E::Or(a, b) => format!("({} | {})", to_minic(a), to_minic(b)),
        E::Xor(a, b) => format!("({} ^ {})", to_minic(a), to_minic(b)),
        E::Shl(a, b) => format!("({} << ({} & 63))", to_minic(a), to_minic(b)),
        E::Shr(a, b) => format!("({} >> ({} & 63))", to_minic(a), to_minic(b)),
        E::Lt(a, b) => format!("({} < {})", to_minic(a), to_minic(b)),
        E::Le(a, b) => format!("({} <= {})", to_minic(a), to_minic(b)),
        E::Eq(a, b) => format!("({} == {})", to_minic(a), to_minic(b)),
        E::Neg(a) => format!("(-{})", to_minic(a)),
        E::Not(a) => format!("(!{})", to_minic(a)),
        E::BitNot(a) => format!("(~{})", to_minic(a)),
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(E::Num),
        (0usize..NVARS).prop_map(E::Var),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Shr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Le(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            inner.prop_map(|a| E::BitNot(Box::new(a))),
        ]
    })
}

fn run_compiled(src: &str) -> i64 {
    let bin = compile_to_binary(src, &Options::gcc_like())
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut heur = SpecHeuristics::default();
    let out = Machine::new(&bin, RunOptions::default()).run(&mut heur);
    match out.status {
        ExitStatus::Exit(c) => c,
        other => panic!("program did not exit: {other:?}\n{src}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_expressions_match_reference(
        e in arb_expr(),
        vars in [-100i64..100, -100i64..100, -100i64..100, -100i64..100],
    ) {
        let expected = eval(&e, &vars) & 0xff; // exit codes: low byte
        let src = format!(
            "int main() {{
                 int v0 = {};
                 int v1 = {};
                 int v2 = {};
                 int v3 = {};
                 int r = {};
                 return r & 0xff;
             }}",
            fmt_i64(vars[0]),
            fmt_i64(vars[1]),
            fmt_i64(vars[2]),
            fmt_i64(vars[3]),
            to_minic(&e),
        );
        let got = run_compiled(&src);
        prop_assert_eq!(got, expected, "expr: {:?}\nsrc: {}", e, src);
    }

    #[test]
    fn branch_and_value_comparisons_agree(
        a in -200i64..200,
        b in -200i64..200,
    ) {
        // `if (a < b)` (branch codegen) and `x = a < b` (set codegen) must
        // agree — they use different instruction selections.
        let src = format!(
            "int main() {{
                 int a = {};
                 int b = {};
                 int as_value = a < b;
                 int as_branch = 0;
                 if (a < b) {{ as_branch = 1; }}
                 if (as_value == as_branch) {{ return 1; }}
                 return 0;
             }}",
            fmt_i64(a),
            fmt_i64(b),
        );
        prop_assert_eq!(run_compiled(&src), 1);
    }

    #[test]
    fn switch_lowerings_agree_on_random_scrutinees(
        v in -3i64..12,
        cases in proptest::collection::btree_set(0i64..8, 1..6),
    ) {
        let cases: Vec<i64> = cases.into_iter().collect();
        let body: String = cases
            .iter()
            .map(|c| format!("case {c}: return {};\n", 10 + c))
            .collect();
        let src = format!(
            "int f(int v) {{
                 switch (v) {{
                     {body}
                     default: return 99;
                 }}
             }}
             int main() {{ return f({}); }}",
            fmt_i64(v),
        );
        let chain = run_compiled(&src);
        let bin = compile_to_binary(
            &src,
            &Options {
                switch_lowering: SwitchLowering::JumpTable,
                ..Options::gcc_like()
            },
        )
        .unwrap();
        let mut heur = SpecHeuristics::default();
        let out = Machine::new(&bin, RunOptions::default()).run(&mut heur);
        let table = match out.status {
            ExitStatus::Exit(c) => c,
            other => panic!("jump-table run: {other:?}"),
        };
        let expected = cases
            .iter()
            .find(|&&c| c == v)
            .map(|c| 10 + c)
            .unwrap_or(99);
        prop_assert_eq!(chain, expected);
        prop_assert_eq!(table, expected);
    }
}

fn fmt_i64(v: i64) -> String {
    if v < 0 {
        format!("(0 - {})", v.unsigned_abs())
    } else {
        format!("{v}")
    }
}
