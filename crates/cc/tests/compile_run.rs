//! Compile-and-execute tests: MiniC programs run on the TEA-64 VM and
//! their results are checked, plus code-shape assertions for the paper's
//! Fig. 2 switch lowerings and Appendix A.1 cmov if-conversion.

use teapot_cc::{compile_to_binary, Options, SwitchLowering};
use teapot_isa::{decode_at, Inst};
use teapot_obj::Binary;
use teapot_vm::{ExitStatus, Machine, RunOptions, SpecHeuristics};

fn run_with(src: &str, opts: &Options, input: &[u8]) -> teapot_vm::RunOutcome {
    let bin = compile_to_binary(src, opts).expect("compile");
    let mut heur = SpecHeuristics::default();
    Machine::new(
        &bin,
        RunOptions {
            input: input.to_vec(),
            ..RunOptions::default()
        },
    )
    .run(&mut heur)
}

fn exit_code(src: &str) -> i64 {
    match run_with(src, &Options::gcc_like(), &[]).status {
        ExitStatus::Exit(c) => c,
        other => panic!("program did not exit cleanly: {other:?}"),
    }
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(exit_code("int main() { return 2 + 3 * 4; }"), 14);
    assert_eq!(exit_code("int main() { return (2 + 3) * 4; }"), 20);
    assert_eq!(exit_code("int main() { return 100 / 7; }"), 14);
    assert_eq!(exit_code("int main() { return 100 % 7; }"), 2);
    assert_eq!(exit_code("int main() { return 1 << 6; }"), 64);
    assert_eq!(exit_code("int main() { return 255 >> 4; }"), 15);
    assert_eq!(
        exit_code("int main() { return (5 ^ 3) + (5 & 3) + (5 | 3); }"),
        6 + 1 + 7
    );
    assert_eq!(exit_code("int main() { return -5 + 7; }"), 2);
    assert_eq!(exit_code("int main() { return ~0 + 2; }"), 1);
    assert_eq!(exit_code("int main() { return !0 + !5; }"), 1);
}

#[test]
fn signed_vs_unsigned_comparison() {
    // Signed: -1 < 1.
    assert_eq!(
        exit_code("int main() { int a = 0 - 1; if (a < 1) { return 1; } return 0; }"),
        1
    );
    // Unsigned: (uint)-1 is huge.
    assert_eq!(
        exit_code("int main() { uint a = 0 - 1; if (a < 1) { return 1; } return 0; }"),
        0
    );
    // Signed shift right preserves sign; unsigned doesn't.
    assert_eq!(
        exit_code("int main() { int a = 0 - 8; return (a >> 2) + 3; }"),
        1
    );
}

#[test]
fn locals_scopes_and_loops() {
    assert_eq!(
        exit_code(
            "int main() { int s = 0; int i = 1; while (i <= 10) { s += i; i++; } return s; }"
        ),
        55
    );
    assert_eq!(
        exit_code("int main() { int s = 0; for (int i = 0; i < 5; i++) { s += i; } return s; }"),
        10
    );
    assert_eq!(
        exit_code("int main() { int x = 1; { int x = 2; } return x; }"),
        1
    );
    assert_eq!(
        exit_code("int main() { int i = 0; while (1) { i++; if (i == 7) { break; } } return i; }"),
        7
    );
}

#[test]
fn functions_args_and_recursion() {
    assert_eq!(
        exit_code(
            "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
             int main() { return fib(10); }"
        ),
        55
    );
    assert_eq!(
        exit_code(
            "int mix(int a, int b, int c, int d, int e) { return a + b*2 + c*3 + d*4 + e*5; }
             int main() { return mix(1, 2, 3, 4, 5); }"
        ),
        1 + 4 + 9 + 16 + 25
    );
}

#[test]
fn arrays_pointers_and_strings() {
    assert_eq!(
        exit_code(
            "char buf[8];
             int main() {
                 buf[0] = 65; buf[1] = 66;
                 char *p = buf;
                 return p[0] + *(p + 1);
             }"
        ),
        65 + 66
    );
    assert_eq!(
        exit_code(
            "int arr[4];
             int main() {
                 for (int i = 0; i < 4; i++) { arr[i] = i * i; }
                 int *p = &arr[2];
                 return *p;
             }"
        ),
        4
    );
    assert_eq!(
        exit_code("int main() { char *s = \"AB\"; return s[0] + s[1] + s[2]; }"),
        65 + 66
    );
}

#[test]
fn function_pointers() {
    assert_eq!(
        exit_code(
            "int twice(int x) { return x * 2; }
             int thrice(int x) { return x * 3; }
             int main() {
                 fnptr f = &twice;
                 int a = f(10);
                 f = &thrice;
                 return a + f(10);
             }"
        ),
        50
    );
}

#[test]
fn globals_and_initializers() {
    assert_eq!(
        exit_code("int counter = 5; int main() { counter += 3; return counter; }"),
        8
    );
    assert_eq!(exit_code("char tag = 7; int main() { return tag; }"), 7);
}

#[test]
fn io_builtins() {
    let out = run_with(
        "char buf[32];
         int main() {
             int n = read_input(buf, 32);
             write(buf, n);
             return n;
         }",
        &Options::gcc_like(),
        b"teapot",
    );
    assert_eq!(out.status, ExitStatus::Exit(6));
    assert_eq!(out.output, b"teapot");
}

#[test]
fn heap_builtins() {
    assert_eq!(
        exit_code(
            "int main() {
                 char *p = malloc(16);
                 p[0] = 42; p[15] = 1;
                 int v = p[0] + p[15];
                 free(p);
                 return v;
             }"
        ),
        43
    );
}

fn both_lowerings(src: &str) -> (i64, i64) {
    let chain = match run_with(src, &Options::gcc_like(), &[]).status {
        ExitStatus::Exit(c) => c,
        other => panic!("branch-chain run failed: {other:?}"),
    };
    let table = match run_with(
        src,
        &Options {
            switch_lowering: SwitchLowering::JumpTable,
            ..Options::gcc_like()
        },
        &[],
    )
    .status
    {
        ExitStatus::Exit(c) => c,
        other => panic!("jump-table run failed: {other:?}"),
    };
    (chain, table)
}

#[test]
fn switch_lowering_semantics_agree() {
    let src = "int f(int v) {
                   switch (v) {
                       case 0: return 10;
                       case 1: return 11;
                       case 2: return 12;
                       case 3: return 13;
                       default: return 99;
                   }
               }
               int main() { return f(0) + f(2)*2 + f(3)*3 + f(77)*4; }";
    let (chain, table) = both_lowerings(src);
    assert_eq!(chain, 10 + 24 + 39 + 396);
    assert_eq!(chain, table);

    // Sparse and negative cases.
    let src2 = "int f(int v) {
                    switch (v) {
                        case 2: return 1;
                        case 5: return 2;
                        case 9: return 3;
                        default: return 0;
                    }
                }
                int main() { return f(2) + f(5)*10 + f(9)*100 + f(4)*1000; }";
    let (chain, table) = both_lowerings(src2);
    assert_eq!(chain, 1 + 20 + 300);
    assert_eq!(chain, table);
}

fn count_insts(bin: &Binary, pred: impl Fn(&Inst<u64>) -> bool) -> usize {
    let text = bin.section(".text").unwrap();
    let mut pc = text.vaddr;
    let mut n = 0;
    while pc < text.vaddr + text.bytes.len() as u64 {
        let off = (pc - text.vaddr) as usize;
        let (inst, len) = decode_at(&text.bytes[off..], pc).unwrap();
        if pred(&inst) {
            n += 1;
        }
        pc += len as u64;
    }
    n
}

#[test]
fn fig2_branch_chain_vs_jump_table_shape() {
    // The paper's Fig. 2 switch (4 dense cases, no default).
    let src = "int sink;
               void f(int v) {
                   switch (v) {
                       case 0: sink = 10; break;
                       case 1: sink = 11; break;
                       case 2: sink = 12; break;
                       case 3: sink = 13; break;
                   }
               }
               int main() { f(2); return sink; }";
    let chain_bin = compile_to_binary(src, &Options::gcc_like()).unwrap();
    let table_bin = compile_to_binary(
        src,
        &Options {
            switch_lowering: SwitchLowering::JumpTable,
            ..Options::gcc_like()
        },
    )
    .unwrap();
    let chain_jcc = count_insts(&chain_bin, |i| matches!(i, Inst::Jcc { .. }));
    let table_jcc = count_insts(&table_bin, |i| matches!(i, Inst::Jcc { .. }));
    let table_ind = count_insts(&table_bin, |i| matches!(i, Inst::JmpInd { .. }));
    // Branch chain: one conditional branch per case (the V1 victims).
    assert!(chain_jcc >= 4, "expected >=4 jcc, got {chain_jcc}");
    // Jump table with no default: NO conditional branch in f, one
    // indirect jump (paper Fig. 2 right: "Spectre-V1 Safe").
    assert_eq!(table_jcc, 0, "jump-table switch must have no jcc");
    assert_eq!(table_ind, 1);
    // Both compute the same result.
    let mut heur = SpecHeuristics::default();
    let c = Machine::new(&chain_bin, RunOptions::default()).run(&mut heur);
    let t = Machine::new(&table_bin, RunOptions::default()).run(&mut heur);
    assert_eq!(c.status, ExitStatus::Exit(12));
    assert_eq!(t.status, ExitStatus::Exit(12));
}

#[test]
fn cmov_if_conversion_changes_shape_not_semantics() {
    // Appendix A.1 pattern: if (x < y) x += dicBufSize;
    let src = "int main() {
                   int x = 3;
                   int limit = 10;
                   if (x < limit) { x = x + 100; }
                   if (x < limit) { x = x + 1000; }
                   return x;
               }";
    let plain = compile_to_binary(src, &Options::gcc_like()).unwrap();
    let cmov = compile_to_binary(
        src,
        &Options {
            cmov_if_conversion: true,
            ..Options::gcc_like()
        },
    )
    .unwrap();
    assert_eq!(count_insts(&plain, |i| matches!(i, Inst::Cmov { .. })), 0);
    assert_eq!(count_insts(&cmov, |i| matches!(i, Inst::Cmov { .. })), 2);
    assert!(
        count_insts(&cmov, |i| matches!(i, Inst::Jcc { .. }))
            < count_insts(&plain, |i| matches!(i, Inst::Jcc { .. }))
    );
    let mut heur = SpecHeuristics::default();
    let p = Machine::new(&plain, RunOptions::default()).run(&mut heur);
    let c = Machine::new(&cmov, RunOptions::default()).run(&mut heur);
    assert_eq!(p.status, ExitStatus::Exit(103));
    assert_eq!(c.status, ExitStatus::Exit(103));
}

#[test]
fn listing1_compiles_to_the_canonical_gadget_shape() {
    // The paper's Listing 1, verbatim modulo syntax.
    let src = "char foo[16];
               char bar[256];
               int baz;
               char inbuf[8];
               int main() {
                   read_input(inbuf, 8);
                   int index = inbuf[0];
                   if (index < 10) {
                       int secret = foo[index];
                       baz = bar[secret];
                   }
                   return 0;
               }";
    let bin = compile_to_binary(src, &Options::gcc_like()).unwrap();
    // It must contain a conditional branch guarding an indexed load chain.
    assert!(count_insts(&bin, |i| matches!(i, Inst::Jcc { .. })) >= 1);
    let mut heur = SpecHeuristics::default();
    let out = Machine::new(
        &bin,
        RunOptions {
            input: vec![3],
            ..RunOptions::default()
        },
    )
    .run(&mut heur);
    assert_eq!(out.status, ExitStatus::Exit(0));
}

#[test]
fn division_by_zero_crashes() {
    let out = run_with(
        "int main() { int z = 0; return 5 / z; }",
        &Options::gcc_like(),
        &[],
    );
    assert!(matches!(out.status, ExitStatus::Fault(_)));
}

#[test]
fn semantic_errors_are_reported() {
    use teapot_cc::CcError;
    let err = compile_to_binary("int main() { return nope; }", &Options::gcc_like()).unwrap_err();
    assert!(matches!(err, CcError::Sema { .. }), "{err}");
    let err = compile_to_binary(
        "int main() { unknown_fn(); return 0; }",
        &Options::gcc_like(),
    )
    .unwrap_err();
    assert!(matches!(err, CcError::Sema { .. }));
    let err = compile_to_binary(
        "int f(int a) { return a; } int main() { return f(1, 2); }",
        &Options::gcc_like(),
    )
    .unwrap_err();
    assert!(matches!(err, CcError::Sema { .. }));
}

#[test]
fn lfence_is_emitted() {
    let bin =
        compile_to_binary("int main() { lfence(); return 0; }", &Options::gcc_like()).unwrap();
    assert_eq!(count_insts(&bin, |i| matches!(i, Inst::Lfence)), 1);
}

#[test]
fn uint_sentinel_loop_shape() {
    // The Appendix A.2 building block: size_t n = -1 makes i < n always
    // true; verify the compiler emits an UNSIGNED comparison.
    let src = "int main() {
                   uint n = 0 - 1;
                   uint i = 0;
                   int c = 0;
                   while (i < n) {
                       c++;
                       if (c == 3) { return c; }
                       i++;
                   }
                   return 0;
               }";
    assert_eq!(exit_code(src), 3);
}
