//! MiniC lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // literals & identifiers
    Int(i64),
    Str(Vec<u8>),
    Ident(String),
    // keywords
    KwInt,
    KwUint,
    KwChar,
    KwVoid,
    KwFnPtr,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwContinue,
    KwReturn,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    // operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    PlusEq,
    MinusEq,
    PlusPlus,
    MinusMinus,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source line (1-based), for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source line number.
    pub line: u32,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub msg: String,
    /// Source line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes MiniC source.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals or stray characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    macro_rules! push {
        ($t:expr) => {
            out.push(Spanned { tok: $t, line })
        };
    }
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= b.len() {
                    return Err(LexError {
                        msg: "unterminated block comment".into(),
                        line,
                    });
                }
                i += 2;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut value: i64;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    i += 2;
                    let hs = i;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hs {
                        return Err(LexError {
                            msg: "empty hex literal".into(),
                            line,
                        });
                    }
                    value = i64::from_str_radix(std::str::from_utf8(&b[hs..i]).unwrap(), 16)
                        .map_err(|_| LexError {
                            msg: "hex literal overflow".into(),
                            line,
                        })?;
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    value = std::str::from_utf8(&b[start..i])
                        .unwrap()
                        .parse()
                        .map_err(|_| LexError {
                            msg: "integer literal overflow".into(),
                            line,
                        })?;
                }
                let _ = &mut value;
                push!(Tok::Int(value));
            }
            b'\'' => {
                // char literal
                i += 1;
                let v = if i < b.len() && b[i] == b'\\' {
                    i += 1;
                    let e = *b.get(i).ok_or(LexError {
                        msg: "unterminated char literal".into(),
                        line,
                    })?;
                    i += 1;
                    escape(e).ok_or(LexError {
                        msg: format!("bad escape '\\{}'", e as char),
                        line,
                    })?
                } else {
                    let v = *b.get(i).ok_or(LexError {
                        msg: "unterminated char literal".into(),
                        line,
                    })?;
                    i += 1;
                    v
                };
                if b.get(i) != Some(&b'\'') {
                    return Err(LexError {
                        msg: "unterminated char literal".into(),
                        line,
                    });
                }
                i += 1;
                push!(Tok::Int(v as i64));
            }
            b'"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    match b.get(i) {
                        None | Some(b'\n') => {
                            return Err(LexError {
                                msg: "unterminated string literal".into(),
                                line,
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            let e = *b.get(i).ok_or(LexError {
                                msg: "unterminated string literal".into(),
                                line,
                            })?;
                            s.push(escape(e).ok_or(LexError {
                                msg: format!("bad escape '\\{}'", e as char),
                                line,
                            })?);
                            i += 1;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                push!(Tok::Str(s));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&b[start..i]).unwrap();
                push!(match word {
                    "int" => Tok::KwInt,
                    "uint" => Tok::KwUint,
                    "char" => Tok::KwChar,
                    "void" => Tok::KwVoid,
                    "fnptr" => Tok::KwFnPtr,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "switch" => Tok::KwSwitch,
                    "case" => Tok::KwCase,
                    "default" => Tok::KwDefault,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "return" => Tok::KwReturn,
                    _ => Tok::Ident(word.to_string()),
                });
            }
            _ => {
                let two = |a: u8, b2: u8| i + 1 < b.len() && c == a && b[i + 1] == b2;
                let (tok, n) = if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else if two(b'=', b'=') {
                    (Tok::Eq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'+', b'=') {
                    (Tok::PlusEq, 2)
                } else if two(b'-', b'=') {
                    (Tok::MinusEq, 2)
                } else if two(b'+', b'+') {
                    (Tok::PlusPlus, 2)
                } else if two(b'-', b'-') {
                    (Tok::MinusMinus, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b',' => Tok::Comma,
                        b';' => Tok::Semi,
                        b':' => Tok::Colon,
                        b'=' => Tok::Assign,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'~' => Tok::Tilde,
                        b'!' => Tok::Bang,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        other => {
                            return Err(LexError {
                                msg: format!("unexpected character '{}'", other as char),
                                line,
                            })
                        }
                    };
                    (t, 1)
                };
                push!(tok);
                i += n;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

fn escape(e: u8) -> Option<u8> {
    Some(match e {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int foo uint"),
            vec![Tok::KwInt, Tok::Ident("foo".into()), Tok::KwUint, Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42 0x2a"), vec![Tok::Int(42), Tok::Int(42), Tok::Eof]);
        assert_eq!(
            toks("'a' '\\n' '\\0'")[..3],
            [Tok::Int(97), Tok::Int(10), Tok::Int(0)]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("<< <= < == = && & ++ +="),
            vec![
                Tok::Shl,
                Tok::Le,
                Tok::Lt,
                Tok::Eq,
                Tok::Assign,
                Tok::AndAnd,
                Tok::Amp,
                Tok::PlusPlus,
                Tok::PlusEq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("\"hi\\n\""),
            vec![Tok::Str(b"hi\n".to_vec()), Tok::Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("@").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("0x").is_err());
    }
}
