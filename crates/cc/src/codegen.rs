//! MiniC code generation to TEA-64.
//!
//! The generator is a classic one-pass stack-machine compiler:
//! expressions evaluate into `r0` using real `push`/`pop` for temporaries,
//! locals live at negative frame-pointer offsets, and arguments arrive in
//! `r1`–`r5`. The output is intentionally branchy, bounds-check-heavy
//! parser-style code — the instruction mix the paper's workloads exhibit.
//!
//! Two code-shape options reproduce the paper's §3.2 observations:
//!
//! * [`SwitchLowering`] — `switch` compiles to a GCC-style compare/branch
//!   chain (each compare is a speculatable conditional branch: potential
//!   Spectre-V1 victims) or to a Clang-style jump table (no conditional
//!   branch when the `switch` has no `default`, exactly like Figure 2).
//! * [`Options::cmov_if_conversion`] — `if (cond) x = e;` compiles to a
//!   conditional move, which is *not* speculated, making the Appendix A.1
//!   gadget disappear.

use crate::ast::*;
use crate::parser::{parse, ParseError};
use std::collections::HashMap;
use std::fmt;
use teapot_asm::{AsmError, Assembler, FuncAsm, Label};
use teapot_isa::{sys, AccessSize, AluOp, Cc, Inst, MemRef, Operand, Reg};
use teapot_obj::{Binary, LinkError, Linker, Object};

/// How `switch` statements are lowered (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchLowering {
    /// GCC-style chain of compares and conditional branches
    /// ("Spectre-V1 Vulnerable" in Fig. 2).
    #[default]
    BranchChain,
    /// Clang-style jump table; with no `default` case there is no bounds
    /// check at all ("Spectre-V1 Safe" in Fig. 2).
    JumpTable,
}

/// Compiler options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Switch lowering strategy.
    pub switch_lowering: SwitchLowering,
    /// If-convert `if (cmp) x = simple;` to `cmov` (Appendix A.1).
    pub cmov_if_conversion: bool,
    /// Translation-unit name for diagnostics and local-symbol scoping.
    pub unit_name: String,
}

impl Options {
    /// GCC-flavoured lowering (branch chains, no if-conversion).
    pub fn gcc_like() -> Options {
        Options {
            switch_lowering: SwitchLowering::BranchChain,
            cmov_if_conversion: false,
            unit_name: "unit".into(),
        }
    }

    /// Clang-flavoured lowering (jump tables, cmov if-conversion).
    pub fn clang_like() -> Options {
        Options {
            switch_lowering: SwitchLowering::JumpTable,
            cmov_if_conversion: true,
            unit_name: "unit".into(),
        }
    }
}

/// Compiler errors.
#[derive(Debug)]
pub enum CcError {
    /// Lexical or syntactic error.
    Parse(ParseError),
    /// Semantic error (unknown names, type misuse, arity).
    Sema { msg: String, line: u32 },
    /// Assembly error (internal).
    Asm(AsmError),
    /// Link error.
    Link(LinkError),
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Parse(e) => write!(f, "parse error: {e}"),
            CcError::Sema { msg, line } => {
                write!(f, "line {line}: {msg}")
            }
            CcError::Asm(e) => write!(f, "assembly error: {e}"),
            CcError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl std::error::Error for CcError {}

impl From<ParseError> for CcError {
    fn from(e: ParseError) -> CcError {
        CcError::Parse(e)
    }
}

impl From<AsmError> for CcError {
    fn from(e: AsmError) -> CcError {
        CcError::Asm(e)
    }
}

impl From<LinkError> for CcError {
    fn from(e: LinkError) -> CcError {
        CcError::Link(e)
    }
}

/// Builtin functions mapped to syscalls/intrinsics.
fn builtin(name: &str) -> Option<(Option<u16>, usize, Type)> {
    Some(match name {
        "read_input" => (Some(sys::READ_INPUT), 2, Type::Int),
        "input_size" => (Some(sys::INPUT_SIZE), 0, Type::Int),
        "write" => (Some(sys::WRITE), 2, Type::Int),
        "malloc" => (Some(sys::MALLOC), 1, Type::Ptr(Box::new(Type::Char))),
        "free" => (Some(sys::FREE), 1, Type::Void),
        "print_int" => (Some(sys::PRINT_INT), 1, Type::Void),
        "abort" => (Some(sys::ABORT), 0, Type::Void),
        "mark_user" => (Some(sys::MARK_USER), 2, Type::Void),
        "lfence" => (None, 0, Type::Void),
        _ => return None,
    })
}

#[derive(Debug, Clone)]
struct LocalSlot {
    offset: i32,
    ty: Type,
    /// Arrays decay to pointers; the slot is the array storage itself.
    array: bool,
}

#[derive(Debug, Clone)]
enum Place {
    Local(LocalSlot),
    GlobalScalar(String, Type),
    GlobalArray(String, Type),
    Func(String),
}

struct FnCtx<'a> {
    f: FuncAsm,
    scopes: Vec<HashMap<String, LocalSlot>>,
    next_offset: i32,
    breaks: Vec<Label>,
    continues: Vec<Label>,
    epilogue: Label,
    ret: Type,
    opts: &'a Options,
    sigs: &'a HashMap<String, (Type, usize)>,
    globals: &'a HashMap<String, (Type, bool)>,
    strings: Vec<Vec<u8>>,
    string_base: usize,
}

impl<'a> FnCtx<'a> {
    fn err<T>(&self, msg: impl Into<String>, line: u32) -> Result<T, CcError> {
        Err(CcError::Sema {
            msg: msg.into(),
            line,
        })
    }

    fn lookup(&self, name: &str) -> Option<Place> {
        for scope in self.scopes.iter().rev() {
            if let Some(slot) = scope.get(name) {
                return Some(Place::Local(slot.clone()));
            }
        }
        if let Some((ty, array)) = self.globals.get(name) {
            return Some(if *array {
                Place::GlobalArray(name.to_string(), ty.clone())
            } else {
                Place::GlobalScalar(name.to_string(), ty.clone())
            });
        }
        if self.sigs.contains_key(name) {
            return Some(Place::Func(name.to_string()));
        }
        None
    }

    fn alloc_slot(&mut self, name: &str, ty: Type, array_len: Option<u64>) -> LocalSlot {
        let bytes = match array_len {
            Some(n) => (n * ty.size() + 7) & !7,
            None => 8,
        };
        self.next_offset += bytes as i32;
        let slot = LocalSlot {
            offset: -self.next_offset,
            ty,
            array: array_len.is_some(),
        };
        self.scopes
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), slot.clone());
        slot
    }

    fn access(ty: &Type) -> AccessSize {
        if ty.size() == 1 {
            AccessSize::B1
        } else {
            AccessSize::B8
        }
    }

    fn intern_string(&mut self, s: &[u8]) -> String {
        let mut bytes = s.to_vec();
        bytes.push(0);
        self.strings.push(bytes);
        format!(
            "{}$str{}",
            self.f_name(),
            self.string_base + self.strings.len() - 1
        )
    }

    fn f_name(&self) -> String {
        // FuncAsm has no public name accessor; keep unit-level uniqueness
        // via the string_base counter instead.
        "str".to_string()
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Evaluates `e` into `r0`; returns its type.
    fn expr(&mut self, e: &Expr) -> Result<Type, CcError> {
        match &e.kind {
            ExprKind::Num(v) => {
                self.f.ins(Inst::MovRI {
                    dst: Reg::R0,
                    imm: *v,
                });
                Ok(Type::Int)
            }
            ExprKind::Str(s) => {
                let sym = self.intern_string(s);
                self.f.lea_global(Reg::R0, sym, 0);
                Ok(Type::Ptr(Box::new(Type::Char)))
            }
            ExprKind::Var(name) => match self.lookup(name) {
                Some(Place::Local(slot)) => {
                    if slot.array {
                        self.f.ins(Inst::Lea {
                            dst: Reg::R0,
                            mem: MemRef::base_disp(Reg::FP, slot.offset),
                        });
                        Ok(Type::Ptr(Box::new(slot.ty)))
                    } else {
                        self.f.ins(Inst::Load {
                            dst: Reg::R0,
                            mem: MemRef::base_disp(Reg::FP, slot.offset),
                            size: Self::access(&slot.ty),
                            sext: false,
                        });
                        Ok(slot.ty)
                    }
                }
                Some(Place::GlobalScalar(sym, ty)) => {
                    self.f
                        .load_global(Reg::R0, sym, 0, Self::access(&ty), false);
                    Ok(ty)
                }
                Some(Place::GlobalArray(sym, ty)) => {
                    self.f.lea_global(Reg::R0, sym, 0);
                    Ok(Type::Ptr(Box::new(ty)))
                }
                Some(Place::Func(_)) => self.err(
                    format!("function `{name}` used as value; take &{name}"),
                    e.line,
                ),
                None => self.err(format!("unknown identifier `{name}`"), e.line),
            },
            ExprKind::Index(base, idx) => {
                let bt = self.expr(base)?;
                let elem = match &bt {
                    Type::Ptr(inner) => (**inner).clone(),
                    _ => return self.err("indexing a non-pointer value", e.line),
                };
                self.f.raw(Inst::Push { src: Reg::R0 });
                self.expr(idx)?;
                self.f.raw(Inst::Pop { dst: Reg::R6 });
                let scale = elem.size() as u8;
                self.f.ins(Inst::Load {
                    dst: Reg::R0,
                    mem: MemRef::base_index(Reg::R6, Reg::R0, scale),
                    size: Self::access(&elem),
                    sext: false,
                });
                Ok(elem)
            }
            ExprKind::Deref(p) => {
                let pt = self.expr(p)?;
                let inner = match &pt {
                    Type::Ptr(inner) => (**inner).clone(),
                    _ => return self.err("dereferencing a non-pointer value", e.line),
                };
                self.f.ins(Inst::Load {
                    dst: Reg::R0,
                    mem: MemRef::base(Reg::R0),
                    size: Self::access(&inner),
                    sext: false,
                });
                Ok(inner)
            }
            ExprKind::AddrOf(lv) => self.addr(lv),
            ExprKind::Un(op, inner) => {
                let t = self.expr(inner)?;
                match op {
                    UnOp::Neg => self.f.raw(Inst::Neg { dst: Reg::R0 }),
                    UnOp::BitNot => self.f.raw(Inst::Not { dst: Reg::R0 }),
                    UnOp::Not => {
                        self.f.ins(Inst::Cmp {
                            lhs: Reg::R0,
                            rhs: Operand::Imm(0),
                        });
                        self.f.ins(Inst::Set {
                            cc: Cc::E,
                            dst: Reg::R0,
                        });
                        return Ok(Type::Int);
                    }
                }
                Ok(t)
            }
            ExprKind::Bin(op, lhs, rhs) => self.bin(*op, lhs, rhs, e.line),
            ExprKind::Call(name, args) => self.call(name, args, e.line),
            ExprKind::CallPtr(target, args) => {
                // Evaluate args, then the target, then dispatch.
                for a in args {
                    self.expr(a)?;
                    self.f.raw(Inst::Push { src: Reg::R0 });
                }
                let t = self.expr(target)?;
                if t != Type::FnPtr && !matches!(t, Type::Ptr(_)) {
                    return self.err("calling a non-function-pointer value", e.line);
                }
                self.f.ins(Inst::MovRR {
                    dst: Reg::R9,
                    src: Reg::R0,
                });
                for i in (0..args.len()).rev() {
                    self.f.raw(Inst::Pop { dst: Reg::ARGS[i] });
                }
                self.f.ins(Inst::CallInd { target: Reg::R9 });
                Ok(Type::Int)
            }
        }
    }

    /// Evaluates the address of an lvalue into `r0`.
    fn addr(&mut self, e: &Expr) -> Result<Type, CcError> {
        match &e.kind {
            ExprKind::Var(name) => match self.lookup(name) {
                Some(Place::Local(slot)) => {
                    self.f.ins(Inst::Lea {
                        dst: Reg::R0,
                        mem: MemRef::base_disp(Reg::FP, slot.offset),
                    });
                    Ok(Type::Ptr(Box::new(slot.ty)))
                }
                Some(Place::GlobalScalar(sym, ty)) | Some(Place::GlobalArray(sym, ty)) => {
                    self.f.lea_global(Reg::R0, sym, 0);
                    Ok(Type::Ptr(Box::new(ty)))
                }
                Some(Place::Func(name)) => {
                    self.f.mov_sym_addr(Reg::R0, name);
                    Ok(Type::FnPtr)
                }
                None => self.err(format!("unknown identifier `{name}`"), e.line),
            },
            ExprKind::Index(base, idx) => {
                let bt = self.expr(base)?;
                let elem = match &bt {
                    Type::Ptr(inner) => (**inner).clone(),
                    _ => return self.err("indexing a non-pointer value", e.line),
                };
                self.f.raw(Inst::Push { src: Reg::R0 });
                self.expr(idx)?;
                self.f.raw(Inst::Pop { dst: Reg::R6 });
                self.f.ins(Inst::Lea {
                    dst: Reg::R0,
                    mem: MemRef::base_index(Reg::R6, Reg::R0, elem.size() as u8),
                });
                Ok(Type::Ptr(Box::new(elem)))
            }
            ExprKind::Deref(p) => {
                let t = self.expr(p)?;
                match t {
                    Type::Ptr(_) => Ok(t),
                    _ => self.err("dereferencing a non-pointer value", e.line),
                }
            }
            _ => self.err("expression is not an lvalue", e.line),
        }
    }

    fn bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: u32) -> Result<Type, CcError> {
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            // Short-circuit evaluation producing 0/1.
            let out = self.f.fresh_label();
            let rhs_l = self.f.fresh_label();
            self.expr(lhs)?;
            self.f.ins(Inst::Cmp {
                lhs: Reg::R0,
                rhs: Operand::Imm(0),
            });
            match op {
                BinOp::LogAnd => {
                    self.f.ins(Inst::Set {
                        cc: Cc::Ne,
                        dst: Reg::R0,
                    });
                    self.f.jcc(Cc::Ne, rhs_l);
                    self.f.jmp(out);
                }
                _ => {
                    self.f.ins(Inst::Set {
                        cc: Cc::Ne,
                        dst: Reg::R0,
                    });
                    self.f.jcc(Cc::E, rhs_l);
                    self.f.jmp(out);
                }
            }
            self.f.bind(rhs_l);
            self.expr(rhs)?;
            self.f.ins(Inst::Cmp {
                lhs: Reg::R0,
                rhs: Operand::Imm(0),
            });
            self.f.ins(Inst::Set {
                cc: Cc::Ne,
                dst: Reg::R0,
            });
            self.f.bind(out);
            return Ok(Type::Int);
        }

        let lt = self.expr(lhs)?;
        self.f.raw(Inst::Push { src: Reg::R0 });
        let rt = self.expr(rhs)?;
        self.f.raw(Inst::Pop { dst: Reg::R6 });
        // r6 = lhs, r0 = rhs
        if op.is_comparison() {
            let unsigned = lt.is_unsigned() || rt.is_unsigned();
            let cc = cc_for(op, unsigned);
            self.f.ins(Inst::Cmp {
                lhs: Reg::R6,
                rhs: Operand::Reg(Reg::R0),
            });
            self.f.ins(Inst::Set { cc, dst: Reg::R0 });
            return Ok(Type::Int);
        }
        // Pointer arithmetic scales by element size.
        let (result_ty, scale_rhs) = match (&lt, op) {
            (Type::Ptr(_), BinOp::Add | BinOp::Sub) => (lt.clone(), lt.elem_size()),
            _ => (promote(&lt, &rt), 1),
        };
        if scale_rhs > 1 {
            self.f.ins(Inst::Alu {
                op: AluOp::Mul,
                dst: Reg::R0,
                src: Operand::Imm(scale_rhs as i32),
            });
        }
        let alu_op = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Rem => AluOp::Rem,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => {
                if lt.is_unsigned() {
                    AluOp::Shr
                } else {
                    AluOp::Sar
                }
            }
            _ => return self.err("unsupported operator", line),
        };
        self.f.ins(Inst::Alu {
            op: alu_op,
            dst: Reg::R6,
            src: Operand::Reg(Reg::R0),
        });
        self.f.ins(Inst::MovRR {
            dst: Reg::R0,
            src: Reg::R6,
        });
        Ok(result_ty)
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<Type, CcError> {
        // A call through a fnptr *variable* parses as a named call;
        // resolve it to an indirect call here.
        let is_var = self.scopes.iter().rev().any(|s| s.contains_key(name))
            || self.globals.contains_key(name);
        if is_var {
            for a in args {
                self.expr(a)?;
                self.f.raw(Inst::Push { src: Reg::R0 });
            }
            let line2 = line;
            let t = self.expr(&Expr {
                kind: ExprKind::Var(name.to_string()),
                line: line2,
            })?;
            if t != Type::FnPtr {
                return self.err(format!("`{name}` is not callable (type {t:?})"), line);
            }
            self.f.ins(Inst::MovRR {
                dst: Reg::R9,
                src: Reg::R0,
            });
            for i in (0..args.len()).rev() {
                self.f.raw(Inst::Pop { dst: Reg::ARGS[i] });
            }
            self.f.ins(Inst::CallInd { target: Reg::R9 });
            return Ok(Type::Int);
        }
        if let Some((syscall, arity, ret)) = builtin(name) {
            if args.len() != arity {
                return self.err(format!("`{name}` takes {arity} argument(s)"), line);
            }
            for a in args {
                self.expr(a)?;
                self.f.raw(Inst::Push { src: Reg::R0 });
            }
            for i in (0..args.len()).rev() {
                self.f.raw(Inst::Pop { dst: Reg::ARGS[i] });
            }
            match syscall {
                Some(num) => self.f.ins(Inst::Syscall { num }),
                None => self.f.raw(Inst::Lfence),
            }
            return Ok(ret);
        }
        let Some((ret, arity)) = self.sigs.get(name).cloned() else {
            return self.err(format!("unknown function `{name}`"), line);
        };
        if args.len() != arity {
            return self.err(format!("`{name}` takes {arity} argument(s)"), line);
        }
        for a in args {
            self.expr(a)?;
            self.f.raw(Inst::Push { src: Reg::R0 });
        }
        for i in (0..args.len()).rev() {
            self.f.raw(Inst::Pop { dst: Reg::ARGS[i] });
        }
        self.f.call_sym(name);
        Ok(ret)
    }

    // ------------------------------------------------------------------
    // Conditions as branches
    // ------------------------------------------------------------------

    /// Emits a branch to `target` when `cond` is FALSE; falls through
    /// when true. Comparisons compile to a bare `cmp` + `jcc` — the
    /// natural Spectre-V1 victim shape.
    fn branch_false(&mut self, cond: &Expr, target: Label) -> Result<(), CcError> {
        match &cond.kind {
            ExprKind::Bin(op, lhs, rhs) if op.is_comparison() => {
                let lt = self.expr(lhs)?;
                self.f.raw(Inst::Push { src: Reg::R0 });
                let rt = self.expr(rhs)?;
                self.f.raw(Inst::Pop { dst: Reg::R6 });
                let unsigned = lt.is_unsigned() || rt.is_unsigned();
                let cc = cc_for(*op, unsigned).negate();
                self.f.ins(Inst::Cmp {
                    lhs: Reg::R6,
                    rhs: Operand::Reg(Reg::R0),
                });
                self.f.jcc(cc, target);
                Ok(())
            }
            ExprKind::Bin(BinOp::LogAnd, lhs, rhs) => {
                self.branch_false(lhs, target)?;
                self.branch_false(rhs, target)
            }
            ExprKind::Bin(BinOp::LogOr, lhs, rhs) => {
                let yes = self.f.fresh_label();
                self.branch_true(lhs, yes)?;
                self.branch_false(rhs, target)?;
                self.f.bind(yes);
                Ok(())
            }
            ExprKind::Un(UnOp::Not, inner) => self.branch_true(inner, target),
            _ => {
                self.expr(cond)?;
                self.f.ins(Inst::Cmp {
                    lhs: Reg::R0,
                    rhs: Operand::Imm(0),
                });
                self.f.jcc(Cc::E, target);
                Ok(())
            }
        }
    }

    /// Emits a branch to `target` when `cond` is TRUE.
    fn branch_true(&mut self, cond: &Expr, target: Label) -> Result<(), CcError> {
        match &cond.kind {
            ExprKind::Bin(op, lhs, rhs) if op.is_comparison() => {
                let lt = self.expr(lhs)?;
                self.f.raw(Inst::Push { src: Reg::R0 });
                let rt = self.expr(rhs)?;
                self.f.raw(Inst::Pop { dst: Reg::R6 });
                let unsigned = lt.is_unsigned() || rt.is_unsigned();
                let cc = cc_for(*op, unsigned);
                self.f.ins(Inst::Cmp {
                    lhs: Reg::R6,
                    rhs: Operand::Reg(Reg::R0),
                });
                self.f.jcc(cc, target);
                Ok(())
            }
            ExprKind::Bin(BinOp::LogOr, lhs, rhs) => {
                self.branch_true(lhs, target)?;
                self.branch_true(rhs, target)
            }
            ExprKind::Bin(BinOp::LogAnd, lhs, rhs) => {
                let no = self.f.fresh_label();
                self.branch_false(lhs, no)?;
                self.branch_true(rhs, target)?;
                self.f.bind(no);
                Ok(())
            }
            ExprKind::Un(UnOp::Not, inner) => self.branch_false(inner, target),
            _ => {
                self.expr(cond)?;
                self.f.ins(Inst::Cmp {
                    lhs: Reg::R0,
                    rhs: Operand::Imm(0),
                });
                self.f.jcc(Cc::Ne, target);
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), CcError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CcError> {
        match s {
            Stmt::Decl {
                name,
                ty,
                array_len,
                init,
            } => {
                let slot = self.alloc_slot(name, ty.clone(), *array_len);
                if let Some(e) = init {
                    self.expr(e)?;
                    self.f.ins(Inst::Store {
                        src: Reg::R0,
                        mem: MemRef::base_disp(Reg::FP, slot.offset),
                        size: Self::access(ty),
                    });
                }
                Ok(())
            }
            Stmt::Assign { target, value } => self.assign(target, value),
            Stmt::OpAssign { target, op, value } => {
                // target = target op value, via the address once.
                let ty = self.addr(target)?;
                let elem = match &ty {
                    Type::Ptr(inner) => (**inner).clone(),
                    _ => Type::Int,
                };
                self.f.raw(Inst::Push { src: Reg::R0 });
                self.expr(value)?;
                self.f.raw(Inst::Pop { dst: Reg::R6 });
                self.f.ins(Inst::Load {
                    dst: Reg::R8,
                    mem: MemRef::base(Reg::R6),
                    size: Self::access(&elem),
                    sext: false,
                });
                let alu_op = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    _ => return self.err("only += and -= are supported", 0),
                };
                self.f.ins(Inst::Alu {
                    op: alu_op,
                    dst: Reg::R8,
                    src: Operand::Reg(Reg::R0),
                });
                self.f.ins(Inst::Store {
                    src: Reg::R8,
                    mem: MemRef::base(Reg::R6),
                    size: Self::access(&elem),
                });
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                if self.opts.cmov_if_conversion && els.is_empty() {
                    if let Some(()) = self.try_cmov(cond, then)? {
                        return Ok(());
                    }
                }
                let l_else = self.f.fresh_label();
                self.branch_false(cond, l_else)?;
                self.scoped(then)?;
                if els.is_empty() {
                    self.f.bind(l_else);
                } else {
                    let l_end = self.f.fresh_label();
                    self.f.jmp(l_end);
                    self.f.bind(l_else);
                    self.scoped(els)?;
                    self.f.bind(l_end);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let l_top = self.f.fresh_label();
                let l_end = self.f.fresh_label();
                self.f.bind(l_top);
                self.branch_false(cond, l_end)?;
                self.breaks.push(l_end);
                self.continues.push(l_top);
                self.scoped(body)?;
                self.breaks.pop();
                self.continues.pop();
                self.f.jmp(l_top);
                self.f.bind(l_end);
                Ok(())
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => self.switch(scrutinee, cases, default.as_deref()),
            Stmt::Break => match self.breaks.last() {
                Some(l) => {
                    let l = *l;
                    self.f.jmp(l);
                    Ok(())
                }
                None => self.err("`break` outside loop/switch", 0),
            },
            Stmt::Continue => match self.continues.last() {
                Some(l) => {
                    let l = *l;
                    self.f.jmp(l);
                    Ok(())
                }
                None => self.err("`continue` outside loop", 0),
            },
            Stmt::Return(v) => {
                if let Some(e) = v {
                    self.expr(e)?;
                } else if self.ret != Type::Void {
                    self.f.ins(Inst::MovRI {
                        dst: Reg::R0,
                        imm: 0,
                    });
                }
                let ep = self.epilogue;
                self.f.jmp(ep);
                Ok(())
            }
            Stmt::Block(inner) => self.scoped(inner),
        }
    }

    fn scoped(&mut self, stmts: &[Stmt]) -> Result<(), CcError> {
        self.scopes.push(HashMap::new());
        let r = self.stmts(stmts);
        self.scopes.pop();
        r
    }

    fn assign(&mut self, target: &Expr, value: &Expr) -> Result<(), CcError> {
        // Fast path: scalar variable targets use direct addressing.
        if let ExprKind::Var(name) = &target.kind {
            match self.lookup(name) {
                Some(Place::Local(slot)) if !slot.array => {
                    self.expr(value)?;
                    self.f.ins(Inst::Store {
                        src: Reg::R0,
                        mem: MemRef::base_disp(Reg::FP, slot.offset),
                        size: Self::access(&slot.ty),
                    });
                    return Ok(());
                }
                Some(Place::GlobalScalar(sym, ty)) => {
                    self.expr(value)?;
                    self.f.store_global(Reg::R0, sym, 0, Self::access(&ty));
                    return Ok(());
                }
                _ => {}
            }
        }
        let t = self.addr(target)?;
        let elem = match &t {
            Type::Ptr(inner) => (**inner).clone(),
            _ => Type::Int,
        };
        self.f.raw(Inst::Push { src: Reg::R0 });
        self.expr(value)?;
        self.f.raw(Inst::Pop { dst: Reg::R6 });
        self.f.ins(Inst::Store {
            src: Reg::R0,
            mem: MemRef::base(Reg::R6),
            size: Self::access(&elem),
        });
        Ok(())
    }

    /// If-conversion to `cmov` (Appendix A.1): `if (a CMP b) x = simple;`
    /// where `x` is a scalar variable and `simple` has no side effects.
    fn try_cmov(&mut self, cond: &Expr, then: &[Stmt]) -> Result<Option<()>, CcError> {
        let ExprKind::Bin(op, cl, cr) = &cond.kind else {
            return Ok(None);
        };
        if !op.is_comparison() {
            return Ok(None);
        }
        let [Stmt::Assign { target, value }] = then else {
            return Ok(None);
        };
        let ExprKind::Var(name) = &target.kind else {
            return Ok(None);
        };
        if !is_simple(value) || !is_simple(cl) || !is_simple(cr) {
            return Ok(None);
        }
        let place = match self.lookup(name) {
            Some(Place::Local(slot)) if !slot.array => Place::Local(slot),
            Some(Place::GlobalScalar(s, t)) => Place::GlobalScalar(s, t),
            _ => return Ok(None),
        };
        // value → r7
        self.expr(value)?;
        self.f.ins(Inst::MovRR {
            dst: Reg::R7,
            src: Reg::R0,
        });
        // condition → FLAGS
        let lt = self.expr(cl)?;
        self.f.raw(Inst::Push { src: Reg::R0 });
        let rt = self.expr(cr)?;
        self.f.raw(Inst::Pop { dst: Reg::R6 });
        let unsigned = lt.is_unsigned() || rt.is_unsigned();
        let cc = cc_for(*op, unsigned);
        self.f.ins(Inst::Cmp {
            lhs: Reg::R6,
            rhs: Operand::Reg(Reg::R0),
        });
        // load target, cmov, store back
        match place {
            Place::Local(slot) => {
                self.f.ins(Inst::Load {
                    dst: Reg::R8,
                    mem: MemRef::base_disp(Reg::FP, slot.offset),
                    size: Self::access(&slot.ty),
                    sext: false,
                });
                self.f.ins(Inst::Cmov {
                    cc,
                    dst: Reg::R8,
                    src: Reg::R7,
                });
                self.f.ins(Inst::Store {
                    src: Reg::R8,
                    mem: MemRef::base_disp(Reg::FP, slot.offset),
                    size: Self::access(&slot.ty),
                });
            }
            Place::GlobalScalar(sym, ty) => {
                self.f
                    .load_global(Reg::R8, sym.clone(), 0, Self::access(&ty), false);
                self.f.ins(Inst::Cmov {
                    cc,
                    dst: Reg::R8,
                    src: Reg::R7,
                });
                self.f.store_global(Reg::R8, sym, 0, Self::access(&ty));
            }
            _ => unreachable!(),
        }
        Ok(Some(()))
    }

    fn switch(
        &mut self,
        scrutinee: &Expr,
        cases: &[(i64, Vec<Stmt>)],
        default: Option<&[Stmt]>,
    ) -> Result<(), CcError> {
        let l_end = self.f.fresh_label();
        self.expr(scrutinee)?;
        let case_labels: Vec<Label> = cases.iter().map(|_| self.f.fresh_label()).collect();
        let l_default = self.f.fresh_label();

        match self.opts.switch_lowering {
            SwitchLowering::BranchChain => {
                // GCC-style: cmp/je chain (paper Fig. 2 left).
                for ((v, _), l) in cases.iter().zip(&case_labels) {
                    self.f.ins(Inst::Cmp {
                        lhs: Reg::R0,
                        rhs: Operand::Imm(*v as i32),
                    });
                    self.f.jcc(Cc::E, *l);
                }
                self.f.jmp(l_default);
            }
            SwitchLowering::JumpTable => {
                // Clang-style (paper Fig. 2 right). Dense table over
                // [min, max]; slots without a case go to default (or past
                // the switch). Without a `default`, out-of-range values
                // are UB and get NO bounds check, exactly like Fig. 2.
                let min = cases.iter().map(|(v, _)| *v).min().unwrap_or(0);
                let max = cases.iter().map(|(v, _)| *v).max().unwrap_or(0);
                let span = (max - min + 1) as usize;
                if span > 1024 {
                    return self.err("switch jump table too large", 0);
                }
                if min != 0 {
                    self.f.ins(Inst::Alu {
                        op: AluOp::Sub,
                        dst: Reg::R0,
                        src: Operand::Imm(min as i32),
                    });
                }
                if default.is_some() {
                    self.f.ins(Inst::Cmp {
                        lhs: Reg::R0,
                        rhs: Operand::Imm(span as i32),
                    });
                    self.f.jcc(Cc::Ae, l_default);
                }
                let mut table = vec![l_default; span];
                for ((v, _), l) in cases.iter().zip(&case_labels) {
                    table[(*v - min) as usize] = *l;
                }
                let table_sym = self.f.jump_table(table);
                self.f
                    .load_global_indexed(Reg::R6, table_sym, Reg::R0, 8, AccessSize::B8, false);
                self.f.ins(Inst::JmpInd { target: Reg::R6 });
            }
        }

        self.breaks.push(l_end);
        for ((_, body), l) in cases.iter().zip(&case_labels) {
            self.f.bind(*l);
            self.scoped(body)?;
            self.f.jmp(l_end);
        }
        self.f.bind(l_default);
        if let Some(d) = default {
            self.scoped(d)?;
        }
        self.breaks.pop();
        self.f.bind(l_end);
        Ok(())
    }
}

fn cc_for(op: BinOp, unsigned: bool) -> Cc {
    match (op, unsigned) {
        (BinOp::Eq, _) => Cc::E,
        (BinOp::Ne, _) => Cc::Ne,
        (BinOp::Lt, false) => Cc::L,
        (BinOp::Le, false) => Cc::Le,
        (BinOp::Gt, false) => Cc::G,
        (BinOp::Ge, false) => Cc::Ge,
        (BinOp::Lt, true) => Cc::B,
        (BinOp::Le, true) => Cc::Be,
        (BinOp::Gt, true) => Cc::A,
        (BinOp::Ge, true) => Cc::Ae,
        _ => unreachable!("not a comparison"),
    }
}

fn promote(a: &Type, b: &Type) -> Type {
    match (a, b) {
        (Type::Ptr(_), _) => a.clone(),
        (_, Type::Ptr(_)) => b.clone(),
        (Type::Uint, _) | (_, Type::Uint) => Type::Uint,
        _ => Type::Int,
    }
}

fn is_simple(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Num(_) | ExprKind::Var(_) => true,
        ExprKind::Bin(op, l, r) => {
            !matches!(op, BinOp::Div | BinOp::Rem) && is_simple(l) && is_simple(r)
        }
        ExprKind::Un(_, i) => is_simple(i),
        _ => false,
    }
}

/// Counts the frame bytes a body needs (conservative: no slot reuse).
fn frame_bytes(stmts: &[Stmt]) -> u64 {
    let mut total = 0;
    for s in stmts {
        total += match s {
            Stmt::Decl { ty, array_len, .. } => match array_len {
                Some(n) => (n * ty.size() + 7) & !7,
                None => 8,
            },
            Stmt::If { then, els, .. } => frame_bytes(then) + frame_bytes(els),
            Stmt::While { body, .. } => frame_bytes(body),
            Stmt::Switch { cases, default, .. } => {
                cases.iter().map(|(_, b)| frame_bytes(b)).sum::<u64>()
                    + default.as_ref().map(|d| frame_bytes(d)).unwrap_or(0)
            }
            Stmt::Block(b) => frame_bytes(b),
            _ => 0,
        };
    }
    total
}

/// Compiles a MiniC translation unit to a relocatable object.
///
/// # Errors
///
/// Returns a [`CcError`] for parse, semantic, or assembly problems.
pub fn compile(src: &str, opts: &Options) -> Result<Object, CcError> {
    let prog = parse(src)?;
    compile_program(&prog, opts)
}

/// Compiles an already-parsed program.
///
/// # Errors
///
/// Returns a [`CcError`] for semantic or assembly problems.
pub fn compile_program(prog: &Program, opts: &Options) -> Result<Object, CcError> {
    let unit = if opts.unit_name.is_empty() {
        "unit"
    } else {
        &opts.unit_name
    };
    let mut asm = Assembler::new(unit.to_string());

    // Signatures (two-pass: forward references allowed).
    let mut sigs: HashMap<String, (Type, usize)> = HashMap::new();
    for f in &prog.funcs {
        if sigs
            .insert(f.name.clone(), (f.ret.clone(), f.params.len()))
            .is_some()
        {
            return Err(CcError::Sema {
                msg: format!("duplicate function `{}`", f.name),
                line: 0,
            });
        }
    }

    // Globals.
    let mut globals: HashMap<String, (Type, bool)> = HashMap::new();
    for g in &prog.globals {
        globals.insert(g.name.clone(), (g.ty.clone(), g.array_len.is_some()));
        let size = g.ty.size() * g.array_len.unwrap_or(1);
        match &g.init {
            Some(bytes) => {
                let mut data = bytes.clone();
                data.resize(size.max(bytes.len() as u64) as usize, 0);
                asm.data(g.name.clone(), &data);
            }
            None => asm.bss(g.name.clone(), size),
        }
    }

    // Functions.
    let mut string_base = 0usize;
    for func in &prog.funcs {
        let mut f = asm.func(func.name.clone());
        let epilogue = f.fresh_label();
        let mut ctx = FnCtx {
            f,
            scopes: vec![HashMap::new()],
            next_offset: 0,
            breaks: Vec::new(),
            continues: Vec::new(),
            epilogue,
            ret: func.ret.clone(),
            opts,
            sigs: &sigs,
            globals: &globals,
            strings: Vec::new(),
            string_base,
        };
        // Prologue.
        let frame = (frame_bytes(&func.body) + 8 * func.params.len() as u64 + 15) & !15;
        ctx.f.raw(Inst::Push { src: Reg::FP });
        ctx.f.ins(Inst::MovRR {
            dst: Reg::FP,
            src: Reg::SP,
        });
        if frame > 0 {
            ctx.f.ins(Inst::Alu {
                op: AluOp::Sub,
                dst: Reg::SP,
                src: Operand::Imm(frame as i32),
            });
        }
        for (i, (pname, pty)) in func.params.iter().enumerate() {
            let slot = ctx.alloc_slot(pname, pty.clone(), None);
            ctx.f.ins(Inst::Store {
                src: Reg::ARGS[i],
                mem: MemRef::base_disp(Reg::FP, slot.offset),
                size: AccessSize::B8,
            });
        }
        ctx.stmts(&func.body)?;
        // Implicit return 0 / void (skipped when the body already ends in
        // a return, so no dead code is emitted).
        let ends_in_return = matches!(func.body.last(), Some(Stmt::Return(_)));
        if func.ret != Type::Void && !ends_in_return {
            ctx.f.ins(Inst::MovRI {
                dst: Reg::R0,
                imm: 0,
            });
        }
        let ep = ctx.epilogue;
        ctx.f.bind(ep);
        ctx.f.ins(Inst::MovRR {
            dst: Reg::SP,
            src: Reg::FP,
        });
        ctx.f.raw(Inst::Pop { dst: Reg::FP });
        ctx.f.raw(Inst::Ret);

        let strings = std::mem::take(&mut ctx.strings);
        let f = ctx.f;
        asm.finish_func(f)?;
        for (i, s) in strings.iter().enumerate() {
            asm.rodata(format!("str$str{}", string_base + i), s);
        }
        string_base += strings.len();
    }

    // Startup stub.
    if sigs.contains_key("main") {
        let mut start = asm.func("_start");
        start.call_sym("main");
        start.ins(Inst::MovRR {
            dst: Reg::R1,
            src: Reg::R0,
        });
        start.ins(Inst::Syscall { num: sys::EXIT });
        asm.finish_func(start)?;
    }

    Ok(asm.finish())
}

/// Compiles and links a standalone program (entry `_start` → `main`).
///
/// # Errors
///
/// Returns a [`CcError`] for parse, semantic, assembly or link problems.
pub fn compile_to_binary(src: &str, opts: &Options) -> Result<Binary, CcError> {
    let obj = compile(src, opts)?;
    Ok(Linker::new().add_object(obj).link("_start")?)
}
