//! MiniC recursive-descent parser.

use crate::ast::*;
use crate::token::{lex, Spanned, Tok};
use std::fmt;

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// Source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::token::LexError> for ParseError {
    fn from(e: crate::token::LexError) -> ParseError {
        ParseError {
            msg: e.msg,
            line: e.line,
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parses a MiniC translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic errors.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut prog = Program::default();
    while p.peek() != &Tok::Eof {
        p.parse_top(&mut prog)?;
    }
    Ok(prog)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn try_type(&mut self) -> Option<Type> {
        let base = match self.peek() {
            Tok::KwInt => Type::Int,
            Tok::KwUint => Type::Uint,
            Tok::KwChar => Type::Char,
            Tok::KwVoid => Type::Void,
            Tok::KwFnPtr => Type::FnPtr,
            _ => return None,
        };
        self.bump();
        let mut ty = base;
        while self.peek() == &Tok::Star {
            self.bump();
            ty = Type::Ptr(Box::new(ty));
        }
        Some(ty)
    }

    fn parse_top(&mut self, prog: &mut Program) -> Result<(), ParseError> {
        let Some(ty) = self.try_type() else {
            return self.err(format!("expected type at top level, found {}", self.peek()));
        };
        let name = self.ident()?;
        if self.peek() == &Tok::LParen {
            // function definition
            self.bump();
            let mut params = Vec::new();
            if self.peek() != &Tok::RParen {
                loop {
                    let pty = self.try_type().ok_or_else(|| ParseError {
                        msg: "expected parameter type".into(),
                        line: self.line(),
                    })?;
                    if pty == Type::Void && params.is_empty() && self.peek() == &Tok::RParen {
                        break; // f(void)
                    }
                    let pname = self.ident()?;
                    params.push((pname, pty));
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen)?;
            if params.len() > 5 {
                return self.err("functions take at most five parameters");
            }
            let body = self.block()?;
            prog.funcs.push(Func {
                name,
                ret: ty,
                params,
                body,
            });
        } else {
            // global variable(s)
            let (array_len, init) = self.global_suffix(&ty)?;
            prog.globals.push(Global {
                name: name.clone(),
                ty: ty.clone(),
                array_len,
                init,
            });
            if self.peek() == &Tok::Comma {
                self.bump();
                let _next = self.ident()?;
                return self.err("one global per declaration, please");
            }
            self.expect(Tok::Semi)?;
        }
        Ok(())
    }

    /// Parses `[N]`, `= literal` or nothing after a global's name.
    fn global_suffix(&mut self, ty: &Type) -> Result<(Option<u64>, Option<Vec<u8>>), ParseError> {
        let mut array_len = None;
        if self.peek() == &Tok::LBracket {
            self.bump();
            match self.bump() {
                Tok::Int(n) if n > 0 => array_len = Some(n as u64),
                _ => return self.err("expected positive array length"),
            }
            self.expect(Tok::RBracket)?;
        }
        let mut init = None;
        if self.peek() == &Tok::Assign {
            self.bump();
            match self.bump() {
                Tok::Int(v) => {
                    if array_len.is_some() {
                        return self.err("array initializers are not supported");
                    }
                    let bytes = match ty.size() {
                        1 => vec![v as u8],
                        _ => v.to_le_bytes().to_vec(),
                    };
                    init = Some(bytes);
                }
                Tok::Str(s) => {
                    // char arr[] = "..." style: string contents + NUL.
                    let mut bytes = s;
                    bytes.push(0);
                    if array_len.is_none() {
                        array_len = Some(bytes.len() as u64);
                    }
                    init = Some(bytes);
                }
                other => return self.err(format!("unsupported global initializer {other}")),
            }
        }
        Ok((array_len, init))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if let Some(ty) = self.try_type() {
            // declaration
            let name = self.ident()?;
            let mut array_len = None;
            if self.peek() == &Tok::LBracket {
                self.bump();
                match self.bump() {
                    Tok::Int(n) if n > 0 => array_len = Some(n as u64),
                    _ => return self.err("expected positive array length"),
                }
                self.expect(Tok::RBracket)?;
            }
            let init = if self.peek() == &Tok::Assign {
                self.bump();
                if array_len.is_some() {
                    return self.err("local array initializers not supported");
                }
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Decl {
                name,
                ty,
                array_len,
                init,
            });
        }
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.stmt_or_block()?;
                let els = if self.peek() == &Tok::KwElse {
                    self.bump();
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwFor => {
                // for (init; cond; step) body → desugar to while
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.peek() == &Tok::Semi {
                    self.bump();
                    None
                } else {
                    Some(self.stmt()?) // consumes the ';' via simple_stmt
                };
                let cond = if self.peek() == &Tok::Semi {
                    Expr {
                        kind: ExprKind::Num(1),
                        line: self.line(),
                    }
                } else {
                    self.expr()?
                };
                self.expect(Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(self.simple_stmt_no_semi()?)
                };
                self.expect(Tok::RParen)?;
                let mut body = self.stmt_or_block()?;
                if let Some(s) = step {
                    body.push(s);
                }
                let mut out = Vec::new();
                if let Some(i) = init {
                    out.push(i);
                }
                out.push(Stmt::While { cond, body });
                Ok(Stmt::Block(out))
            }
            Tok::KwSwitch => {
                self.bump();
                self.expect(Tok::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                let mut cases: Vec<(i64, Vec<Stmt>)> = Vec::new();
                let mut default = None;
                while self.peek() != &Tok::RBrace {
                    match self.bump() {
                        Tok::KwCase => {
                            let v = match self.bump() {
                                Tok::Int(v) => v,
                                Tok::Minus => match self.bump() {
                                    Tok::Int(v) => -v,
                                    _ => return self.err("expected case constant"),
                                },
                                _ => return self.err("expected case constant"),
                            };
                            self.expect(Tok::Colon)?;
                            let body = self.case_body()?;
                            cases.push((v, body));
                        }
                        Tok::KwDefault => {
                            self.expect(Tok::Colon)?;
                            default = Some(self.case_body()?);
                        }
                        other => return self.err(format!("expected case/default, found {other}")),
                    }
                }
                self.bump(); // }
                Ok(Stmt::Switch {
                    scrutinee,
                    cases,
                    default,
                })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::KwReturn => {
                self.bump();
                let v = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(v))
            }
            _ => {
                let s = self.simple_stmt_no_semi()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// Statements whose body in a case runs until the next
    /// case/default/`}`. Fall-through is not supported: each case body is
    /// implicitly terminated (a `break` is allowed and redundant).
    fn case_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Tok::KwCase | Tok::KwDefault | Tok::RBrace => break,
                Tok::KwBreak => {
                    self.bump();
                    self.expect(Tok::Semi)?;
                    break;
                }
                _ => out.push(self.stmt()?),
            }
        }
        Ok(out)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Assignment / compound assignment / ++ / -- / expression statement,
    /// without consuming a trailing semicolon.
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, ParseError> {
        let target = self.expr()?;
        match self.peek() {
            Tok::Assign => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::Assign { target, value })
            }
            Tok::PlusEq => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::OpAssign {
                    target,
                    op: BinOp::Add,
                    value,
                })
            }
            Tok::MinusEq => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::OpAssign {
                    target,
                    op: BinOp::Sub,
                    value,
                })
            }
            Tok::PlusPlus => {
                self.bump();
                let line = self.line();
                Ok(Stmt::OpAssign {
                    target,
                    op: BinOp::Add,
                    value: Expr {
                        kind: ExprKind::Num(1),
                        line,
                    },
                })
            }
            Tok::MinusMinus => {
                self.bump();
                let line = self.line();
                Ok(Stmt::OpAssign {
                    target,
                    op: BinOp::Sub,
                    value: Expr {
                        kind: ExprKind::Num(1),
                        line,
                    },
                })
            }
            _ => Ok(Stmt::Expr(target)),
        }
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinOp::LogOr, 1),
                Tok::AndAnd => (BinOp::LogAnd, 2),
                Tok::Pipe => (BinOp::Or, 3),
                Tok::Caret => (BinOp::Xor, 4),
                Tok::Amp => (BinOp::And, 5),
                Tok::Eq => (BinOp::Eq, 6),
                Tok::Ne => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
                    line,
                })
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Un(UnOp::BitNot, Box::new(e)),
                    line,
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Un(UnOp::Not, Box::new(e)),
                    line,
                })
            }
            Tok::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Deref(Box::new(e)),
                    line,
                })
            }
            Tok::Amp => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::AddrOf(Box::new(e)),
                    line,
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        line,
                    };
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    if args.len() > 5 {
                        return self.err("calls take at most five arguments");
                    }
                    e = match e.kind {
                        ExprKind::Var(name) => Expr {
                            kind: ExprKind::Call(name, args),
                            line,
                        },
                        _ => Expr {
                            kind: ExprKind::CallPtr(Box::new(e), args),
                            line,
                        },
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr {
                kind: ExprKind::Num(v),
                line,
            }),
            Tok::Str(s) => Ok(Expr {
                kind: ExprKind::Str(s),
                line,
            }),
            Tok::Ident(name) => Ok(Expr {
                kind: ExprKind::Var(name),
                line,
            }),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected expression, found {other}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1_shape() {
        // The canonical Spectre-V1 gadget of the paper's Listing 1.
        let src = r#"
            char foo[16];
            char bar[256];
            int baz;
            void victim(int index) {
                if (index < 10) {
                    int secret = foo[index];
                    baz = bar[secret];
                }
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.globals.len(), 3);
        assert_eq!(prog.funcs.len(), 1);
        let f = &prog.funcs[0];
        assert_eq!(f.name, "victim");
        assert!(matches!(f.body[0], Stmt::If { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse("int f() { return 1 + 2 * 3 < 7 && 1; }").unwrap();
        let Stmt::Return(Some(e)) = &p.funcs[0].body[0] else {
            panic!()
        };
        // top must be LogAnd
        assert!(matches!(e.kind, ExprKind::Bin(BinOp::LogAnd, _, _)));
    }

    #[test]
    fn switch_with_cases_and_default() {
        let p = parse(
            "int f(int v) { switch (v) { case 0: return 1; case 2: return 3; default: return 9; } }",
        )
        .unwrap();
        let Stmt::Switch { cases, default, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(cases.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn for_desugars_to_while() {
        let p = parse("int f() { int s = 0; for (int i = 0; i < 4; i++) { s += i; } return s; }")
            .unwrap();
        let Stmt::Block(items) = &p.funcs[0].body[1] else {
            panic!()
        };
        assert!(matches!(items[0], Stmt::Decl { .. }));
        assert!(matches!(items[1], Stmt::While { .. }));
    }

    #[test]
    fn pointers_and_addressing() {
        let p = parse("int g; int f(int *p) { *p = 1; return *p + g; }").unwrap();
        assert!(matches!(p.funcs[0].params[0].1, Type::Ptr(_)));
    }

    #[test]
    fn fnptr_calls() {
        // `g(1)` parses as a named call; codegen resolves it to an
        // indirect call when `g` is a fnptr variable.
        let p = parse("int inc(int x) { return x + 1; } int f() { fnptr g = &inc; return g(1); }")
            .unwrap();
        let body = &p.funcs[1].body;
        assert!(matches!(body[0], Stmt::Decl { .. }));
        let Stmt::Return(Some(e)) = &body[1] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Call(_, _)));
        // A parenthesized callee is a syntactic CallPtr.
        let p = parse("int f(fnptr g) { return (g)(1); }").unwrap();
        let Stmt::Return(Some(e)) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(
            matches!(e.kind, ExprKind::Call(_, _)) || matches!(e.kind, ExprKind::CallPtr(_, _))
        );
    }

    #[test]
    fn string_global() {
        let p = parse(r#"char msg[] = "hi";"#);
        // `char msg[]` without length is not supported; use explicit form.
        assert!(p.is_err());
        let p = parse(r#"char msg = "hi";"#).unwrap();
        assert_eq!(p.globals[0].array_len, Some(3)); // "hi\0"
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse("int f() {\n  $\n}").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("int f() { return 1 }").unwrap_err();
        assert!(err.msg.contains("expected"));
    }

    #[test]
    fn too_many_params_rejected() {
        assert!(parse("int f(int a, int b, int c, int d, int e, int g) {}").is_err());
    }
}
