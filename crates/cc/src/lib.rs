//! MiniC — the compiler that produces the COTS workload binaries.
//!
//! MiniC is a small C subset (signed/unsigned 64-bit integers, unsigned
//! bytes, pointers, arrays, functions, function pointers, `if`/`while`/
//! `for`/`switch`) compiled to TEA-64. Its role in the reproduction is the
//! role GCC/Clang play in the paper:
//!
//! * it generates the five real-world-like workload programs that Teapot
//!   analyzes as *binaries only* (the compiler is never consulted during
//!   analysis — the COTS assumption);
//! * it exposes the **compiler-divergence knobs** of paper §3.2/Fig. 2:
//!   GCC-style branch-chain vs. Clang-style jump-table `switch` lowering,
//!   and `cmov` if-conversion (Appendix A.1) — the reasons binary-level
//!   analysis of the *deployed* executable matters.
//!
//! # Example
//!
//! ```
//! use teapot_cc::{compile_to_binary, Options};
//!
//! let bin = compile_to_binary(
//!     "int main() { return 7; }",
//!     &Options::gcc_like(),
//! )?;
//! assert!(bin.find_symbol("main").is_some());
//! # Ok::<(), teapot_cc::CcError>(())
//! ```

pub mod ast;
mod codegen;
mod parser;
mod token;

pub use ast::{BinOp, Expr, ExprKind, Func, Global, Program, Stmt, Type, UnOp};
pub use codegen::{compile, compile_program, compile_to_binary, CcError, Options, SwitchLowering};
pub use parser::{parse, ParseError};
pub use token::{lex, LexError};
