//! MiniC abstract syntax tree and types.

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Signed 64-bit integer (`int`).
    Int,
    /// Unsigned 64-bit integer (`uint`) — `size_t`-like; comparisons are
    /// unsigned, which is what makes the Appendix A.2 `-1` sentinel gadget
    /// expressible.
    Uint,
    /// Unsigned 8-bit byte (`char`). MiniC `char` is unsigned.
    Char,
    /// Pointer to `T`.
    Ptr(Box<Type>),
    /// Function pointer (`fnptr`), callable with up to five `int` args.
    FnPtr,
    /// No value (`void`), only as a return type.
    Void,
}

impl Type {
    /// Byte width of a value of this type when loaded/stored.
    pub fn size(&self) -> u64 {
        match self {
            Type::Char => 1,
            Type::Void => 0,
            _ => 8,
        }
    }

    /// Element size for pointer arithmetic / indexing.
    pub fn elem_size(&self) -> u64 {
        match self {
            Type::Ptr(inner) => inner.size(),
            _ => 8,
        }
    }

    /// Whether comparisons on this type are unsigned.
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Type::Uint | Type::Char | Type::Ptr(_) | Type::FnPtr)
    }

    /// Whether this is a scalar value type (assignable).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Type::Void)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// Whether this operator yields a boolean (0/1) result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Logical not (yields 0/1).
    Not,
}

/// An expression, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression kind.
    pub kind: ExprKind,
    /// Source line.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Num(i64),
    /// String literal (lowered to a `.rodata` byte array; value is a
    /// `char*`).
    Str(Vec<u8>),
    /// Variable reference.
    Var(String),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `*ptr`.
    Deref(Box<Expr>),
    /// `&lvalue` (variable, index or deref).
    AddrOf(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Direct call `f(args)` — to a named function or builtin.
    Call(String, Vec<Expr>),
    /// Indirect call through a `fnptr` expression.
    CallPtr(Box<Expr>, Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration with optional initializer. Arrays (`len > 0`)
    /// cannot have initializers.
    Decl {
        name: String,
        ty: Type,
        array_len: Option<u64>,
        init: Option<Expr>,
    },
    /// Assignment to an lvalue.
    Assign { target: Expr, value: Expr },
    /// Compound assignment `target op= value`.
    OpAssign {
        target: Expr,
        op: BinOp,
        value: Expr,
    },
    /// Expression for side effects.
    Expr(Expr),
    /// `if`/`else`.
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// `while` loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// `switch` over an expression (paper Fig. 2 lowers this two ways).
    Switch {
        scrutinee: Expr,
        cases: Vec<(i64, Vec<Stmt>)>,
        default: Option<Vec<Stmt>>,
    },
    /// `break` (loops and switches).
    Break,
    /// `continue` (loops).
    Continue,
    /// `return` with optional value.
    Return(Option<Expr>),
    /// Nested block scope.
    Block(Vec<Stmt>),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters (name, type); at most five.
    pub params: Vec<(String, Type)>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Array length (`None` for scalars).
    pub array_len: Option<u64>,
    /// Constant initializer bytes (zero-filled `.bss` when `None`).
    pub init: Option<Vec<u8>>,
}

/// A parsed MiniC translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub funcs: Vec<Func>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Int.size(), 8);
        assert_eq!(Type::Char.size(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).size(), 8);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).elem_size(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Int)).elem_size(), 8);
    }

    #[test]
    fn signedness() {
        assert!(!Type::Int.is_unsigned());
        assert!(Type::Uint.is_unsigned());
        assert!(Type::Char.is_unsigned());
        assert!(Type::Ptr(Box::new(Type::Int)).is_unsigned());
    }

    #[test]
    fn comparison_ops() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
